//! Workspace root crate.
//!
//! Exists so the repo-level `tests/` and `examples/` directories belong to a
//! package; re-exports the member crates for convenience.

pub use automed;
pub use dataspace_core;
pub use iql;
pub use matching;
pub use proteomics;
pub use relational;
