//! Property-based tests over the core data structures and invariants:
//! IQL bag algebra laws, pretty-printer round-trips, pathway reversal involution,
//! schema difference laws, and extent preservation of the intersection machinery.

use automed::transformation::{Provenance, Transformation};
use automed::{Pathway, Schema, SchemaObject, SchemeRef};
use iql::value::{Bag, Value};
use iql::{parse, pretty};
use proptest::prelude::*;

// ---------- generators ----------

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,6}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        Just(Value::Null),
    ]
}

fn bag() -> impl Strategy<Value = Bag> {
    prop::collection::vec(scalar_value(), 0..12).prop_map(Bag::from_values)
}

fn identifier() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// A random but *well-formed* pathway over a base schema of table objects: each step
/// either adds a fresh object or removes an existing one, so the pathway always
/// applies cleanly.
fn pathway_over_tables() -> impl Strategy<Value = (Schema, Pathway)> {
    (
        prop::collection::btree_set(identifier(), 1..6),
        prop::collection::vec((any::<bool>(), identifier()), 0..8),
    )
        .prop_map(|(base_names, ops)| {
            let mut schema = Schema::new("base");
            for name in &base_names {
                schema
                    .add_object(SchemaObject::table(name.clone()))
                    .unwrap();
            }
            let mut current = schema.clone();
            let mut pathway = Pathway::new("base", "derived");
            for (add, name) in ops {
                let scheme = SchemeRef::table(format!("t_{name}"));
                if add {
                    if !current.contains(&scheme) {
                        let t = Transformation::Add {
                            object: SchemaObject::table(format!("t_{name}")),
                            query: iql::Expr::range_void_any(),
                            provenance: Provenance::Manual,
                        };
                        t.apply(&mut current).unwrap();
                        pathway.push(t);
                    }
                } else {
                    let existing = current.objects().next().cloned();
                    if let Some(existing) = existing {
                        let t = Transformation::contract_void_any(existing);
                        t.apply(&mut current).unwrap();
                        pathway.push(t);
                    }
                }
            }
            (schema, pathway)
        })
}

// ---------- bag algebra laws ----------

proptest! {
    #[test]
    fn bag_union_is_commutative_up_to_multiplicity(a in bag(), b in bag()) {
        prop_assert!(a.union(&b).same_elements(&b.union(&a)));
    }

    #[test]
    fn bag_union_is_associative(a in bag(), b in bag(), c in bag()) {
        prop_assert!(a.union(&b).union(&c).same_elements(&a.union(&b.union(&c))));
    }

    #[test]
    fn empty_bag_is_union_identity(a in bag()) {
        prop_assert!(a.union(&Bag::empty()).same_elements(&a));
        prop_assert!(Bag::empty().union(&a).same_elements(&a));
    }

    #[test]
    fn monus_never_grows_and_monus_self_is_empty(a in bag(), b in bag()) {
        prop_assert!(a.difference(&b).len() <= a.len());
        prop_assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn union_then_monus_restores_multiplicities(a in bag(), b in bag()) {
        // (a ++ b) -- b = a   (bag monus law)
        prop_assert!(a.union(&b).difference(&b).same_elements(&a));
    }

    #[test]
    fn intersection_is_a_subbag_of_both(a in bag(), b in bag()) {
        let i = a.intersection(&b);
        prop_assert!(i.subbag_of(&a));
        prop_assert!(i.subbag_of(&b));
    }

    #[test]
    fn distinct_is_idempotent_and_preserves_membership(a in bag()) {
        let d = a.distinct();
        prop_assert!(d.distinct().same_elements(&d));
        for v in d.iter() {
            prop_assert!(a.contains(v));
        }
        prop_assert!(d.len() <= a.len());
    }
}

// ---------- hash-based bag algebra vs reference multiset semantics ----------

/// Reference multiplicity count, computed by linear scan (the semantics the
/// hash-based implementations must agree with).
fn naive_multiplicity(bag: &Bag, v: &Value) -> usize {
    bag.iter().filter(|x| *x == v).count()
}

proptest! {
    #[test]
    fn union_difference_intersection_obey_multiplicity_laws(a in bag(), b in bag()) {
        let union = a.union(&b);
        let difference = a.difference(&b);
        let intersection = a.intersection(&b);
        for v in a.iter().chain(b.iter()) {
            let ma = naive_multiplicity(&a, v);
            let mb = naive_multiplicity(&b, v);
            prop_assert_eq!(union.multiplicity(v), ma + mb);
            prop_assert_eq!(difference.multiplicity(v), ma.saturating_sub(mb));
            prop_assert_eq!(intersection.multiplicity(v), ma.min(mb));
        }
        prop_assert_eq!(union.len(), a.len() + b.len());
        // |a -- b| = |a| - |a ∩ b| (monus removes exactly the shared occurrences).
        prop_assert_eq!(difference.len(), a.len() - intersection.len());
    }

    #[test]
    fn same_elements_agrees_with_canonical_comparison(a in bag(), b in bag()) {
        // The hash-count implementation must agree with sorted-sequence equality.
        prop_assert_eq!(a.same_elements(&b), a.canonical() == b.canonical());
        prop_assert!(a.same_elements(&a));
    }

    #[test]
    fn distinct_preserves_first_occurrence_order(a in bag()) {
        let d = a.distinct();
        // Reference dedup by linear scan.
        let mut reference: Vec<Value> = Vec::new();
        for v in a.iter() {
            if !reference.contains(v) {
                reference.push(v.clone());
            }
        }
        prop_assert_eq!(d.items(), &reference[..]);
    }

    #[test]
    fn subbag_agrees_with_multiplicity_definition(a in bag(), b in bag()) {
        let expected = a.iter().all(|v| naive_multiplicity(&a, v) <= naive_multiplicity(&b, v));
        prop_assert_eq!(a.subbag_of(&b), expected);
        prop_assert!(a.intersection(&b).subbag_of(&a));
    }
}

// ---------- hash-join planning vs naive nested loops ----------

/// Key/payload pairs for one side of a join, with keys drawn from a small space so
/// joins actually match (and produce duplicate multiplicities).
fn join_side() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, 0i64..100), 0..20)
}

fn pair_extents(left: &[(i64, i64)], right: &[(i64, i64)]) -> iql::MapExtents {
    let mut extents = iql::MapExtents::new();
    for (scheme, rows) in [("l,v", left), ("r,v", right)] {
        extents.insert(
            scheme,
            Bag::from_values(
                rows.iter()
                    .map(|(k, v)| Value::pair(Value::Int(*k), Value::Int(*v)))
                    .collect(),
            ),
        );
    }
    extents
}

/// Evaluate with the hash-join planner and with nested loops; both must produce the
/// identical bag, element order included.
fn assert_planner_agrees(extents: &iql::MapExtents, query: &str) {
    let expr = parse(query).unwrap();
    let planned = iql::Evaluator::new(extents)
        .eval_closed(&expr)
        .unwrap()
        .expect_bag()
        .unwrap();
    let naive = iql::Evaluator::new(extents)
        .with_nested_loops()
        .eval_closed(&expr)
        .unwrap()
        .expect_bag()
        .unwrap();
    assert_eq!(
        planned.items(),
        naive.items(),
        "planned vs naive for {query}"
    );
}

proptest! {
    #[test]
    fn hash_join_plan_matches_nested_loops(left in join_side(), right in join_side()) {
        let extents = pair_extents(&left, &right);
        assert_planner_agrees(
            &extents,
            "[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2]",
        );
        // Flipped equality sides take the other planner branch.
        assert_planner_agrees(
            &extents,
            "[{x, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k2 = k1]",
        );
        // A trailing filter after the join must still apply.
        assert_planner_agrees(
            &extents,
            "[{k1, y} | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2; y > 50]",
        );
    }

    #[test]
    fn composite_key_hash_join_matches_nested_loops(
        left in prop::collection::vec((0i64..4, 0i64..4, 0i64..100), 0..16),
        right in prop::collection::vec((0i64..4, 0i64..4, 0i64..100), 0..16),
    ) {
        let mut extents = iql::MapExtents::new();
        for (scheme, rows) in [("l3", &left), ("r3", &right)] {
            extents.insert(
                scheme,
                Bag::from_values(
                    rows.iter()
                        .map(|(a, b, v)| {
                            Value::tuple(vec![Value::Int(*a), Value::Int(*b), Value::Int(*v)])
                        })
                        .collect(),
                ),
            );
        }
        // A run of two equality filters forms one composite join key.
        assert_planner_agrees(
            &extents,
            "[{x, y} | {a1, b1, x} <- <<l3>>; {a2, b2, y} <- <<r3>>; a2 = a1; b2 = b1]",
        );
        // A partial run (one join key, one ordinary filter) must also agree.
        assert_planner_agrees(
            &extents,
            "[{x, y} | {a1, b1, x} <- <<l3>>; {a2, b2, y} <- <<r3>>; a2 = a1; b2 > 1]",
        );
    }

    #[test]
    fn hash_join_self_join_and_aggregates_match(side in join_side()) {
        let extents = pair_extents(&side, &side);
        // Self-join on the same extent (classic shared-accession shape).
        assert_planner_agrees(
            &extents,
            "[x | {k1, x} <- <<l, v>>; {k2, y} <- <<l, v>>; k1 = k2]",
        );
        let expr = parse("count [x | {k1, x} <- <<l, v>>; {k2, y} <- <<r, v>>; k1 = k2]").unwrap();
        let planned = iql::Evaluator::new(&extents).eval_closed(&expr).unwrap();
        let naive = iql::Evaluator::new(&extents)
            .with_nested_loops()
            .eval_closed(&expr)
            .unwrap();
        prop_assert_eq!(planned, naive);
    }
}

// ---------- IQL evaluation / printing ----------

proptest! {
    #[test]
    fn pretty_printed_queries_reparse_to_the_same_ast(
        table in identifier(),
        column in identifier(),
        tag in "[A-Za-z]{1,8}",
        threshold in 0i64..1000,
    ) {
        // Build a family of paper-shaped queries and round-trip them.
        let sources = [
            format!("[{{'{tag}', k}} | k <- <<{table}>>]"),
            format!("[{{'{tag}', k, x}} | {{k, x}} <- <<{table}, {column}>>]"),
            format!("[x | {{k, x}} <- <<{table}, {column}>>; k > {threshold}]"),
            format!("count(<<{table}>>) + {threshold}"),
            format!("Range [k | k <- <<{table}>>] Any"),
        ];
        for src in sources {
            let ast = parse(&src).unwrap();
            let printed = pretty::print(&ast);
            let reparsed = parse(&printed).unwrap();
            prop_assert_eq!(ast, reparsed);
        }
    }

    #[test]
    fn comprehension_filter_never_enlarges_the_result(keys in prop::collection::vec(0i64..50, 0..30), pivot in 0i64..50) {
        let mut extents = iql::MapExtents::new();
        extents.insert_keys("t", keys.clone());
        let all = iql::Evaluator::new(&extents)
            .eval_closed(&parse("[k | k <- <<t>>]").unwrap())
            .unwrap()
            .expect_bag()
            .unwrap();
        let filtered = iql::Evaluator::new(&extents)
            .eval_closed(&parse(&format!("[k | k <- <<t>>; k < {pivot}]")).unwrap())
            .unwrap()
            .expect_bag()
            .unwrap();
        prop_assert!(filtered.len() <= all.len());
        prop_assert!(filtered.subbag_of(&all));
        prop_assert_eq!(all.len(), keys.len());
    }
}

// ---------- Expr Hash/Eq consistency (plan-cache keys) ----------

fn hash_of(e: &iql::Expr) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    e.hash(&mut h);
    h.finish()
}

proptest! {
    /// The plan cache keys entries by `Expr` hashing: equal expressions must hash
    /// identically (no cached plan can ever be missed or mixed up by the key),
    /// clones must be equal, and a pretty-print round trip must preserve both
    /// equality and hash.
    #[test]
    fn expr_hash_is_consistent_with_eq(
        table in identifier(),
        column in identifier(),
        tag in "[A-Za-z]{1,8}",
        threshold in 0i64..1000,
        float in -1000.0f64..1000.0,
    ) {
        let sources = [
            format!("[{{'{tag}', k}} | k <- <<{table}>>]"),
            format!("[{{'{tag}', k, x}} | {{k, x}} <- <<{table}, {column}>>]"),
            format!("[x | {{k, x}} <- <<{table}, {column}>>; k > {threshold}]"),
            format!("[{{x, y}} | {{k, x}} <- <<{table}>>; {{k2, y}} <- <<{column}>>; k2 = k]"),
            format!("count(<<{table}>>) + {threshold}"),
            format!("{float} * 2.0 + {threshold}"),
            format!("let n = count <<{table}>> in if n > {threshold} then 'many' else 'few'"),
        ];
        let exprs: Vec<iql::Expr> = sources.iter().map(|s| parse(s).unwrap()).collect();
        for e in &exprs {
            // Reflexivity + clone identity.
            prop_assert_eq!(e, &e.clone());
            prop_assert_eq!(hash_of(e), hash_of(&e.clone()));
            // Pretty-print round trip is the same cache key.
            let reparsed = parse(&pretty::print(e)).unwrap();
            prop_assert_eq!(e, &reparsed);
            prop_assert_eq!(hash_of(e), hash_of(&reparsed));
        }
        // Pairwise: Eq implies hash-eq (collide-safety of the hashed cache key).
        for a in &exprs {
            for b in &exprs {
                if a == b {
                    prop_assert_eq!(hash_of(a), hash_of(b));
                }
            }
        }
    }

    /// Float edge cases the manual `Literal` hash must get right: `-0.0 == 0.0`
    /// must hash identically.
    #[test]
    fn expr_float_zero_hashing(sign in any::<bool>()) {
        let zero = parse("0.0 + 1").unwrap();
        let signed = if sign {
            iql::Expr::BinOp {
                op: iql::BinOp::Add,
                lhs: Box::new(iql::Expr::Lit(iql::Literal::Float(-0.0))),
                rhs: Box::new(iql::Expr::int(1)),
            }
        } else {
            zero.clone()
        };
        prop_assert_eq!(&zero, &signed, "-0.0 and 0.0 literals compare equal");
        prop_assert_eq!(hash_of(&zero), hash_of(&signed));
    }
}

// ---------- pathway reversal ----------

proptest! {
    #[test]
    fn pathway_reversal_is_an_involution_and_restores_the_schema((schema, pathway) in pathway_over_tables()) {
        prop_assert_eq!(pathway.reverse().reverse(), pathway.clone());
        let forward = pathway.apply_to(&schema).unwrap();
        let back = pathway.reverse().apply_to(&forward).unwrap();
        prop_assert!(back.syntactically_identical(&schema));
        // Reversal preserves length and triviality counts.
        prop_assert_eq!(pathway.reverse().len(), pathway.len());
        prop_assert_eq!(pathway.reverse().nontrivial_count(), pathway.nontrivial_count());
    }
}

// ---------- schema difference ----------

proptest! {
    #[test]
    fn schema_difference_partitions_the_extensional_schema(
        names in prop::collection::btree_set(identifier(), 2..8),
        cut in 0usize..8,
    ) {
        // Build an extensional schema and a pathway that deletes a prefix of its
        // objects (covered) and contracts nothing else.
        let mut es = Schema::new("es");
        for n in &names {
            es.add_object(SchemaObject::table(n.clone())).unwrap();
        }
        let covered: Vec<_> = es.objects().take(cut.min(names.len())).cloned().collect();
        let mut pathway = Pathway::new("es", "I");
        pathway.push(Transformation::Add {
            object: SchemaObject::table("U"),
            query: iql::Expr::range_void_any(),
            provenance: Provenance::Manual,
        });
        for object in &covered {
            pathway.push(Transformation::delete(object.clone(), iql::Expr::range_void_any()));
        }
        let diff = dataspace_core::difference::difference(&es, &pathway).unwrap();
        // dropped ∪ remaining = ES and dropped ∩ remaining = ∅.
        prop_assert_eq!(diff.dropped.len() + diff.schema.len(), es.len());
        for scheme in &diff.dropped {
            prop_assert!(!diff.schema.contains(scheme));
            prop_assert!(es.contains(scheme));
        }
        for object in diff.schema.objects() {
            prop_assert!(es.contains(&object.scheme));
        }
    }
}
