//! Shared fixture for the wire/server integration suites: a small two-source
//! integrated dataspace (the same alpha/beta + `UAcc` shape the subscription
//! suites use) behind a running TCP server.

use std::sync::{Arc, RwLock};

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use server::{ServerConfig, ServerHandle};

pub fn source(name: &str, table: &str, rows: &[(i64, &str)]) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    let mut db = Database::new(schema);
    for (k, v) in rows {
        db.insert(table, vec![(*k).into(), (*v).into()]).unwrap();
    }
    db
}

fn uacc_spec() -> IntersectionSpec {
    IntersectionSpec::new("I1").with_mapping(
        ObjectMapping::column("UAcc", "label")
            .with_contribution(
                SourceContribution::parsed(
                    "alpha",
                    "[{'ALPHA', k, x} | {k, x} <- <<t, label>>]",
                    ["t,label"],
                )
                .unwrap(),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "beta",
                    "[{'BETA', k, x} | {k, x} <- <<u, label>>]",
                    ["u,label"],
                )
                .unwrap(),
            ),
    )
}

/// Federate alpha + beta and integrate `UAcc`, keeping redundant federated
/// objects queryable (identity extents give the incremental-subscription
/// shape, `UAcc` the integrated one).
pub fn integrated(alpha_rows: &[(i64, &str)], beta_rows: &[(i64, &str)]) -> Dataspace {
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..DataspaceConfig::default()
    });
    ds.add_source(source("alpha", "t", alpha_rows)).unwrap();
    ds.add_source(source("beta", "u", beta_rows)).unwrap();
    ds.federate().unwrap();
    ds.integrate(uacc_spec()).unwrap();
    ds
}

/// The query shape whose standing plan is maintained O(delta) on alpha
/// inserts — one `Delta` push per committed batch.
pub const INCREMENTAL_SHAPE: &str = "[x | {k, x} <- <<ALPHA_t, ALPHA_label>>]";

/// Rows seeded into alpha / beta by [`serve_default`].
pub const ALPHA_SEED: &[(i64, &str)] = &[(1, "ACC1"), (2, "ACC2"), (3, "ACC3")];
pub const BETA_SEED: &[(i64, &str)] = &[(10, "ACC2"), (11, "ACC4")];

/// Start a server over a freshly integrated dataspace on an OS-assigned port.
pub fn serve_with(
    config: ServerConfig,
) -> (ServerHandle, std::net::SocketAddr, Arc<RwLock<Dataspace>>) {
    let ds = Arc::new(RwLock::new(integrated(ALPHA_SEED, BETA_SEED)));
    let handle = server::serve(Arc::clone(&ds), ("127.0.0.1", 0), config).expect("bind");
    let addr = handle.local_addr();
    (handle, addr, ds)
}

#[allow(dead_code)] // not every suite sharing this fixture uses the default config
pub fn serve_default() -> (ServerHandle, std::net::SocketAddr, Arc<RwLock<Dataspace>>) {
    serve_with(ServerConfig::default())
}

/// Poll `probe` for up to ~2 s; panics with `what` if it never returns true.
pub fn eventually(what: &str, mut probe: impl FnMut() -> bool) {
    for _ in 0..200 {
        if probe() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}
