//! Concurrent clients vs an in-process differential oracle.
//!
//! N client threads hammer one server with a mix of prepares, executes
//! (point and streamed), subscribes and inserts. An identically seeded
//! in-process dataspace mirrors every insert (applied under one lock so both
//! sides see the same commit order); when the dust settles, every query
//! answered over the wire must equal in-process execution — rows **and
//! order** — and every standing subscription must have received exactly one
//! push per delta.

#[path = "wire_support/mod.rs"]
mod wire_support;

use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use iql::{Params, Value};
use server::ServerConfig;
use wire::{Client, PushUpdate};

use wire_support::{eventually, integrated, serve_with, ALPHA_SEED, BETA_SEED, INCREMENTAL_SHAPE};

const POINT_SHAPE: &str = "[{s, k} | {s, k, x} <- <<UAcc, label>>; x = ?label]";
const SCAN_SHAPE: &str = "[{s, k, x} | {s, k, x} <- <<UAcc, label>>]";

#[test]
fn concurrent_clients_match_in_process_execution() {
    const THREADS: i64 = 4;
    const ROUNDS: i64 = 6;

    let (handle, addr, _ds) = serve_with(ServerConfig {
        exec_permits: 2, // contended on purpose
        ..ServerConfig::default()
    });
    // The oracle: an identically seeded dataspace, mirrored insert-for-insert.
    let oracle = Arc::new(RwLock::new(integrated(ALPHA_SEED, BETA_SEED)));
    // One lock serialises each wire insert with its oracle mirror, so both
    // dataspaces commit the same rows in the same order.
    let insert_order = Arc::new(Mutex::new(()));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let oracle = Arc::clone(&oracle);
            let insert_order = Arc::clone(&insert_order);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let (point, _) = client.prepare(POINT_SHAPE).unwrap();
                let (scan, _) = client.prepare(SCAN_SHAPE).unwrap();
                for round in 0..ROUNDS {
                    // Disjoint id ranges per thread keep the primary key happy.
                    let id = 1000 + t * 100 + round;
                    let label = format!("T{t}R{round}");
                    {
                        let _serialised = insert_order.lock().unwrap();
                        client
                            .insert("alpha", "t", vec![vec![id.into(), label.as_str().into()]])
                            .unwrap();
                        oracle
                            .write()
                            .unwrap()
                            .insert("alpha", "t", vec![id.into(), label.as_str().into()])
                            .unwrap();
                    }
                    // Point lookup for the row just inserted: committed before
                    // the insert reply, so it must be visible.
                    let hits = client
                        .execute(point, &Params::new().with("label", label.as_str()))
                        .unwrap();
                    assert_eq!(hits.len(), 1, "thread {t} round {round}");
                    // Streamed scan with a small chunk to exercise ack-paced
                    // chunking under concurrency.
                    let (rows, chunks) = client.execute_chunked(scan, &Params::new(), 3).unwrap();
                    assert!(chunks >= 2);
                    assert!(rows.len() >= ALPHA_SEED.len() + BETA_SEED.len());
                }
                client.close().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }

    // Differential check: the full scan and every point lookup agree with the
    // oracle exactly (both sides committed the same rows in the same order).
    let mut client = Client::connect(addr).unwrap();
    let wire_rows = client.query(SCAN_SHAPE).unwrap();
    let oracle_rows = oracle.read().unwrap().query(SCAN_SHAPE).unwrap();
    assert_eq!(wire_rows, oracle_rows.into_items());
    assert_eq!(
        wire_rows.len(),
        ALPHA_SEED.len() + BETA_SEED.len() + (THREADS * ROUNDS) as usize
    );

    let (point, _) = client.prepare(POINT_SHAPE).unwrap();
    for t in 0..THREADS {
        for round in 0..ROUNDS {
            let label = format!("T{t}R{round}");
            let params = Params::new().with("label", label.as_str());
            let via_wire = client.execute(point, &params).unwrap();
            let via_oracle = oracle
                .read()
                .unwrap()
                .prepare(POINT_SHAPE)
                .unwrap()
                .execute(&params)
                .unwrap();
            assert_eq!(via_wire, via_oracle.into_items(), "label {label}");
        }
    }

    assert_eq!(handle.stats().session_panics(), 0);
    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn standing_subscription_pushes_arrive_exactly_once_per_delta() {
    const INSERTS: usize = 8;

    let (handle, addr, ds) = serve_with(ServerConfig::default());

    // Subscriber client: standing query on the O(delta)-maintained shape.
    let mut subscriber = Client::connect(addr).unwrap();
    let (h, _) = subscriber.prepare(INCREMENTAL_SHAPE).unwrap();
    let (sub_id, initial) = subscriber.subscribe(h, &Params::new()).unwrap();
    let Value::Bag(initial) = initial else {
        panic!("bag-shaped standing result")
    };
    assert_eq!(initial.len(), ALPHA_SEED.len());
    eventually("subscription registered", || {
        ds.read().unwrap().stats().subscriptions == 1
    });

    // Writer client: one single-row batch per delta.
    let mut writer = Client::connect(addr).unwrap();
    for i in 0..INSERTS {
        let id = 500 + i as i64;
        writer
            .insert(
                "alpha",
                "t",
                vec![vec![id.into(), format!("PUSH{i}").as_str().into()]],
            )
            .unwrap();
    }

    // Exactly one Delta push per insert, each carrying exactly its one row,
    // in commit order.
    let mut pushed = Vec::new();
    while pushed.len() < INSERTS {
        match subscriber.recv_push(Duration::from_secs(5)).unwrap() {
            Some((got_sub, PushUpdate::Delta(rows))) => {
                assert_eq!(got_sub, sub_id);
                assert_eq!(rows.len(), 1, "one row per single-row delta");
                pushed.extend(rows);
            }
            Some((_, PushUpdate::Refreshed(_))) => {
                panic!("identity-extent shape must take the O(delta) path")
            }
            None => panic!("missing push: got {} of {INSERTS}", pushed.len()),
        }
    }
    assert_eq!(
        pushed,
        (0..INSERTS)
            .map(|i| Value::str(format!("PUSH{i}")))
            .collect::<Vec<_>>()
    );
    // ... and not a single push more.
    assert!(
        subscriber
            .recv_push(Duration::from_millis(300))
            .unwrap()
            .is_none(),
        "exactly once means no extras"
    );

    // Folding initial + deltas reproduces re-execution.
    let mut folded: Vec<Value> = initial.into_items();
    folded.extend(pushed);
    let reexecuted = writer.query(INCREMENTAL_SHAPE).unwrap();
    assert_eq!(folded, reexecuted);

    assert!(handle.stats().pushes_sent() >= INSERTS as u64);

    // Unsubscribe stops the flow: a further insert pushes nothing.
    subscriber.unsubscribe(sub_id).unwrap();
    eventually("subscription dropped", || {
        ds.read().unwrap().stats().subscriptions == 0
    });
    writer
        .insert("alpha", "t", vec![vec![900.into(), "AFTER".into()]])
        .unwrap();
    assert!(subscriber
        .recv_push(Duration::from_millis(300))
        .unwrap()
        .is_none());

    subscriber.close().unwrap();
    writer.close().unwrap();
    handle.shutdown();
}

#[test]
fn mixed_subscribers_and_writers_stay_consistent() {
    const WRITERS: i64 = 3;
    const ROUNDS: i64 = 5;

    let (handle, addr, _ds) = serve_with(ServerConfig::default());

    let mut subscriber = Client::connect(addr).unwrap();
    let (h, _) = subscriber.prepare(INCREMENTAL_SHAPE).unwrap();
    let (sub_id, initial) = subscriber.subscribe(h, &Params::new()).unwrap();
    let initial_len = match &initial {
        Value::Bag(b) => b.len(),
        other => panic!("expected bag, got {other:?}"),
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    let id = 2000 + t * 100 + round;
                    client
                        .insert(
                            "alpha",
                            "t",
                            vec![vec![id.into(), format!("W{t}R{round}").as_str().into()]],
                        )
                        .unwrap();
                }
                client.close().unwrap();
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }

    // Every committed delta arrives exactly once: the pushed rows (in some
    // commit order) plus the initial result must equal re-execution.
    let expected = (WRITERS * ROUNDS) as usize;
    let mut pushed = Vec::new();
    while pushed.len() < expected {
        match subscriber.recv_push(Duration::from_secs(5)).unwrap() {
            Some((got_sub, PushUpdate::Delta(rows))) => {
                assert_eq!(got_sub, sub_id);
                pushed.extend(rows);
            }
            Some((_, PushUpdate::Refreshed(_))) => panic!("unexpected fallback refresh"),
            None => panic!("missing pushes: got {} of {expected}", pushed.len()),
        }
    }
    assert!(subscriber
        .recv_push(Duration::from_millis(300))
        .unwrap()
        .is_none());
    assert_eq!(pushed.len(), expected);

    let final_rows = subscriber.query(INCREMENTAL_SHAPE).unwrap();
    assert_eq!(final_rows.len(), initial_len + expected);
    // Same rows, and the pushes replay the commit order exactly: the stream
    // tail equals the final result's tail.
    assert_eq!(final_rows[initial_len..], pushed[..]);

    assert_eq!(handle.stats().session_panics(), 0);
    subscriber.close().unwrap();
    handle.shutdown();
}
