//! E1/E2/E3 — the full case study end to end at test scale: the seven priority
//! queries, the per-iteration effort counts, the pay-as-you-go curve, and the
//! comparison against the classical baseline.

use proteomics::case_study::{compare_methodologies, run_case_study};
use proteomics::classical_integration::PAPER_TOTAL_NONTRIVIAL;
use proteomics::intersection_integration::{PAPER_ITERATION_COUNTS, PAPER_TOTAL_MANUAL};
use proteomics::queries;
use proteomics::sources::CaseStudyScale;

#[test]
fn table1_queries_are_answerable_and_query_driven() {
    let run = run_case_study(&CaseStudyScale::tiny()).unwrap();

    // Every priority query is answerable at the end.
    assert!(run.answers.iter().all(|a| a.answerable));

    // Queries become answerable exactly when the iteration that introduces their
    // concepts completes (pay-as-you-go, query-driven).
    let after = |name: &str| {
        run.answers
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.answerable_after_iteration)
            .unwrap_or(usize::MAX)
    };
    assert_eq!(after("Q7"), 0, "Q7 needs only the federated schema");
    assert_eq!(after("Q1"), 1);
    assert_eq!(after("Q2"), 2);
    assert_eq!(after("Q3"), 3);
    assert_eq!(after("Q4"), 4);
    assert_eq!(after("Q5"), 4, "Q5 needs no concepts beyond Q4's");
    assert_eq!(after("Q6"), 5);
}

#[test]
fn effort_counts_match_the_paper() {
    let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
    assert_eq!(run.per_iteration_manual, PAPER_ITERATION_COUNTS);
    assert_eq!(run.total_manual_transformations, PAPER_TOTAL_MANUAL);
    // The effort report's cumulative column is consistent.
    let report = run.session.dataspace().effort_report();
    let mut cumulative = 0;
    for iteration in &report.iterations {
        cumulative += iteration.manual_transformations;
        assert_eq!(iteration.cumulative_manual, cumulative);
    }
}

#[test]
fn headline_comparison_reproduces_26_vs_95() {
    let (_run, _classical, comparison) = compare_methodologies(&CaseStudyScale::tiny()).unwrap();
    assert_eq!(comparison.intersection_manual, 26);
    assert_eq!(comparison.classical_nontrivial, PAPER_TOTAL_NONTRIVIAL);
    let ratio = comparison.effort_ratio();
    assert!(
        (3.0..4.5).contains(&ratio),
        "classical/intersection effort ratio {ratio} outside the paper's shape"
    );
}

#[test]
fn query_answers_reflect_planted_cross_source_overlap() {
    let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
    let ds = run.session.dataspace();

    // Every source contributes to the universal protein concept.
    let per_source = ds.query("[s | {s, k} <- <<UProtein>>]").unwrap();
    let distinct_sources = per_source.distinct();
    assert_eq!(
        distinct_sources.len(),
        3,
        "expected contributions from all 3 sources"
    );

    // There exists at least one accession number reported by two different sources
    // (the generator plants shared accessions).
    let shared = ds
        .query(
            "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']",
        )
        .unwrap();
    assert!(
        !shared.is_empty(),
        "no cross-source protein overlap surfaced"
    );

    // The organism query returns only Pedro-backed identifications: one
    // prepared shape, executed under a caller-chosen binding.
    let q3 = ds
        .prepare(queries::Q3_IQL)
        .unwrap()
        .execute(&queries::q3("Homo sapiens"))
        .unwrap();
    for item in q3.iter() {
        let text = item.to_string();
        assert!(
            text.contains("PEDRO"),
            "Q3 should only return Pedro identifications, got {text}"
        );
    }
}

#[test]
fn pay_as_you_go_curve_is_monotone() {
    let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
    let curve = run.session.pay_as_you_go_curve();
    assert_eq!(curve.len(), 6); // federation + 5 iterations
    for pair in curve.windows(2) {
        assert!(pair[0].cumulative_manual <= pair[1].cumulative_manual);
        assert!(pair[0].answerable_count() <= pair[1].answerable_count());
    }
    // Classical integration would deliver nothing until all 95 transformations are
    // done; intersection schemas deliver the first query after 6.
    assert_eq!(curve[1].cumulative_manual, 6);
    assert!(curve[1].answerable_count() >= 2); // Q1 + Q7
}

#[test]
fn scaling_the_data_does_not_change_the_effort_counts() {
    // Integration effort is a schema-level property: it must not depend on data size.
    let small = run_case_study(&CaseStudyScale::tiny()).unwrap();
    let larger = run_case_study(&CaseStudyScale {
        proteins: 30,
        protein_hits: 60,
        peptide_hits: 80,
        searches: 6,
        overlap: 0.5,
        seed: 99,
    })
    .unwrap();
    assert_eq!(
        small.per_iteration_manual, larger.per_iteration_manual,
        "effort counts must be independent of the data scale"
    );
    assert!(larger.answers.iter().all(|a| a.answerable));
}
