//! Durable commit-log recovery: a dataspace that dies and is reborn from its
//! log must be indistinguishable from one that never died.
//!
//! The tentpole here is a differential proptest: a random workload of insert
//! batches (including empty ones) runs simultaneously against an
//! uninterrupted in-memory *mirror* and a WAL-backed *durable* dataspace that
//! is killed and reborn (drop → rebuild sources → re-subscribe →
//! [`Dataspace::open`]) and checkpointed at random points. After every
//! operation the durable dataspace's query answers and standing-subscription
//! results must equal the mirror's, each life's drained update stream must
//! replay its seeded baseline into the final result, and the durability
//! counters in [`DataspaceStats`] must account for exactly the batches
//! logged and replayed.
//!
//! Deterministic companions pin the crash story (a torn tail is truncated,
//! the intact prefix replays — the CI crash-recovery smoke), checkpoint
//! compaction (fewer records, same answers), and Table-1 survival (the
//! seven priority queries answer identically across a crash/reopen).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use dataspace_core::{Subscription, SubscriptionUpdate};
use iql::{Params, Value};
use proptest::prelude::*;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;

/// A collision-free commit-log path under the OS temp dir.
fn temp_wal(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dataspace-recovery-{}-{tag}-{seq}.wal",
        std::process::id()
    ))
}

/// Deletes the commit log on drop so failed runs don't leak temp files.
struct WalGuard(PathBuf);

impl Drop for WalGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn source(name: &str, table: &str) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    Database::new(schema)
}

fn uacc_spec() -> IntersectionSpec {
    IntersectionSpec::new("I1").with_mapping(
        ObjectMapping::column("UAcc", "label")
            .with_contribution(
                SourceContribution::parsed(
                    "alpha",
                    "[{'ALPHA', k, x} | {k, x} <- <<t, label>>]",
                    ["t,label"],
                )
                .unwrap(),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "beta",
                    "[{'BETA', k, x} | {k, x} <- <<u, label>>]",
                    ["u,label"],
                )
                .unwrap(),
            ),
    )
}

/// A fresh, *empty* two-source dataspace — every row it will ever hold flows
/// through the commit log, so a reborn instance is rebuilt from exactly this
/// plus [`Dataspace::open`].
fn empty_integrated() -> Dataspace {
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..DataspaceConfig::default()
    });
    ds.add_source(source("alpha", "t")).unwrap();
    ds.add_source(source("beta", "u")).unwrap();
    ds.federate().unwrap();
    ds.integrate(uacc_spec()).unwrap();
    ds
}

/// The shapes recovery must preserve: an identity extent (pure delta), the
/// integrated union, a cross-source join chain, and a never-incremental
/// aggregate.
const SHAPES: &[&str] = &[
    "[x | {k, x} <- <<ALPHA_t, ALPHA_label>>]",
    "[{s, k} | {s, k, x} <- <<UAcc, label>>]",
    "[{x, y} | {k, x} <- <<ALPHA_t, ALPHA_label>>; {j, y} <- <<BETA_u, BETA_label>>; j = k]",
    "count <<UAcc, label>>",
];

fn subscribe_panel(ds: &Dataspace) -> Vec<(Subscription, Value)> {
    SHAPES
        .iter()
        .map(|text| {
            let sub = ds.prepare(text).unwrap().subscribe(&Params::new()).unwrap();
            let baseline = sub.result();
            (sub, baseline)
        })
        .collect()
}

/// Fold an update stream over a baseline result: `Delta` appends at the
/// tail, `Refreshed` replaces wholesale.
fn replay(mut baseline: Value, updates: &[SubscriptionUpdate]) -> Value {
    for update in updates {
        match update {
            SubscriptionUpdate::Delta(delta) => {
                let Value::Bag(bag) = &mut baseline else {
                    panic!("Delta update against a non-bag result");
                };
                for v in delta.iter() {
                    bag.push(v.clone());
                }
            }
            SubscriptionUpdate::Refreshed(value) => baseline = value.clone(),
        }
    }
    baseline
}

/// Sorted row display so bag comparisons are order-insensitive where the
/// engine makes no ordering promise across a rebuild.
fn canonical(v: &Value) -> Vec<String> {
    match v {
        Value::Bag(bag) => {
            let mut rows: Vec<String> = bag.iter().map(|x| x.to_string()).collect();
            rows.sort();
            rows
        }
        other => vec![other.to_string()],
    }
}

fn assert_answers_match(durable: &Dataspace, mirror: &Dataspace, when: &str) {
    for text in SHAPES {
        let d = durable
            .prepare(text)
            .unwrap()
            .execute_value(&Params::new())
            .unwrap();
        let m = mirror
            .prepare(text)
            .unwrap()
            .execute_value(&Params::new())
            .unwrap();
        assert_eq!(
            canonical(&d),
            canonical(&m),
            "recovered answers diverged from the uninterrupted run for `{text}` ({when})"
        );
    }
}

/// One workload step for the differential harness.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch (possibly empty) into alpha (`true`) or beta.
    Insert {
        into_alpha: bool,
        labels: Vec<String>,
    },
    /// Kill the durable dataspace and rebuild it from the log.
    Restart,
    /// Compact the commit log in place.
    Checkpoint,
}

const LABELS: &[&str] = &["a", "b", "c"];

fn op() -> impl Strategy<Value = Op> {
    // The vendored shim's `prop_oneof!` is uniform; bias toward inserts by
    // folding the choice into one weighted-by-range integer.
    (
        0usize..7,
        any::<bool>(),
        prop::collection::vec(0usize..LABELS.len(), 0..3),
    )
        .prop_map(|(kind, into_alpha, label_idxs)| match kind {
            0..=4 => Op::Insert {
                into_alpha,
                labels: label_idxs.iter().map(|&i| LABELS[i].to_string()).collect(),
            },
            5 => Op::Restart,
            _ => Op::Checkpoint,
        })
}

proptest! {
    /// The recovery differential: under random batches, restarts and
    /// checkpoints, the durable dataspace is observationally identical to
    /// the mirror that never crashed — answers, subscription results,
    /// update-stream replays, and the durability counters.
    #[test]
    fn recovered_dataspace_is_indistinguishable_from_uninterrupted_run(
        ops in prop::collection::vec(op(), 0..12),
    ) {
        let path = temp_wal("prop");
        let _guard = WalGuard(path.clone());

        let mut mirror = empty_integrated();
        let mut durable = empty_integrated();
        let mut panel = subscribe_panel(&durable);
        durable.open(&path).unwrap();

        let (mut next_alpha, mut next_beta) = (0i64, 0i64);
        // Ground truth for the durability counters: non-empty batches
        // committed through the log since the last restart (`wal_appends`),
        // and the batch count the last rebirth replayed (`recovery_replays` —
        // checkpoints compact history, so this is what the log held, not how
        // many commits ever happened).
        let (mut logged_since_restart, mut last_rebirth_replays) = (0u64, 0u64);

        for op in &ops {
            match op {
                Op::Insert { into_alpha, labels } => {
                    let (src, table, next) = if *into_alpha {
                        ("alpha", "t", &mut next_alpha)
                    } else {
                        ("beta", "u", &mut next_beta)
                    };
                    let rows: Vec<Vec<Value>> = labels
                        .iter()
                        .map(|l| {
                            let row = vec![(*next).into(), l.as_str().into()];
                            *next += 1;
                            row
                        })
                        .collect();
                    durable.insert_many(src, table, rows.clone()).unwrap();
                    mirror.insert_many(src, table, rows).unwrap();
                    if !labels.is_empty() {
                        logged_since_restart += 1;
                    }
                }
                Op::Restart => {
                    // Each life's update stream must replay its baseline
                    // into the result it held at death.
                    for (sub, baseline) in &panel {
                        prop_assert_eq!(
                            canonical(&replay(baseline.clone(), &sub.drain_updates())),
                            canonical(&sub.result()),
                            "pre-crash update replay diverged"
                        );
                    }
                    drop(panel);
                    drop(durable);
                    durable = empty_integrated();
                    panel = subscribe_panel(&durable);
                    let report = durable.open(&path).unwrap();
                    prop_assert_eq!(report.truncated_bytes, 0);
                    prop_assert_eq!(report.batches_replayed, durable.stats().recovery_replays);
                    // Re-armed subscriptions catch up to the replayed state;
                    // their post-recovery baseline is the recovered result.
                    for (sub, baseline) in &mut panel {
                        sub.drain_updates();
                        *baseline = sub.result();
                    }
                    logged_since_restart = 0;
                    last_rebirth_replays = report.batches_replayed;
                }
                Op::Checkpoint => {
                    let report = durable.checkpoint().unwrap();
                    prop_assert!(report.records_after <= report.records_before);
                }
            }
            assert_answers_match(&durable, &mirror, "mid-workload");
            for ((sub, _), text) in panel.iter().zip(SHAPES) {
                prop_assert_eq!(
                    canonical(&sub.result()),
                    canonical(&mirror.prepare(text).unwrap().execute_value(&Params::new()).unwrap()),
                    "recovered subscription diverged for `{}`", text
                );
            }
        }

        // Final life's update stream still replays.
        for (sub, baseline) in &panel {
            prop_assert_eq!(
                canonical(&replay(baseline.clone(), &sub.drain_updates())),
                canonical(&sub.result())
            );
        }
        // Durability counters account for exactly the logged batches: the
        // mirror logged (and replayed) nothing.
        let stats = durable.stats();
        prop_assert_eq!(stats.wal_appends, logged_since_restart);
        prop_assert_eq!(stats.recovery_replays, last_rebirth_replays);
        prop_assert_eq!(mirror.stats().wal_appends, 0);
        prop_assert_eq!(mirror.stats().recovery_replays, 0);
    }
}

/// The crash-recovery smoke (run standalone by CI): a log whose tail was torn
/// mid-append — simulated by appending a record header that promises more
/// bytes than the file holds — reopens cleanly, reports the truncation, and
/// replays the intact prefix exactly.
#[test]
fn torn_tail_is_truncated_and_the_intact_prefix_replays() {
    let path = temp_wal("torn");
    let _guard = WalGuard(path.clone());

    let mut ds = empty_integrated();
    ds.open(&path).unwrap();
    ds.insert("alpha", "t", vec![0.into(), "a".into()]).unwrap();
    ds.insert("beta", "u", vec![0.into(), "b".into()]).unwrap();
    ds.insert("alpha", "t", vec![1.into(), "c".into()]).unwrap();
    let committed = canonical(
        &ds.prepare(SHAPES[1])
            .unwrap()
            .execute_value(&Params::new())
            .unwrap(),
    );
    drop(ds);

    // Tear the tail: a length prefix claiming 64 payload bytes, then EOF.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&64u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"torn").unwrap();
    }

    let mut ds = empty_integrated();
    let report = ds.open(&path).unwrap();
    assert!(
        report.truncated_bytes > 0,
        "the torn tail must be detected and truncated"
    );
    assert_eq!((report.batches_replayed, report.rows_replayed), (3, 3));
    assert_eq!(
        canonical(
            &ds.prepare(SHAPES[1])
                .unwrap()
                .execute_value(&Params::new())
                .unwrap()
        ),
        committed,
        "the intact prefix must replay to the pre-crash committed state"
    );

    // The truncation is durable: writing through the recovered log and
    // reopening once more replays cleanly (no lingering garbage).
    ds.insert("alpha", "t", vec![2.into(), "d".into()]).unwrap();
    drop(ds);
    let mut ds = empty_integrated();
    let report = ds.open(&path).unwrap();
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(report.batches_replayed, 4);
}

/// Checkpointing compacts history — one record per (source, table) — without
/// changing what a reborn dataspace answers.
#[test]
fn checkpoint_compacts_history_without_changing_answers() {
    let path = temp_wal("checkpoint");
    let _guard = WalGuard(path.clone());

    let mut ds = empty_integrated();
    ds.open(&path).unwrap();
    for i in 0..6i64 {
        ds.insert("alpha", "t", vec![i.into(), "x".into()]).unwrap();
        ds.insert("beta", "u", vec![i.into(), "y".into()]).unwrap();
    }
    let before: Vec<Vec<String>> = SHAPES
        .iter()
        .map(|t| {
            canonical(
                &ds.prepare(t)
                    .unwrap()
                    .execute_value(&Params::new())
                    .unwrap(),
            )
        })
        .collect();

    let report = ds.checkpoint().unwrap();
    assert_eq!(report.records_before, 12);
    assert_eq!(report.records_after, 2, "one compacted record per table");
    drop(ds);

    let mut ds = empty_integrated();
    let report = ds.open(&path).unwrap();
    assert_eq!(report.batches_replayed, 2);
    assert_eq!(report.rows_replayed, 12);
    let after: Vec<Vec<String>> = SHAPES
        .iter()
        .map(|t| {
            canonical(
                &ds.prepare(t)
                    .unwrap()
                    .execute_value(&Params::new())
                    .unwrap(),
            )
        })
        .collect();
    assert_eq!(after, before, "compaction must not change answers");
}

/// `wal_appends` counts exactly the batches committed *through* the attached
/// log: empty batches and replayed records don't count, and a dataspace with
/// no log attached logs nothing.
#[test]
fn durability_counters_track_logged_and_replayed_batches() {
    let path = temp_wal("counters");
    let _guard = WalGuard(path.clone());

    let mut ds = empty_integrated();
    assert_eq!(ds.stats().wal_appends, 0);
    // Pre-attachment inserts are not logged...
    ds.insert("alpha", "t", vec![0.into(), "a".into()]).unwrap();
    ds.open(&path).unwrap();
    assert_eq!(ds.stats().wal_appends, 0);
    // ...post-attachment non-empty batches are, empty ones aren't.
    ds.insert("alpha", "t", vec![1.into(), "b".into()]).unwrap();
    ds.insert_many("beta", "u", vec![]).unwrap();
    ds.insert("beta", "u", vec![0.into(), "c".into()]).unwrap();
    let stats = ds.stats();
    assert_eq!(stats.wal_appends, 2);
    assert_eq!(stats.recovery_replays, 0);
    drop(ds);

    // The reborn dataspace replays the two logged batches; the
    // pre-attachment row is gone — the log records what it saw.
    let mut ds = empty_integrated();
    let report = ds.open(&path).unwrap();
    assert_eq!(report.batches_replayed, 2);
    let stats = ds.stats();
    assert_eq!(stats.recovery_replays, 2);
    assert_eq!(
        stats.wal_appends, 0,
        "replayed records must not be re-appended"
    );
    assert_eq!(
        ds.query_value("count <<ALPHA_t>>").unwrap(),
        Value::Int(1),
        "only the logged alpha row survives rebirth"
    );
}

/// Acceptance: the seven Table-1 priority queries answer identically before
/// and after a crash/reopen of a WAL-backed proteomics dataspace that took
/// writes through the log.
#[test]
fn table1_priority_queries_survive_crash_and_recovery() {
    use proteomics::intersection_integration::all_iterations;
    use proteomics::queries::priority_queries;
    use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};

    fn proteomics_ds() -> Dataspace {
        let scale = CaseStudyScale::tiny();
        let mut ds = Dataspace::with_config(DataspaceConfig {
            drop_redundant: false,
            ..DataspaceConfig::default()
        });
        ds.add_source(generate_pedro(&scale)).unwrap();
        ds.add_source(generate_gpmdb(&scale)).unwrap();
        ds.add_source(generate_pepseeker(&scale)).unwrap();
        ds.federate().unwrap();
        for (_q, spec) in all_iterations().unwrap() {
            ds.integrate(spec).unwrap();
        }
        ds
    }

    fn answers(ds: &Dataspace) -> Vec<(String, Vec<String>)> {
        priority_queries()
            .iter()
            .map(|q| {
                let bag = ds
                    .prepare(&q.iql)
                    .and_then(|p| p.execute(&q.params))
                    .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
                let mut rows: Vec<String> = bag.iter().map(|v| v.to_string()).collect();
                rows.sort();
                (q.name.clone(), rows)
            })
            .collect()
    }

    let path = temp_wal("table1");
    let _guard = WalGuard(path.clone());

    let mut ds = proteomics_ds();
    ds.open(&path).unwrap();
    // Take writes through the log so recovery has real work to do.
    ds.insert(
        "pedro",
        "protein",
        vec![
            1000.into(),
            "ACC90001".into(),
            "Recovered kinase 1".into(),
            "H. sapiens".into(),
            Value::Null,
            Value::Null,
        ],
    )
    .unwrap();
    ds.insert(
        "pedro",
        "protein",
        vec![
            1001.into(),
            "ACC90002".into(),
            "Recovered kinase 2".into(),
            "H. sapiens".into(),
            Value::Null,
            Value::Null,
        ],
    )
    .unwrap();
    let before = answers(&ds);
    drop(ds);

    let mut ds = proteomics_ds();
    let report = ds.open(&path).unwrap();
    assert_eq!((report.batches_replayed, report.rows_replayed), (2, 2));
    assert_eq!(
        answers(&ds),
        before,
        "Table-1 answers must survive crash and recovery identically"
    );
}
