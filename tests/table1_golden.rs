//! Golden-result snapshot tests for the seven Table-1 priority queries (§3 of the
//! paper), pinned at `CaseStudyScale::tiny()` (fixed seed): the exact multiset of
//! answers for Q1–Q7 is written out below, so **no planner change can ever
//! silently alter a query answer** — reordering, plan caching, parallel fetch and
//! nested loops must all reproduce these rows exactly.
//!
//! Regenerate with `cargo run --example golden_probe` after an *intentional*
//! semantic change (e.g. new data generator), and say so in the commit.

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use proteomics::intersection_integration::all_iterations;
use proteomics::queries::priority_queries;
use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};

fn integrated() -> Dataspace {
    let scale = CaseStudyScale::tiny();
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..Default::default()
    });
    ds.add_source(generate_pedro(&scale)).unwrap();
    ds.add_source(generate_gpmdb(&scale)).unwrap();
    ds.add_source(generate_pepseeker(&scale)).unwrap();
    ds.federate().unwrap();
    for (_q, spec) in all_iterations().unwrap() {
        ds.integrate(spec).unwrap();
    }
    ds
}

/// Canonical (sorted) display of a bag, element per line.
fn canonical(bag: &iql::Bag) -> Vec<String> {
    let mut rows: Vec<String> = bag.iter().map(|v| v.to_string()).collect();
    rows.sort();
    rows
}

fn golden_q1() -> Vec<&'static str> {
    vec![
        "{'PEDRO', 0}",
        "{'PEDRO', 4}",
        "{'PEDRO', 5}",
        "{'PEDRO', 8}",
        "{'pepSeeker', 'ACC00001'}",
        "{'pepSeeker', 'ACC00001'}",
    ]
}

fn golden_q2() -> Vec<&'static str> {
    vec![
        "{'PEDRO', 0, 'Uncharacterized transcription factor 962'}",
        "{'PEDRO', 2, 'Putative membrane protein 110'}",
        "{'PEDRO', 4, 'Conserved kinase 507'}",
        "{'PEDRO', 5, 'Uncharacterized ribosomal protein 739'}",
        "{'PEDRO', 6, 'Putative hydrolase 309'}",
        "{'PEDRO', 8, 'Conserved transcription factor 171'}",
    ]
}

fn golden_q3() -> Vec<&'static str> {
    vec!["{'PEDRO', 3}", "{'PEDRO', 6}"]
}

fn golden_q4() -> Vec<&'static str> {
    vec![
        "{'PEDRO', 1, 'VGQNFKQACHSH'}",
        "{'PEDRO', 1, 'VGQNFKQACHSH'}",
        "{'PEDRO', 10, 'VGQNFKQACHSH'}",
        "{'PEDRO', 10, 'VGQNFKQACHSH'}",
        "{'PEDRO', 12, 'VGQNFKQACHSH'}",
        "{'PEDRO', 12, 'VGQNFKQACHSH'}",
        "{'PEDRO', 13, 'VGQNFKQACHSH'}",
        "{'PEDRO', 17, 'VGQNFKQACHSH'}",
        "{'PEDRO', 17, 'VGQNFKQACHSH'}",
        "{'PEDRO', 19, 'VGQNFKQACHSH'}",
        "{'PEDRO', 20, 'VGQNFKQACHSH'}",
        "{'PEDRO', 20, 'VGQNFKQACHSH'}",
        "{'PEDRO', 22, 'VGQNFKQACHSH'}",
        "{'PEDRO', 22, 'VGQNFKQACHSH'}",
        "{'PEDRO', 3, 'VGQNFKQACHSH'}",
        "{'PEDRO', 4, 'VGQNFKQACHSH'}",
        "{'PEDRO', 7, 'VGQNFKQACHSH'}",
        "{'PEDRO', 7, 'VGQNFKQACHSH'}",
        "{'PEDRO', 8, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 0, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 1, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 10, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 10, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 12, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 12, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 18, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 19, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 22, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 22, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 23, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 23, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 4, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 4, 'VGQNFKQACHSH'}",
        "{'pepSeeker', 6, 'VGQNFKQACHSH'}",
    ]
}

fn golden_q5() -> Vec<&'static str> {
    vec!["{'PEDRO', 1}", "{'PEDRO', 1}", "{'PEDRO', 4}"]
}

fn golden_q6() -> Vec<&'static str> {
    vec![
        "{'PEDRO', 1, 'GYNWKYNGISLK', 0.40243}",
        "{'PEDRO', 11, 'LWNRMKRRMNHTFHE', 0.30562}",
        "{'PEDRO', 13, 'VGQNFKQACHSH', 0.86936}",
        "{'PEDRO', 19, 'MQCNRCHDFLPE', 0.48943}",
        "{'PEDRO', 2, 'GGPEHNFHETPFHF', 0.58589}",
        "{'PEDRO', 20, 'GYNWKYNGISLK', 0.9991}",
        "{'PEDRO', 24, 'DINFLYKVWIWD', 0.10961}",
        "{'PEDRO', 27, 'PYYCQVTPC', 0.18373}",
        "{'PEDRO', 31, 'LGKFAFMPQTFC', 0.57062}",
        "{'PEDRO', 35, 'DINFLYKVWIWD', 0.09169}",
        "{'PEDRO', 38, 'DIPNCRFEVGIKGPTD', 0.66007}",
        "{'PEDRO', 5, 'GYNWKYNGISLK', 0.40624}",
        "{'PEDRO', 7, 'CISNECLA', 0.7831}",
        "{'PEDRO', 9, 'VGQNFKQACHSH', 0.66945}",
    ]
}

fn golden_q7() -> Vec<&'static str> {
    vec![
        "{14, 14, 38.7, 133.8}",
        "{27, 27, 143.1, 187.8}",
        "{36, 36, 5.4, 176.9}",
    ]
}

fn goldens() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("Q1", golden_q1()),
        ("Q2", golden_q2()),
        ("Q3", golden_q3()),
        ("Q4", golden_q4()),
        ("Q5", golden_q5()),
        ("Q6", golden_q6()),
        ("Q7", golden_q7()),
    ]
}

#[test]
fn table1_answers_match_pinned_goldens() {
    let ds = integrated();
    let queries = priority_queries();
    for ((name, golden), q) in goldens().into_iter().zip(&queries) {
        assert_eq!(name, q.name, "query order drifted");
        let bag = ds
            .prepare(&q.iql)
            .and_then(|p| p.execute(&q.params))
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(
            canonical(&bag),
            golden,
            "{name} answers drifted from the pinned golden snapshot"
        );
    }
}

/// Every evaluation mode — planned (default: reorder + parallel fetch + the
/// dataspace's shared plan cache), a cached re-run, and naive nested loops —
/// must reproduce the same pinned answers.
#[test]
fn table1_agrees_across_all_evaluation_modes() {
    let ds = integrated();
    for (idx, q) in priority_queries().iter().enumerate() {
        let expr = iql::parse(&q.iql).unwrap();
        let golden = &goldens()[idx].1;
        let planned = ds
            .provider()
            .unwrap()
            .answer_bag_with(&expr, &q.params)
            .unwrap();
        assert_eq!(&canonical(&planned), golden, "{} planned", q.name);
        // Re-run through the same dataspace: the plan cache serves this one.
        let cached = ds
            .provider()
            .unwrap()
            .answer_bag_with(&expr, &q.params)
            .unwrap();
        assert_eq!(
            planned.items(),
            cached.items(),
            "{} cached re-run must preserve order exactly",
            q.name
        );
        let naive = ds
            .provider()
            .unwrap()
            .answer_with_nested_loops_params(&expr, &q.params)
            .unwrap()
            .expect_bag()
            .unwrap();
        assert_eq!(
            planned.items(),
            naive.items(),
            "{} planned vs nested loops order",
            q.name
        );
    }
    assert!(
        ds.plan_cache().hit_count() > 0,
        "re-runs must be served from the dataspace plan cache"
    );
}
