//! E6 — the Intersection Schema Tool interaction (Figure 5) driving a real
//! integration iteration, including automatic reverse-query generation and the
//! mappings table.

use automed::wrapper::wrap_relational;
use automed::{ConstructKind, Repository};
use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::tool::IntersectionSchemaTool;
use proteomics::sources::{
    generate_pedro, generate_pepseeker, pedro_schema, pepseeker_schema, CaseStudyScale,
};

/// The §2.4 example: proteinhit.db_search (Pedro) ≡ proteinhit.fileparameters
/// (PepSeeker) becomes UProteinHit.dbsearch, the redundant source objects can be
/// dropped, and queries over the new concept return the union of both sources.
#[test]
fn paper_section_2_4_example_with_the_tool() {
    let scale = CaseStudyScale::tiny();

    // Build the spec through the tool against a schema-only repository.
    let mut repository = Repository::new();
    repository
        .add_source_schema(wrap_relational(&pedro_schema()))
        .unwrap();
    repository
        .add_source_schema(wrap_relational(&pepseeker_schema()))
        .unwrap();
    let mut tool = IntersectionSchemaTool::new(&repository, "I_proteinhit");
    tool.new_object("UProteinHit,dbsearch", ConstructKind::Column);
    tool.select_object("pedro", "proteinhit,db_search").unwrap();
    tool.select_object("pepseeker", "proteinhit,fileparameters")
        .unwrap();

    let table = tool.mapping_table().unwrap();
    assert_eq!(table.rows.len(), 2);
    assert!(table.rows.iter().all(|r| r.reverse_auto_generated));
    assert!(table.render().contains("UProteinHit"));

    let spec = tool.finish().unwrap();
    assert_eq!(spec.manual_transformation_count(), 2);

    // Apply the spec to a live dataspace and verify the integrated extent.
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: true,
        ..Default::default()
    });
    ds.add_source(generate_pedro(&scale)).unwrap();
    ds.add_source(generate_pepseeker(&scale)).unwrap();
    ds.federate().unwrap();
    let record = ds.integrate(spec).unwrap();
    assert_eq!(record.manual_transformations, 2);

    // The new concept's extent is the bag union of both sources' contributions.
    let total = ds.query_value("count <<UProteinHit, dbsearch>>").unwrap();
    assert_eq!(total, iql::Value::Int((scale.protein_hits * 2) as i64));
    // The covered source objects were dropped from the global schema…
    assert!(ds
        .dropped_redundant()
        .iter()
        .any(|s| s.key().contains("db_search")));
    // …but their information is still reachable through the intersection concept.
    let pedro_only = ds
        .query("[{k, x} | {'PEDRO', k, x} <- <<UProteinHit, dbsearch>>]")
        .unwrap();
    assert_eq!(pedro_only.len(), scale.protein_hits);
}

/// The tool refuses inconsistent input and the default forward queries it generates
/// are the provenance-tagged identities described in the paper.
#[test]
fn tool_guards_and_defaults() {
    let mut repository = Repository::new();
    repository
        .add_source_schema(wrap_relational(&pedro_schema()))
        .unwrap();
    let mut tool = IntersectionSchemaTool::new(&repository, "I");

    // Selecting before naming a target is a workflow error.
    assert!(tool.select_object("pedro", "protein").is_err());
    // Unknown source objects are rejected.
    tool.new_object("UProtein", ConstructKind::Table);
    assert!(tool.select_object("pedro", "not_a_table").is_err());
    // A valid selection produces the tagged identity query.
    tool.select_object("pedro", "protein").unwrap();
    let spec = tool.finish().unwrap();
    let forward = iql::pretty::print(&spec.mappings[0].contributions[0].query);
    assert_eq!(forward, "[{'PEDRO', k} | k <- <<protein>>]");
}

/// Editing the auto-generated queries (both directions) is reflected in the produced
/// specification and in the effort accounting.
#[test]
fn edited_queries_flow_into_the_spec() {
    let mut repository = Repository::new();
    repository
        .add_source_schema(wrap_relational(&pepseeker_schema()))
        .unwrap();
    let mut tool = IntersectionSchemaTool::new(&repository, "I_edit");
    tool.new_object("UPeptideHit,score", ConstructKind::Column);
    tool.select_object("pepseeker", "peptidehit,score").unwrap();
    tool.edit_forward_query(
        "pepseeker",
        "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, score>>; x >= 20]",
    )
    .unwrap();
    tool.edit_reverse_query(
        "pepseeker",
        "Range [{k, x} | {'pepSeeker', k, x} <- <<UPeptideHit, score>>] Any",
    )
    .unwrap();
    let spec = tool.finish().unwrap();
    // 1 forward + 1 user-supplied reverse = 2 manual transformations.
    assert_eq!(spec.manual_transformation_count(), 2);
    let table = dataspace_core::mapping::MappingTable::from_spec(&spec);
    assert!(!table.rows[0].reverse_auto_generated);
    assert!(table.rows[0].forward.contains(">= 20"));
}
