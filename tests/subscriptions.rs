//! Standing subscriptions: `subscribe` ≡ re-execute, differentially.
//!
//! A [`dataspace_core::Subscription`] promises exactly one thing: after every
//! insert, its held result equals what re-executing the prepared query from
//! scratch would return — answers, **order and multiplicity** — no matter
//! whether the engine absorbed the insert through the O(delta) standing-plan
//! path or fell back to transparent re-execution. This suite locks that
//! promise in:
//!
//! * a proptest harness drives random initial populations and random insert
//!   interleavings across both sources against a panel of query shapes chosen
//!   to exercise *every* maintenance path: identity federated extents
//!   (pure delta), integrated multi-contribution extents (delta on the tail
//!   contribution, fallback on earlier ones), cross-source join chains
//!   (delta probes the retained hash index), self-joins and aggregates
//!   (never incremental);
//! * drained updates must **replay**: folding the update stream over the
//!   initially seeded result reproduces the final result exactly;
//! * deterministic tests pin that a mixed workload really travels both paths
//!   (the `DataspaceStats` counters move) — so the differential assertions
//!   above are known to cover them.

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use dataspace_core::{Subscription, SubscriptionUpdate};
use iql::{Bag, Params, Value};
use proptest::prelude::*;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;

fn source(name: &str, table: &str, rows: &[(i64, &str)]) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    let mut db = Database::new(schema);
    for (k, v) in rows {
        db.insert(table, vec![(*k).into(), (*v).into()]).unwrap();
    }
    db
}

fn uacc_spec() -> IntersectionSpec {
    IntersectionSpec::new("I1").with_mapping(
        ObjectMapping::column("UAcc", "label")
            .with_contribution(
                SourceContribution::parsed(
                    "alpha",
                    "[{'ALPHA', k, x} | {k, x} <- <<t, label>>]",
                    ["t,label"],
                )
                .unwrap(),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "beta",
                    "[{'BETA', k, x} | {k, x} <- <<u, label>>]",
                    ["u,label"],
                )
                .unwrap(),
            ),
    )
}

/// Federate alpha + beta and integrate `UAcc`, keeping the redundant
/// federated objects queryable so the panel can mix identity-extent and
/// integrated-extent shapes over one dataspace.
fn integrated(alpha_rows: &[(i64, &str)], beta_rows: &[(i64, &str)]) -> Dataspace {
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..DataspaceConfig::default()
    });
    ds.add_source(source("alpha", "t", alpha_rows)).unwrap();
    ds.add_source(source("beta", "u", beta_rows)).unwrap();
    ds.federate().unwrap();
    ds.integrate(uacc_spec()).unwrap();
    ds
}

/// The query-shape panel. Together the shapes cover every maintenance path:
/// identity lead (delta on alpha), integrated lead (delta on beta — the tail
/// contribution — fallback on alpha), a cross-source join chain (delta
/// drives appends through the retained hash index), a parameterised filter,
/// and two never-incremental shapes (self-join, aggregate).
const SHAPES: &[&str] = &[
    "[x | {k, x} <- <<ALPHA_t, ALPHA_label>>]",
    "[{s, k} | {s, k, x} <- <<UAcc, label>>]",
    "[{s, k} | {s, k, x} <- <<UAcc, label>>; x = ?label]",
    "[{x, y} | {k, x} <- <<ALPHA_t, ALPHA_label>>; {j, y} <- <<BETA_u, BETA_label>>; j = k]",
    "[{x, y} | {s1, k1, x} <- <<UAcc, label>>; {s2, k2, y} <- <<UAcc, label>>; k2 = k1]",
    "count <<UAcc, label>>",
];

fn params_for(text: &str, label: &str) -> Params {
    if text.contains("?label") {
        Params::new().with("label", label)
    } else {
        Params::new()
    }
}

/// Re-execute `text` from scratch and compare against the subscription's
/// held result — the differential oracle.
fn assert_matches_reexecution(ds: &Dataspace, text: &str, params: &Params, sub: &Subscription) {
    let expected = ds.prepare(text).unwrap().execute_value(params).unwrap();
    let got = sub.result();
    match (&got, &expected) {
        (Value::Bag(g), Value::Bag(e)) => assert_eq!(
            g.items(),
            e.items(),
            "subscription diverged from re-execution for `{text}`"
        ),
        _ => assert_eq!(got, expected, "subscription diverged for `{text}`"),
    }
}

/// Fold an update stream over a baseline result: `Delta` appends at the
/// tail, `Refreshed` replaces wholesale.
fn replay(mut baseline: Value, updates: &[SubscriptionUpdate]) -> Value {
    for update in updates {
        match update {
            SubscriptionUpdate::Delta(delta) => {
                let Value::Bag(bag) = &mut baseline else {
                    panic!("Delta update against a non-bag result");
                };
                for v in delta.iter() {
                    bag.push(v.clone());
                }
            }
            SubscriptionUpdate::Refreshed(value) => baseline = value.clone(),
        }
    }
    baseline
}

const LABEL_CHARS: &[&str] = &["a", "b", "c", " ", "'", "ю", "百"];

fn label() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..LABEL_CHARS.len(), 0..4)
        .prop_map(|idxs| idxs.into_iter().map(|i| LABEL_CHARS[i]).collect())
}

proptest! {
    /// The tentpole differential: over random initial populations and a
    /// random interleaving of inserts into both sources, every shape's
    /// subscription equals from-scratch re-execution after **every** insert,
    /// and its drained update stream replays the baseline into the final
    /// result.
    #[test]
    fn subscriptions_equal_reexecution_under_random_insert_interleavings(
        alpha in prop::collection::vec(label(), 0..5),
        beta in prop::collection::vec(label(), 0..5),
        inserts in prop::collection::vec((any::<bool>(), label()), 0..8),
        param in label(),
    ) {
        let alpha_rows: Vec<(i64, &str)> =
            alpha.iter().enumerate().map(|(i, v)| (i as i64, v.as_str())).collect();
        let beta_rows: Vec<(i64, &str)> =
            beta.iter().enumerate().map(|(i, v)| (i as i64, v.as_str())).collect();
        let mut ds = integrated(&alpha_rows, &beta_rows);

        let panel: Vec<(&str, Params, Subscription, Value)> = SHAPES
            .iter()
            .map(|text| {
                let params = params_for(text, &param);
                let sub = ds.prepare(text).unwrap().subscribe(&params).unwrap();
                let baseline = sub.result();
                (*text, params, sub, baseline)
            })
            .collect();

        // Interleave inserts across the sources; keys continue past the
        // initial population, per source, so primary keys never collide.
        let (mut next_alpha, mut next_beta) = (alpha.len() as i64, beta.len() as i64);
        for (into_alpha, value) in &inserts {
            if *into_alpha {
                ds.insert("alpha", "t", vec![next_alpha.into(), value.as_str().into()])
                    .unwrap();
                next_alpha += 1;
            } else {
                ds.insert("beta", "u", vec![next_beta.into(), value.as_str().into()])
                    .unwrap();
                next_beta += 1;
            }
            for (text, params, sub, _) in &panel {
                assert_matches_reexecution(&ds, text, params, sub);
            }
        }

        // The update stream replays the baseline into the final result.
        for (text, _, sub, baseline) in &panel {
            let replayed = replay(baseline.clone(), &sub.drain_updates());
            prop_assert_eq!(replayed, sub.result(), "update replay diverged for `{}`", text);
        }
    }
}

/// A fixed mixed workload must travel *both* maintenance paths — otherwise
/// the differential harness above could pass while silently exercising only
/// re-execution.
#[test]
fn mixed_workloads_use_both_maintenance_paths() {
    let mut ds = integrated(&[(0, "a")], &[(0, "b")]);
    let subs: Vec<Subscription> = SHAPES
        .iter()
        .map(|text| {
            ds.prepare(text)
                .unwrap()
                .subscribe(&params_for(text, "a"))
                .unwrap()
        })
        .collect();
    for i in 1..4i64 {
        ds.insert("alpha", "t", vec![i.into(), "x".into()]).unwrap();
        ds.insert("beta", "u", vec![i.into(), "y".into()]).unwrap();
    }
    let stats = ds.stats();
    assert!(stats.delta_evals > 0, "no insert took the O(delta) path");
    assert!(
        stats.fallback_reexecs > 0,
        "no insert took the fallback path"
    );
    for (text, sub) in SHAPES.iter().zip(&subs) {
        assert_matches_reexecution(&ds, text, &params_for(text, "a"), sub);
    }
}

/// Standing plans stay on the row engine: the O(delta) incremental path
/// executes cached standing plans directly through the row executor, so
/// delta maintenance must never register a columnar execution — the
/// dataspace-wide `columnar_execs` counter stays exactly where the seed
/// execution left it while `delta_evals` advances.
#[test]
fn delta_maintenance_stays_on_the_row_engine() {
    let mut ds = integrated(&[(0, "a"), (1, "b")], &[(0, "c"), (1, "d")]);
    let text =
        "[{x, y} | {k, x} <- <<ALPHA_t, ALPHA_label>>; {j, y} <- <<BETA_u, BETA_label>>; j = k]";
    let sub = ds.prepare(text).unwrap().subscribe(&Params::new()).unwrap();
    assert!(sub.is_incremental());
    let seeded = ds.stats();
    // Append to the chain's lead only: probed-side inserts are allowed to
    // fall back to re-execution, which would legitimately run columnar.
    for i in 2..6i64 {
        ds.insert("alpha", "t", vec![i.into(), "x".into()]).unwrap();
    }
    let after = ds.stats();
    assert!(
        after.delta_evals > seeded.delta_evals,
        "the inserts must travel the O(delta) path"
    );
    assert_eq!(
        after.fallback_reexecs, seeded.fallback_reexecs,
        "these inserts must not fall back to re-execution"
    );
    assert_eq!(
        after.columnar_execs, seeded.columnar_execs,
        "delta maintenance must not run the columnar engine"
    );
    // The row-path result still matches a fresh (columnar-default)
    // re-execution, which is itself allowed to run columnar.
    assert_matches_reexecution(&ds, text, &Params::new(), &sub);
}

/// Bag results accumulate appends in extent order: the delta of a join chain
/// lands at the tail exactly where re-execution would put it (order *and*
/// multiplicity, duplicates included).
#[test]
fn join_chain_deltas_append_in_reexecution_order() {
    let mut ds = integrated(&[(0, "dup"), (1, "dup")], &[(0, "dup")]);
    let text =
        "[{x, y} | {k, x} <- <<ALPHA_t, ALPHA_label>>; {j, y} <- <<BETA_u, BETA_label>>; j = k]";
    let sub = ds.prepare(text).unwrap().subscribe(&Params::new()).unwrap();
    assert!(sub.is_incremental());
    // Appending to the chain's lead extends the join at the tail...
    ds.insert("alpha", "t", vec![2.into(), "dup".into()])
        .unwrap();
    // ...while appending to the probed side rebuilds the retained index.
    ds.insert("beta", "u", vec![1.into(), "dup".into()])
        .unwrap();
    ds.insert("alpha", "t", vec![3.into(), "dup".into()])
        .unwrap();
    assert_matches_reexecution(&ds, text, &Params::new(), &sub);
    let replayed = replay(
        Value::Bag(Bag::from_values(vec![Value::pair(
            Value::str("dup"),
            Value::str("dup"),
        )])),
        &sub.drain_updates(),
    );
    assert_eq!(replayed, sub.result());
}

/// An empty `insert_many` batch is a no-op from every observable angle: no
/// update is pushed, no maintenance counter moves, and — crucially — the
/// subscription's delta eligibility is *not* burned, so the next real insert
/// still travels the O(delta) path. (A buggy implementation that stamped the
/// subscription or pushed a spurious `Refreshed` for the empty commit would
/// fail one of these asserts.)
#[test]
fn empty_batches_push_no_updates_and_keep_delta_eligibility() {
    let mut ds = integrated(&[(0, "a")], &[(0, "b")]);
    let text = "[x | {k, x} <- <<ALPHA_t, ALPHA_label>>]";
    let sub = ds.prepare(text).unwrap().subscribe(&Params::new()).unwrap();
    assert!(sub.is_incremental());
    let seeded = ds.stats();

    ds.insert_many("alpha", "t", vec![]).unwrap();
    ds.insert_many("beta", "u", vec![]).unwrap();

    let after_empty = ds.stats();
    assert!(
        sub.drain_updates().is_empty(),
        "an empty batch must not push subscription updates"
    );
    assert_eq!(
        (after_empty.delta_evals, after_empty.fallback_reexecs),
        (seeded.delta_evals, seeded.fallback_reexecs),
        "an empty batch must not run any maintenance"
    );

    // The empty batches must not have burned the sync stamp: the next real
    // insert is still absorbed incrementally, not via fallback.
    ds.insert("alpha", "t", vec![1.into(), "c".into()]).unwrap();
    let after_real = ds.stats();
    assert_eq!(
        after_real.delta_evals,
        after_empty.delta_evals + 1,
        "the insert after the empty batches must still take the O(delta) path"
    );
    assert_eq!(
        after_real.fallback_reexecs, after_empty.fallback_reexecs,
        "the insert after the empty batches must not fall back"
    );
    assert_matches_reexecution(&ds, text, &Params::new(), &sub);
    let updates = sub.drain_updates();
    assert!(
        matches!(updates.as_slice(), [SubscriptionUpdate::Delta(_)]),
        "expected exactly one Delta update, got {updates:?}"
    );
}

/// Pins the version-stamp fix: the pre/post stamps a commit fans out to
/// subscriptions both derive from the commit's own critical section, so the
/// delta-eligibility judgment (`synced == pre_version`) is exact across a
/// run of consecutive commits — every lead-table insert is absorbed through
/// the O(delta) path with the sync stamp advancing in lockstep. A racy
/// `pre_version` read (the old code read the provider version *before* the
/// write applied, i.e. potentially out of sync with the commit it describes)
/// would break the chain and surface here as a fallback re-execution.
#[test]
fn commit_derived_stamps_keep_consecutive_deltas_on_the_incremental_path() {
    let mut ds = integrated(&[(0, "a")], &[(0, "b")]);
    let text = "[x | {k, x} <- <<ALPHA_t, ALPHA_label>>]";
    let sub = ds.prepare(text).unwrap().subscribe(&Params::new()).unwrap();
    assert!(sub.is_incremental());
    let seeded = ds.stats();
    const N: u64 = 5;
    for i in 0..N as i64 {
        ds.insert("alpha", "t", vec![(i + 1).into(), "x".into()])
            .unwrap();
    }
    let after = ds.stats();
    assert_eq!(
        after.delta_evals,
        seeded.delta_evals + N,
        "every consecutive insert must be absorbed through the delta path"
    );
    assert_eq!(
        after.fallback_reexecs, seeded.fallback_reexecs,
        "a stale pre-commit stamp would force a fallback re-execution"
    );
    assert_matches_reexecution(&ds, text, &Params::new(), &sub);
    // And the update stream is pure deltas — one per commit, replayable.
    let updates = sub.drain_updates();
    assert_eq!(updates.len() as u64, N);
    assert!(
        updates
            .iter()
            .all(|u| matches!(u, SubscriptionUpdate::Delta(_))),
        "commit-derived stamps must never downgrade a lead insert to Refreshed"
    );
}
