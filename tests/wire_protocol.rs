//! Protocol robustness: every way a client can misbehave — malformed,
//! truncated, oversized frames, unknown opcodes, bodies that don't match
//! their opcode, vanishing mid-stream — must produce a typed error frame or
//! a clean session teardown. Never a panic, never a leaked subscription.

#[path = "wire_support/mod.rs"]
mod wire_support;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use iql::{Params, Value};
use proptest::prelude::*;
use server::ServerConfig;
use wire::{encode_frame, Client, ClientError, ErrorCode, FrameReader, ReqOp, Request, Response};

use wire_support::{eventually, serve_default, serve_with, INCREMENTAL_SHAPE};

/// Read one response frame off a raw socket (blocking, short timeout).
fn read_response(stream: &mut TcpStream) -> Option<(u64, Response)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut reader = FrameReader::new();
    match reader.poll(stream) {
        Ok(Some(frame)) => Some((
            frame.request_id,
            Response::decode(frame.opcode, &frame.body).expect("decodable response"),
        )),
        _ => None,
    }
}

/// Drain the socket until EOF, proving the server closed the connection.
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut sink = [0u8; 1024];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) => panic!("expected server-side close, got {e}"),
        }
    }
}

#[test]
fn full_surface_round_trip() {
    let (handle, addr, ds) = serve_default();
    let mut client = Client::connect(addr).unwrap();

    // Prepare + execute with bindings, checked against in-process execution.
    let (h, params) = client
        .prepare("[{s, k} | {s, k, x} <- <<UAcc, label>>; x = ?label]")
        .unwrap();
    assert_eq!(params, vec!["label".to_string()]);
    let rows = client
        .execute(h, &Params::new().with("label", "ACC2"))
        .unwrap();
    let expected = ds
        .read()
        .unwrap()
        .prepare("[{s, k} | {s, k, x} <- <<UAcc, label>>; x = ?label]")
        .unwrap()
        .execute(&Params::new().with("label", "ACC2"))
        .unwrap();
    assert_eq!(rows, expected.into_items());

    // Aggregate through ExecuteValue.
    let (agg, _) = client.prepare("count <<UAcc, label>>").unwrap();
    assert_eq!(
        client.execute_value(agg, &Params::new()).unwrap(),
        Value::Int(5)
    );

    // One-shot query.
    assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 3);

    // Insert through the wire, visible to a following query.
    assert_eq!(
        client
            .insert("alpha", "t", vec![vec![90.into(), "ACC90".into()]])
            .unwrap(),
        1
    );
    assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 4);

    // Stats carries both server and dataspace counters.
    let stats = client.stats().unwrap();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert!(get("server_requests_prepare") >= 2);
    assert!(get("server_requests_insert") >= 1);
    assert!(get("server_bytes_in") > 0);
    assert!(get("server_bytes_out") > 0);
    assert!(get("ds_plan_cache_hits") + get("ds_plan_cache_misses") > 0);

    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn streaming_uses_bounded_client_acked_chunks() {
    let (handle, addr, ds) = serve_default();
    let mut client = Client::connect(addr).unwrap();

    // 3 alpha + 2 beta = 5 UAcc rows; chunk_rows = 2 → 3 chunks.
    let (rows, chunks) = client
        .query_chunked("[{s, k} | {s, k, x} <- <<UAcc, label>>]", 2)
        .unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(chunks, 3);

    let expected = ds
        .read()
        .unwrap()
        .query("[{s, k} | {s, k, x} <- <<UAcc, label>>]")
        .unwrap();
    assert_eq!(rows, expected.into_items());

    // While no stream is open, NextChunk on a stale id is a typed error and
    // the session survives it.
    let err = client.call(&Request::NextChunk { stream_id: 424242 });
    assert!(matches!(
        err,
        Err(ClientError::Server {
            code: ErrorCode::BadStream,
            ..
        })
    ));
    assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 3);

    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn unknown_opcode_and_malformed_body_answer_typed_errors_and_keep_the_session() {
    let (handle, addr, _ds) = serve_default();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Unknown opcode: framing intact, so the server answers and carries on.
    stream.write_all(&encode_frame(1, 0x7f, &[])).unwrap();
    let (id, response) = read_response(&mut stream).expect("a response");
    assert_eq!(id, 1);
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::UnknownOpcode,
            ..
        }
    ));

    // Well-framed body that doesn't decode as a Prepare.
    stream
        .write_all(&encode_frame(2, ReqOp::Prepare as u8, &[0xff, 0x01]))
        .unwrap();
    let (id, response) = read_response(&mut stream).expect("a response");
    assert_eq!(id, 2);
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::MalformedBody,
            ..
        }
    ));

    // The session is still alive: a valid request round-trips.
    let body = Request::Stats.encode_body();
    stream
        .write_all(&encode_frame(3, ReqOp::Stats as u8, &body))
        .unwrap();
    let (id, response) = read_response(&mut stream).expect("a response");
    assert_eq!(id, 3);
    assert!(matches!(response, Response::StatsResult { .. }));

    handle.shutdown();
}

#[test]
fn oversized_corrupt_and_misversioned_frames_close_with_typed_errors() {
    let (handle, addr, _ds) = serve_default();

    // Oversized declared length → FrameTooLarge, then close.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    oversized.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&oversized).unwrap();
    let (_, response) = read_response(&mut stream).expect("a response");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::FrameTooLarge,
            ..
        }
    ));
    assert_closed(&mut stream);

    // Corrupt checksum → MalformedBody, then close.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut corrupt = encode_frame(1, ReqOp::Stats as u8, &[]);
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xff;
    // Stats has an empty body: flipping the last byte corrupts the opcode
    // under an unchanged checksum declaration.
    stream.write_all(&corrupt).unwrap();
    let (_, response) = read_response(&mut stream).expect("a response");
    assert!(matches!(response, Response::Error { .. }));
    assert_closed(&mut stream);

    // Wrong version byte (checksum re-stamped) → VersionMismatch, then close.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut frame = encode_frame(1, ReqOp::Stats as u8, &[]);
    frame[8] = 42;
    let payload_len = frame.len() - 8;
    let checksum = wire::frame::fnv1a(&frame[8..8 + payload_len]);
    frame[4..8].copy_from_slice(&checksum.to_le_bytes());
    stream.write_all(&frame).unwrap();
    let (_, response) = read_response(&mut stream).expect("a response");
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::VersionMismatch,
            ..
        }
    ));
    assert_closed(&mut stream);

    handle.shutdown();
}

#[test]
fn abrupt_disconnect_mid_stream_leaks_nothing() {
    let (handle, addr, ds) = serve_default();

    {
        let mut client = Client::connect(addr).unwrap();
        let (h, _) = client.prepare(INCREMENTAL_SHAPE).unwrap();
        let (_sub_id, initial) = client.subscribe(h, &Params::new()).unwrap();
        assert!(matches!(initial, Value::Bag(_)));
        eventually("subscription registered", || {
            ds.read().unwrap().stats().subscriptions == 1
        });

        // Open a stream and walk away with chunks still pending.
        let opening = client
            .send(&Request::Query {
                text: "[{s, k} | {s, k, x} <- <<UAcc, label>>]".into(),
                chunk_rows: 1,
            })
            .unwrap();
        let first = client.wait_response(opening).unwrap();
        assert!(matches!(first, Response::Chunk { done: false, .. }));
        // Drop the client without Close: the TCP stream just dies.
    }

    // The server notices the dead socket on its next poll and tears the
    // session down, dropping its subscription and stream state.
    eventually("subscription unregistered", || {
        ds.read().unwrap().stats().subscriptions == 0
    });
    eventually("connection reaped", || {
        handle.stats().connections_open() == 0
    });
    // Stream teardown released its MVCC snapshot pins too.
    eventually("snapshot pins released", || {
        ds.read().unwrap().stats().snapshots_active == 0
    });
    assert_eq!(handle.stats().session_panics(), 0);

    // And the server still serves new clients.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 3);
    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn admission_control_rejects_connections_over_the_cap() {
    let (handle, addr, _ds) = serve_with(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });

    let mut first = Client::connect(addr).unwrap();
    assert_eq!(first.query(INCREMENTAL_SHAPE).unwrap().len(), 3);

    // The second connection is turned away with a pre-session ServerBusy.
    let mut second = Client::connect(addr).unwrap();
    second.set_response_timeout(Duration::from_secs(2));
    let err = second.stats().expect_err("over the connection cap");
    assert_eq!(err.server_code(), Some(ErrorCode::ServerBusy));
    assert!(handle.stats().connections_rejected() >= 1);

    // Closing the first frees the slot.
    first.close().unwrap();
    eventually("slot freed", || handle.stats().connections_open() == 0);
    let mut third = Client::connect(addr).unwrap();
    assert_eq!(third.query(INCREMENTAL_SHAPE).unwrap().len(), 3);
    third.close().unwrap();
    handle.shutdown();
}

#[test]
fn session_handle_cap_answers_server_busy() {
    let (handle, addr, _ds) = serve_with(ServerConfig {
        max_session_handles: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let (h, _) = client.prepare(INCREMENTAL_SHAPE).unwrap();
    let (_sub, _) = client.subscribe(h, &Params::new()).unwrap();
    let err = client
        .subscribe(h, &Params::new())
        .expect_err("handle cap enforced");
    assert_eq!(err.server_code(), Some(ErrorCode::ServerBusy));
    assert!(handle.stats().busy_rejections() >= 1);
    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn query_errors_map_to_typed_codes() {
    let (handle, addr, _ds) = serve_default();
    let mut client = Client::connect(addr).unwrap();

    let parse = client.prepare("[ oh no").expect_err("parse error");
    assert_eq!(parse.server_code(), Some(ErrorCode::Parse));

    let (h, _) = client
        .prepare("[x | {k, x} <- <<ALPHA_t, ALPHA_label>>; x = ?label]")
        .unwrap();
    let unbound = client.execute(h, &Params::new()).expect_err("unbound");
    assert_eq!(unbound.server_code(), Some(ErrorCode::UnboundParam));
    let unknown = client
        .execute(h, &Params::new().with("label", "A").with("typo", 1i64))
        .expect_err("unknown param");
    assert_eq!(unknown.server_code(), Some(ErrorCode::UnknownParam));

    let bad_handle = client.execute(999, &Params::new()).expect_err("bad handle");
    assert_eq!(bad_handle.server_code(), Some(ErrorCode::BadHandle));

    let bad_sub = client.unsubscribe(999).expect_err("bad subscription");
    assert_eq!(bad_sub.server_code(), Some(ErrorCode::BadSubscription));

    // Checkpoint without an attached commit log is a typed error (the
    // workflow-order failure maps to the generic query-error code).
    let no_wal = client.checkpoint().expect_err("no log attached");
    assert_eq!(no_wal.server_code(), Some(ErrorCode::Query));

    // A bad insert (arity mismatch) is rejected without killing the session.
    let rejected = client
        .insert("alpha", "t", vec![vec![1.into()]])
        .expect_err("arity mismatch");
    assert_eq!(rejected.server_code(), Some(ErrorCode::Rejected));

    assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 3);
    client.close().unwrap();
    assert_eq!(handle.stats().session_panics(), 0);
    handle.shutdown();
}

proptest! {
    /// Fuzz: arbitrary byte blobs thrown at the socket never panic a session
    /// thread and never leak a subscription — the server either answers with
    /// typed errors or closes the connection.
    #[test]
    fn random_garbage_never_panics_the_server(blob in proptest::collection::vec(any::<u8>(), 0..256)) {
        use std::sync::OnceLock;
        use std::sync::{Arc, RwLock};
        use dataspace_core::dataspace::Dataspace;
        use server::ServerHandle;
        // One server shared across all proptest cases (cases run sequentially
        // within the test).
        #[allow(clippy::type_complexity)]
        static SHARED: OnceLock<(ServerHandle, std::net::SocketAddr, Arc<RwLock<Dataspace>>)> =
            OnceLock::new();
        let (handle, addr, ds) = SHARED.get_or_init(serve_default);

        let mut stream = TcpStream::connect(*addr).unwrap();
        stream.write_all(&blob).unwrap();
        // Half the cases end with a clean shutdown of our half, half abort.
        if blob.len() % 2 == 0 {
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
        drop(stream);

        eventually("garbage session reaped", || handle.stats().connections_open() == 0);
        prop_assert_eq!(handle.stats().session_panics(), 0);
        prop_assert_eq!(ds.read().unwrap().stats().subscriptions, 0);

        // The server still answers a well-behaved client.
        let mut client = Client::connect(*addr).unwrap();
        prop_assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 3);
        client.close().unwrap();
    }
}

#[test]
fn shutdown_is_graceful_with_live_sessions() {
    let (handle, addr, _ds) = serve_default();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query(INCREMENTAL_SHAPE).unwrap().len(), 3);

    // Shutdown joins the acceptor and every session thread; live sessions are
    // told with a ShuttingDown frame before their sockets close.
    handle.shutdown();

    client.set_response_timeout(Duration::from_secs(2));
    let err = client.stats().expect_err("server is gone");
    match err {
        ClientError::Server {
            code: ErrorCode::ShuttingDown,
            ..
        }
        | ClientError::Frame(_) => {}
        other => panic!("expected ShuttingDown or a transport error, got {other}"),
    }
}
