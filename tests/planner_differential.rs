//! Differential testing of the comprehension planner: for randomly generated
//! extents and randomly shaped comprehensions, **planned** (bushy enumeration
//! on), **nested-loop**, **statistics-reordered**, **bushy-disabled** (greedy
//! chain reorder only), **sequentially fetched**, **plan-cached**,
//! **secondary-indexed** (point filters served by an attached `IndexStore`),
//! **index-disabled**, **columnar** (the vectorised default) and
//! **columnar-disabled** (row-at-a-time) evaluation
//! must all agree — bag equality including multiplicities *and order*, since
//! every planned strategy is required to preserve the nested-loop output order.
//! An engine-consistency check rides along: the engine
//! [`Evaluator::execution_engine`] predicts must be the engine the execution
//! records in [`StepProbe`], in both directions and under both engine
//! configurations, and a `?param`-filtered variant of every query must agree
//! across engines too (parameters bind at execution time on both paths).
//!
//! Query shapes cover every join-graph topology the planner distinguishes:
//! **lines** (each generator joins its predecessor), **stars** (every
//! satellite joins the leading generator), **cliques** (every generator joins
//! all of its predecessors, producing composite keys), and free mixtures — up
//! to six generators, the bushy enumerator's full DP range, over extents with
//! hub-style cardinality skew (the `s0` extent is several times larger, with a
//! narrower key domain, than the satellites). An explain-consistency check
//! rides along: the strategies [`Evaluator::explain`] reports for each case
//! must match the step kinds the execution actually runs, counted through
//! [`StepProbe`].
//!
//! A second suite runs the same differential over virtual (integrated)
//! extents, exercising the parallel per-source contribution fetch and the
//! automed explain/bushy pass-throughs.
//!
//! The vendored proptest shim derives its RNG seed from the test name, so every
//! run (including the CI smoke steps) replays the same fixed case sequence;
//! `PROPTEST_CASES` scales the case count and `PROPTEST_SEED` perturbs the
//! sequence (CI runs a small fixed-seed matrix).

use automed::qp::evaluator::{ViewDefinitions, VirtualExtents};
use automed::qp::Contribution;
use automed::wrapper::SourceRegistry;
use iql::env::Env;
use iql::value::{Bag, Value};
use iql::{
    parse, Evaluator, ExecEngine, IndexStore, JoinStrategy, MapExtents, Params, PlanCache,
    StepKind, StepProbe,
};
use proptest::prelude::*;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use std::sync::Arc;

// ---------- random extents ----------

/// A random satellite extent: `{key, value}` pairs with small domains so joins
/// hit often and duplicates occur (multiplicity coverage).
fn extent_rows() -> impl Strategy<Value = Vec<(i64, usize)>> {
    prop::collection::vec((0i64..8, 0usize..5), 0..8)
}

/// The hub extent: several times more rows than a satellite, drawn from a
/// *narrower* key domain — heavy buckets exercise the skew statistics
/// (`max_bucket`) and give the cost model something to reorder around.
fn hub_rows() -> impl Strategy<Value = Vec<(i64, usize)>> {
    prop::collection::vec((0i64..4, 0usize..5), 0..20)
}

fn map_extents(rows: &[Vec<(i64, usize)>]) -> MapExtents {
    let mut m = MapExtents::new();
    for (i, rows) in rows.iter().enumerate() {
        m.insert(
            format!("s{i}"),
            Bag::from_values(
                rows.iter()
                    .map(|(k, v)| Value::pair(Value::Int(*k), Value::str(format!("w{v}"))))
                    .collect(),
            ),
        );
    }
    m
}

// ---------- random comprehension shapes ----------

/// One generator of a random comprehension: which scheme it ranges over
/// (modulo its position's allowance), which earlier generator it equi-joins to
/// in free mode (modulo its position), an optional literal filter on its
/// value variable (which also splits the reorderable chain), and an optional
/// *point* filter — `k<i> = lit` or `v<i> = 'w<w>'` — the shape the secondary
/// index store serves as an `IndexLookup` when one is attached.
type GenSpec = (usize, usize, Option<usize>, Option<(bool, usize)>);

/// A query shape: the join-graph topology mode (line/star/clique/free), 1–6
/// generators, and optional correlated tail and let-binding.
type QueryShape = (usize, Vec<GenSpec>, bool, bool);

fn query_shape() -> impl Strategy<Value = QueryShape> {
    (
        0usize..4,
        prop::collection::vec(
            (
                0usize..6,
                0usize..6,
                prop_oneof![Just(None), (0usize..5).prop_map(Some)],
                prop_oneof![Just(None), (any::<bool>(), 0usize..5).prop_map(Some)],
            ),
            1..7,
        ),
        any::<bool>(),
        any::<bool>(),
    )
}

/// Render a query shape as IQL text. Generator `i` binds `{k<i>, v<i>}`; joined
/// generators emit their `k<i> = k<j>` equi-filters immediately after the
/// generator (the planner's fusable shape); literal filters and the correlated
/// tail fall outside the fusable shape and exercise the fallback paths.
///
/// Only the leading generator may range over the large hub extent `s0`, so the
/// nested-loop oracle stays polynomially bounded; later generators draw from
/// the satellites (repeats allowed — self-joins stay covered).
fn render_query((mode, gens, correlated_tail, with_let): &QueryShape) -> String {
    let mut quals: Vec<String> = Vec::new();
    for (i, (scheme_sel, join_to, lit, point)) in gens.iter().enumerate() {
        let scheme = if i == 0 {
            scheme_sel % 6
        } else {
            1 + (scheme_sel % 5)
        };
        quals.push(format!("{{k{i}, v{i}}} <- <<s{scheme}>>"));
        if i > 0 {
            match mode % 4 {
                0 => quals.push(format!("k{i} = k{}", i - 1)), // line
                1 => quals.push(format!("k{i} = k0")),         // star
                2 => {
                    // clique: join every earlier generator (composite keys)
                    for j in 0..i {
                        quals.push(format!("k{i} = k{j}"));
                    }
                }
                _ => quals.push(format!("k{i} = k{}", join_to % i)), // free
            }
        }
        // A point filter directly after the leading generator is the
        // index-servable shape; after a joined generator it lands behind the
        // equi-filters and stays a residual filter.
        if let Some((on_key, w)) = point {
            if *on_key {
                quals.push(format!("k{i} = {w}"));
            } else {
                quals.push(format!("v{i} = 'w{w}'"));
            }
        }
        if let Some(w) = lit {
            quals.push(format!("v{i} <> 'w{w}'"));
        }
    }
    if *with_let {
        quals.push("let m = k0 * 2".to_string());
        quals.push("m >= 0".to_string());
    }
    if *correlated_tail {
        quals.push("n <- [k0, k0]".to_string());
        quals.push("n < 8".to_string());
    }
    let head: Vec<String> = (0..gens.len())
        .map(|i| format!("v{i}"))
        .chain(std::iter::once("k0".to_string()))
        .collect();
    format!("[{{{}}} | {}]", head.join(", "), quals.join("; "))
}

fn items(v: &Value) -> Vec<Value> {
    v.expect_bag().expect("bag result").items().to_vec()
}

proptest! {
    /// planned ≡ nested-loop ≡ reorder-disabled ≡ bushy-disabled ≡
    /// sequential-fetch ≡ plan-cached, element for element, for every generated
    /// query over every generated extent; and the strategies `explain` reports
    /// are the step kinds the execution runs.
    #[test]
    fn planner_differential_over_random_extents(
        e0 in hub_rows(),
        e1 in extent_rows(),
        e2 in extent_rows(),
        e3 in extent_rows(),
        e4 in extent_rows(),
        e5 in extent_rows(),
        shape in query_shape(),
    ) {
        let extents = map_extents(&[e0, e1, e2, e3, e4, e5]);
        let text = render_query(&shape);
        let query = parse(&text).unwrap_or_else(|e| panic!("{text} does not parse: {e}"));

        let naive = Evaluator::new(&extents)
            .with_nested_loops()
            .eval_closed(&query)
            .expect("naive evaluation");
        let planned = Evaluator::new(&extents)
            .eval_closed(&query)
            .expect("planned evaluation");
        let no_reorder = Evaluator::new(&extents)
            .without_reorder()
            .eval_closed(&query)
            .expect("reorder-disabled evaluation");
        let no_bushy = Evaluator::new(&extents)
            .without_bushy()
            .eval_closed(&query)
            .expect("bushy-disabled evaluation");
        let sequential = Evaluator::new(&extents)
            .without_parallel_fetch()
            .eval_closed(&query)
            .expect("sequential evaluation");

        prop_assert_eq!(items(&planned), items(&naive), "planned vs naive: {}", &text);
        prop_assert_eq!(items(&no_reorder), items(&naive), "no-reorder vs naive: {}", &text);
        prop_assert_eq!(items(&no_bushy), items(&naive), "no-bushy vs naive: {}", &text);
        prop_assert_eq!(items(&sequential), items(&naive), "sequential vs naive: {}", &text);

        // Secondary-index leg: with a shared index store attached, point filters
        // execute as O(1) index probes; answers (order included) must be
        // indistinguishable from the index-disabled evaluator and the oracle.
        // Evaluating twice drives both the build path and the probe-hit path.
        let store = Arc::new(IndexStore::new());
        let indexed_ev = Evaluator::new(&extents).with_index_store(Arc::clone(&store));
        let indexed = indexed_ev.eval_closed(&query).expect("indexed evaluation");
        let indexed_again = indexed_ev.eval_closed(&query).expect("re-indexed evaluation");
        let no_index = Evaluator::new(&extents)
            .with_index_store(Arc::new(IndexStore::new()))
            .without_index()
            .eval_closed(&query)
            .expect("index-disabled evaluation");
        prop_assert_eq!(items(&indexed), items(&naive), "indexed vs naive: {}", &text);
        prop_assert_eq!(
            items(&indexed_again),
            items(&naive),
            "indexed re-run vs naive: {}",
            &text
        );
        prop_assert_eq!(
            items(&no_index),
            items(&naive),
            "index-disabled vs naive: {}",
            &text
        );

        // Columnar ≡ row: the vectorised engine (the default — `planned` above
        // already ran on it where eligible) against the engine forced off.
        // Probes assert which engine actually produced each result, and
        // `execution_engine`'s prediction must match it in both directions.
        let col_probe = Arc::new(StepProbe::new());
        let col_ev = Evaluator::new(&extents).with_step_probe(Arc::clone(&col_probe));
        let predicted = col_ev
            .execution_engine(&query, &Env::new())
            .expect("engine prediction");
        let columnar = col_ev.eval_closed(&query).expect("columnar-side evaluation");
        prop_assert_eq!(items(&columnar), items(&naive), "columnar vs naive: {}", &text);
        prop_assert_eq!(
            col_probe.engine_count(predicted) >= 1,
            true,
            "predicted engine {:?} did not execute for {}",
            predicted,
            &text
        );
        let other = match predicted {
            ExecEngine::Columnar => ExecEngine::Row,
            ExecEngine::Row => ExecEngine::Columnar,
        };
        prop_assert_eq!(
            col_probe.engine_count(other),
            0,
            "unpredicted engine {:?} executed for {}",
            other,
            &text
        );

        let row_probe = Arc::new(StepProbe::new());
        let row_ev = Evaluator::new(&extents)
            .with_columnar(false)
            .with_step_probe(Arc::clone(&row_probe));
        prop_assert_eq!(
            row_ev.execution_engine(&query, &Env::new()).expect("row prediction"),
            ExecEngine::Row,
            "columnar-disabled evaluators must predict the row engine: {}",
            &text
        );
        let row_only = row_ev.eval_closed(&query).expect("columnar-disabled evaluation");
        prop_assert_eq!(items(&row_only), items(&naive), "row-engine vs naive: {}", &text);
        prop_assert_eq!(
            row_probe.engine_count(ExecEngine::Columnar),
            0,
            "columnar-disabled evaluation ran the columnar engine: {}",
            &text
        );
        prop_assert!(
            row_probe.engine_count(ExecEngine::Row) >= 1,
            "columnar-disabled evaluation recorded no row execution: {}",
            &text
        );

        // ?param leg: the same shape with a parameterised point filter on the
        // hub key must agree across engines under the same binding (parameters
        // reach filter kernels — and, with the store attached, IndexLookup key
        // evaluation — on the columnar path).
        let ptext = format!("{}; k0 = ?hub]", &text[..text.len() - 1]);
        let pquery = parse(&ptext).unwrap_or_else(|e| panic!("{ptext} does not parse: {e}"));
        let penv = Env::new().with_params(Params::new().with("hub", Value::Int(2)));
        let prow = Evaluator::new(&extents)
            .with_columnar(false)
            .eval(&pquery, &penv)
            .expect("param row evaluation");
        let pcol = Evaluator::new(&extents)
            .with_index_store(Arc::clone(&store))
            .eval(&pquery, &penv)
            .expect("param columnar evaluation");
        prop_assert_eq!(
            items(&pcol),
            items(&prow),
            "param columnar vs param row: {}",
            &ptext
        );

        // Plan-cached re-run: second evaluation must reuse the plan and agree.
        let cache = Arc::new(PlanCache::new());
        let cached_ev = Evaluator::new(&extents).with_plan_cache(Arc::clone(&cache));
        let first = cached_ev.eval_closed(&query).expect("first cached evaluation");
        let second = cached_ev.eval_closed(&query).expect("second cached evaluation");
        prop_assert_eq!(items(&first), items(&naive), "cached(1) vs naive: {}", &text);
        prop_assert_eq!(items(&second), items(&naive), "cached(2) vs naive: {}", &text);
        prop_assert!(
            cache.hit_count() >= 1,
            "closed-source plans must be served from the cache on re-run: {}",
            &text
        );

        // Explain consistency: these queries hold exactly one comprehension, so
        // the top-level plan is the only plan the probe can see — each join
        // strategy `explain` reports must appear as an executed step kind, and
        // no join step may execute without its strategy being reported. Both
        // evaluators share the index store above so point filters plan (and
        // execute) as IndexLookup steps.
        let stats = Evaluator::new(&extents)
            .with_index_store(Arc::clone(&store))
            .explain(&query, &Env::new())
            .expect("explain");
        let probe = Arc::new(StepProbe::new());
        let probed = Evaluator::new(&extents)
            .with_index_store(Arc::clone(&store))
            .with_step_probe(Arc::clone(&probe))
            .eval_closed(&query)
            .expect("probed evaluation");
        prop_assert_eq!(items(&probed), items(&naive), "probed vs naive: {}", &text);
        let pairs: [(&str, bool, StepKind); 5] = [
            (
                "index",
                stats.iter().any(|s| s.strategy == JoinStrategy::IndexLookup),
                StepKind::IndexLookup,
            ),
            (
                "bushy",
                stats.iter().any(|s| matches!(s.strategy, JoinStrategy::Bushy { .. })),
                StepKind::BushyJoin,
            ),
            (
                "multiway",
                stats.iter().any(|s| s.strategy == JoinStrategy::Multiway),
                StepKind::MultiJoin,
            ),
            (
                "reordered",
                stats.iter().any(|s| s.strategy == JoinStrategy::Reordered),
                StepKind::OrderedJoin,
            ),
            (
                "hash",
                stats.iter().any(|s| s.strategy == JoinStrategy::Hash),
                StepKind::HashJoin,
            ),
        ];
        for (name, explained, kind) in pairs {
            prop_assert_eq!(
                explained,
                probe.count(kind) > 0,
                "explain ({}) disagrees with executed steps for {} — stats: {:?}",
                name,
                &text,
                &stats
            );
        }
    }
}

// ---------- differential over virtual (integrated) extents ----------

fn source(name: &str, rows: &[(i64, usize)]) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("grp", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    let mut db = Database::new(schema);
    for (i, (k, v)) in rows.iter().enumerate() {
        db.insert(
            "t",
            vec![(i as i64).into(), (*k).into(), format!("w{v}").into()],
        )
        .unwrap();
    }
    db
}

/// The integrated-view shape of the paper: one `UAcc` object with one tagged
/// contribution per source, plus a derived object joining the two tags.
fn definitions() -> ViewDefinitions {
    let mut defs = ViewDefinitions::new();
    let uacc = iql::SchemeRef::table("UAcc");
    defs.add_contribution(
        &uacc,
        Contribution::from_source(
            "alpha",
            parse("[{'ALPHA', k, x} | {k, x} <- <<t, label>>]").unwrap(),
        ),
    );
    defs.add_contribution(
        &uacc,
        Contribution::from_source(
            "beta",
            parse("[{'BETA', k, x} | {k, x} <- <<t, label>>]").unwrap(),
        ),
    );
    defs.add_contribution(
        &iql::SchemeRef::table("Shared"),
        Contribution::derived(
            parse(
                "[{k1, k2, x} | {s1, k1, x} <- <<UAcc>>; s1 = 'ALPHA'; {s2, k2, y} <- <<UAcc>>; x = y; s2 = 'BETA']",
            )
            .unwrap(),
        ),
    );
    defs
}

proptest! {
    /// Parallel per-source contribution fetch ≡ sequential fetch ≡ bushy-disabled
    /// ≡ nested loops over randomly populated wrapped sources; the star-join
    /// query drives the bushy enumerator through the automed pass-through.
    #[test]
    fn virtual_extent_differential(
        alpha_rows in extent_rows(),
        beta_rows in extent_rows(),
    ) {
        let mut registry = SourceRegistry::new();
        registry.add_source(source("alpha", &alpha_rows)).unwrap();
        registry.add_source(source("beta", &beta_rows)).unwrap();
        let defs = definitions();

        let queries = [
            "count <<UAcc>>",
            "[x | {s, k, x} <- <<UAcc>>; s = 'BETA']",
            "[{k1, x} | {k1, k2, x} <- <<Shared>>]",
            "[{a, b} | {s1, k1, a} <- <<UAcc>>; {s2, k2, b} <- <<UAcc>>; k2 = k1]",
            // A 3-chain over the virtual extent: drives the bushy enumerator
            // (and its explain pass-through) through the automed layer.
            "[{a, b, c} | {s1, k1, a} <- <<UAcc>>; {s2, k2, b} <- <<UAcc>>; k2 = k1; {s3, k3, c} <- <<UAcc>>; k3 = k1]",
        ];
        for text in queries {
            let query = parse(text).unwrap();
            let parallel = VirtualExtents::new(&registry, &defs)
                .answer(&query)
                .expect("parallel answer");
            let sequential = VirtualExtents::new(&registry, &defs)
                .sequential()
                .answer(&query)
                .expect("sequential answer");
            let no_bushy = VirtualExtents::new(&registry, &defs)
                .without_bushy()
                .answer(&query)
                .expect("bushy-disabled answer");
            let naive = VirtualExtents::new(&registry, &defs)
                .sequential()
                .answer_with_nested_loops(&query)
                .expect("naive answer");
            // Columnar-disabled leg through the automed pass-through, with
            // engine counters attached: the row engine must agree and the
            // columnar engine must never have run.
            let row_stats = Arc::new(iql::EngineStats::new());
            let row_engine = VirtualExtents::new(&registry, &defs)
                .without_columnar()
                .with_engine_stats(Arc::clone(&row_stats))
                .answer(&query)
                .expect("columnar-disabled answer");
            prop_assert_eq!(
                row_stats.columnar_execs(),
                0,
                "columnar-disabled provider ran the columnar engine: {}",
                text
            );
            prop_assert_eq!(
                row_stats.row_fallbacks(),
                0,
                "columnar-disabled runs are configuration, not fallbacks: {}",
                text
            );
            match (&parallel, &naive) {
                (Value::Bag(p), Value::Bag(n)) => {
                    prop_assert_eq!(p.items(), n.items(), "parallel vs naive order: {}", text);
                }
                _ => prop_assert_eq!(&parallel, &naive, "parallel vs naive: {}", text),
            }
            prop_assert_eq!(&parallel, &sequential, "parallel vs sequential: {}", text);
            prop_assert_eq!(&parallel, &no_bushy, "parallel vs bushy-disabled: {}", text);
            prop_assert_eq!(&parallel, &row_engine, "parallel vs columnar-disabled: {}", text);

            // The explain pass-through plans without executing and never
            // reports a strategy the evaluator below it cannot run.
            let stats = VirtualExtents::new(&registry, &defs)
                .explain(&query)
                .expect("explain");
            for s in &stats {
                prop_assert!(
                    matches!(
                        s.strategy,
                        JoinStrategy::Hash
                            | JoinStrategy::Reordered
                            | JoinStrategy::Multiway
                            | JoinStrategy::Bushy { .. }
                            | JoinStrategy::IndexLookup
                    ),
                    "unexpected strategy for {}: {:?}",
                    text,
                    s
                );
            }
        }
    }
}
