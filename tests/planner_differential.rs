//! Differential testing of the comprehension planner: for randomly generated
//! extents and randomly shaped comprehensions, **planned**, **nested-loop**,
//! **statistics-reordered**, **sequentially fetched** and **plan-cached**
//! evaluation must all agree — bag equality including multiplicities *and order*,
//! since every planned strategy is required to preserve the nested-loop output
//! order. A second suite runs the same differential over virtual (integrated)
//! extents, exercising the parallel per-source contribution fetch.
//!
//! The vendored proptest shim derives its RNG seed from the test name, so every
//! run (including the CI smoke step) replays the same fixed case sequence;
//! `PROPTEST_CASES` scales the case count.

use automed::qp::evaluator::{ViewDefinitions, VirtualExtents};
use automed::qp::Contribution;
use automed::wrapper::SourceRegistry;
use iql::value::{Bag, Value};
use iql::{parse, Evaluator, MapExtents, PlanCache};
use proptest::prelude::*;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use std::sync::Arc;

// ---------- random extents ----------

/// A random extent: `{key, value}` pairs with small domains so joins hit often
/// and duplicates occur (multiplicity coverage).
fn extent_rows() -> impl Strategy<Value = Vec<(i64, usize)>> {
    prop::collection::vec((0i64..8, 0usize..5), 0..22)
}

fn map_extents(rows: &[Vec<(i64, usize)>]) -> MapExtents {
    let mut m = MapExtents::new();
    for (i, rows) in rows.iter().enumerate() {
        m.insert(
            format!("s{i}"),
            Bag::from_values(
                rows.iter()
                    .map(|(k, v)| Value::pair(Value::Int(*k), Value::str(format!("w{v}"))))
                    .collect(),
            ),
        );
    }
    m
}

// ---------- random comprehension shapes ----------

/// One generator of a random comprehension: which scheme it ranges over, which
/// earlier generator it equi-joins to (modulo its position), and an optional
/// literal filter on its value variable.
type GenSpec = (usize, usize, Option<usize>);

/// A query shape: 1–4 generators plus optional correlated tail and let-binding.
/// Chains of 3+ generators (joined to *any* earlier generator, so stars as well
/// as lines) drive the whole-chain join-graph reorder; shorter ones the pair
/// reorder.
type QueryShape = (Vec<GenSpec>, bool, bool);

fn query_shape() -> impl Strategy<Value = QueryShape> {
    (
        prop::collection::vec(
            (
                0usize..3,
                0usize..4,
                prop_oneof![Just(None), (0usize..5).prop_map(Some)],
            ),
            1..5,
        ),
        any::<bool>(),
        any::<bool>(),
    )
}

/// Render a query shape as IQL text. Generator `i` binds `{k<i>, v<i>}`; joined
/// generators emit the `k<i> = k<j>` equi-filter immediately after the generator
/// (the planner's fusable shape); literal filters and the correlated tail fall
/// outside the fusable shape and exercise the fallback paths.
fn render_query((gens, correlated_tail, with_let): &QueryShape) -> String {
    let mut quals: Vec<String> = Vec::new();
    for (i, (scheme, join_to, lit)) in gens.iter().enumerate() {
        quals.push(format!("{{k{i}, v{i}}} <- <<s{scheme}>>"));
        if i > 0 {
            let j = join_to % i;
            quals.push(format!("k{i} = k{j}"));
        }
        if let Some(w) = lit {
            quals.push(format!("v{i} <> 'w{w}'"));
        }
    }
    if *with_let {
        quals.push("let m = k0 * 2".to_string());
        quals.push("m >= 0".to_string());
    }
    if *correlated_tail {
        quals.push("n <- [k0, k0]".to_string());
        quals.push("n < 8".to_string());
    }
    let head: Vec<String> = (0..gens.len())
        .map(|i| format!("v{i}"))
        .chain(std::iter::once("k0".to_string()))
        .collect();
    format!("[{{{}}} | {}]", head.join(", "), quals.join("; "))
}

fn items(v: &Value) -> Vec<Value> {
    v.expect_bag().expect("bag result").items().to_vec()
}

proptest! {
    /// planned ≡ nested-loop ≡ reorder-disabled ≡ sequential-fetch ≡ plan-cached,
    /// element for element, for every generated query over every generated extent.
    #[test]
    fn planner_differential_over_random_extents(
        e0 in extent_rows(),
        e1 in extent_rows(),
        e2 in extent_rows(),
        shape in query_shape(),
    ) {
        let extents = map_extents(&[e0, e1, e2]);
        let text = render_query(&shape);
        let query = parse(&text).unwrap_or_else(|e| panic!("{text} does not parse: {e}"));

        let naive = Evaluator::new(&extents)
            .with_nested_loops()
            .eval_closed(&query)
            .expect("naive evaluation");
        let planned = Evaluator::new(&extents)
            .eval_closed(&query)
            .expect("planned evaluation");
        let no_reorder = Evaluator::new(&extents)
            .without_reorder()
            .eval_closed(&query)
            .expect("reorder-disabled evaluation");
        let sequential = Evaluator::new(&extents)
            .without_parallel_fetch()
            .eval_closed(&query)
            .expect("sequential evaluation");

        prop_assert_eq!(items(&planned), items(&naive), "planned vs naive: {}", &text);
        prop_assert_eq!(items(&no_reorder), items(&naive), "no-reorder vs naive: {}", &text);
        prop_assert_eq!(items(&sequential), items(&naive), "sequential vs naive: {}", &text);

        // Plan-cached re-run: second evaluation must reuse the plan and agree.
        let cache = Arc::new(PlanCache::new());
        let cached_ev = Evaluator::new(&extents).with_plan_cache(Arc::clone(&cache));
        let first = cached_ev.eval_closed(&query).expect("first cached evaluation");
        let second = cached_ev.eval_closed(&query).expect("second cached evaluation");
        prop_assert_eq!(items(&first), items(&naive), "cached(1) vs naive: {}", &text);
        prop_assert_eq!(items(&second), items(&naive), "cached(2) vs naive: {}", &text);
        prop_assert!(
            cache.hit_count() >= 1,
            "closed-source plans must be served from the cache on re-run: {}",
            &text
        );
    }
}

// ---------- differential over virtual (integrated) extents ----------

fn source(name: &str, rows: &[(i64, usize)]) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("grp", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    let mut db = Database::new(schema);
    for (i, (k, v)) in rows.iter().enumerate() {
        db.insert(
            "t",
            vec![(i as i64).into(), (*k).into(), format!("w{v}").into()],
        )
        .unwrap();
    }
    db
}

/// The integrated-view shape of the paper: one `UAcc` object with one tagged
/// contribution per source, plus a derived object joining the two tags.
fn definitions() -> ViewDefinitions {
    let mut defs = ViewDefinitions::new();
    let uacc = iql::SchemeRef::table("UAcc");
    defs.add_contribution(
        &uacc,
        Contribution::from_source(
            "alpha",
            parse("[{'ALPHA', k, x} | {k, x} <- <<t, label>>]").unwrap(),
        ),
    );
    defs.add_contribution(
        &uacc,
        Contribution::from_source(
            "beta",
            parse("[{'BETA', k, x} | {k, x} <- <<t, label>>]").unwrap(),
        ),
    );
    defs.add_contribution(
        &iql::SchemeRef::table("Shared"),
        Contribution::derived(
            parse(
                "[{k1, k2, x} | {s1, k1, x} <- <<UAcc>>; s1 = 'ALPHA'; {s2, k2, y} <- <<UAcc>>; x = y; s2 = 'BETA']",
            )
            .unwrap(),
        ),
    );
    defs
}

proptest! {
    /// Parallel per-source contribution fetch ≡ sequential fetch ≡ nested loops
    /// over randomly populated wrapped sources.
    #[test]
    fn virtual_extent_differential(
        alpha_rows in extent_rows(),
        beta_rows in extent_rows(),
    ) {
        let mut registry = SourceRegistry::new();
        registry.add_source(source("alpha", &alpha_rows)).unwrap();
        registry.add_source(source("beta", &beta_rows)).unwrap();
        let defs = definitions();

        let queries = [
            "count <<UAcc>>",
            "[x | {s, k, x} <- <<UAcc>>; s = 'BETA']",
            "[{k1, x} | {k1, k2, x} <- <<Shared>>]",
            "[{a, b} | {s1, k1, a} <- <<UAcc>>; {s2, k2, b} <- <<UAcc>>; k2 = k1]",
        ];
        for text in queries {
            let query = parse(text).unwrap();
            let parallel = VirtualExtents::new(&registry, &defs)
                .answer(&query)
                .expect("parallel answer");
            let sequential = VirtualExtents::new(&registry, &defs)
                .sequential()
                .answer(&query)
                .expect("sequential answer");
            let naive = VirtualExtents::new(&registry, &defs)
                .sequential()
                .answer_with_nested_loops(&query)
                .expect("naive answer");
            match (&parallel, &naive) {
                (Value::Bag(p), Value::Bag(n)) => {
                    prop_assert_eq!(p.items(), n.items(), "parallel vs naive order: {}", text);
                }
                _ => prop_assert_eq!(&parallel, &naive, "parallel vs naive: {}", text),
            }
            prop_assert_eq!(&parallel, &sequential, "parallel vs sequential: {}", text);
        }
    }
}
