//! E5 — the structural properties of Figures 2, 3 and 4: intersection schema
//! construction, federated schemas containing intersections, global schema derivation
//! `G = I ∪ (ES1 − I) ∪ (ES2 − I) ∪ ES3 ∪ … ∪ ESn`, and extent preservation under
//! redundancy removal.

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::difference::difference;
use dataspace_core::intersection::build_intersection;
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use iql::ast::SchemeRef;
use proteomics::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};

fn uprotein_spec() -> IntersectionSpec {
    IntersectionSpec::new("I1")
        .with_mapping(
            ObjectMapping::table("UProtein")
                .with_contribution(
                    SourceContribution::parsed(
                        "pedro",
                        "[{'PEDRO', k} | k <- <<protein>>]",
                        ["protein"],
                    )
                    .unwrap(),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "gpmdb",
                        "[{'gpmDB', k} | k <- <<proseq>>]",
                        ["proseq"],
                    )
                    .unwrap(),
                ),
        )
        .with_mapping(
            ObjectMapping::column("UProtein", "accession_num")
                .with_contribution(
                    SourceContribution::parsed(
                        "pedro",
                        "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                        ["protein,accession_num"],
                    )
                    .unwrap(),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "gpmdb",
                        "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                        ["proseq,label"],
                    )
                    .unwrap(),
                ),
        )
}

fn dataspace(drop_redundant: bool) -> Dataspace {
    let scale = CaseStudyScale::tiny();
    let mut ds = Dataspace::with_config(DataspaceConfig {
        drop_redundant,
        ..Default::default()
    });
    ds.add_source(generate_pedro(&scale)).unwrap();
    ds.add_source(generate_gpmdb(&scale)).unwrap();
    ds.add_source(generate_pepseeker(&scale)).unwrap();
    ds.federate().unwrap();
    ds
}

/// Figure 2: an intersection schema contains only the semantically overlapping content
/// and each pathway ES → I has the add*/delete*/contract* shape.
#[test]
fn figure2_intersection_schema_shape() {
    let ds = dataspace(true);
    let result = build_intersection(&uprotein_spec(), ds.repository()).unwrap();
    assert_eq!(result.schema.len(), 2);
    for pathway in &result.pathways {
        let kinds: Vec<&str> = pathway.steps().iter().map(|t| t.kind()).collect();
        // All adds/extends come before all deletes, which come before all contracts.
        let first_delete = kinds
            .iter()
            .position(|k| *k == "delete")
            .unwrap_or(kinds.len());
        let first_contract = kinds
            .iter()
            .position(|k| *k == "contract")
            .unwrap_or(kinds.len());
        let last_add = kinds
            .iter()
            .rposition(|k| *k == "add" || *k == "extend")
            .unwrap_or(0);
        assert!(last_add < first_delete.max(last_add + 1));
        assert!(first_delete <= first_contract);
        // Applying the pathway to its source produces the intersection schema.
        let source = ds.repository().schema(&pathway.source).unwrap();
        let produced = pathway.apply_to(source).unwrap();
        assert!(produced.syntactically_identical(&result.schema));
    }
}

/// Figure 3: the federated schema combines extensional schemas and intersection
/// schemas; Figure 4: the global schema keeps the intersection plus the differences.
#[test]
fn figure4_global_schema_is_union_of_intersection_and_differences() {
    let mut ds = dataspace(true);
    let before = ds.global_schema().unwrap().len();
    ds.integrate(uprotein_spec()).unwrap();
    let global = ds.global_schema().unwrap();

    // The intersection objects are present…
    assert!(global.contains(&SchemeRef::table("UProtein")));
    assert!(global.contains(&SchemeRef::column("UProtein", "accession_num")));
    // …the covered source objects are gone…
    assert!(!global.contains(&SchemeRef::table("PEDRO_protein")));
    assert!(!global.contains(&SchemeRef::table("GPMDB_proseq")));
    // …the uncovered ones (ES − I) remain…
    assert!(global.contains(&SchemeRef::column("PEDRO_protein", "PEDRO_organism")));
    assert!(global.contains(&SchemeRef::column("GPMDB_proseq", "GPMDB_seq")));
    // …and untouched extensional schemas (ES3 = pepseeker) are fully present.
    assert!(global.contains(&SchemeRef::table("PEPSEEKER_proteinhit")));
    // |G| = |F| + |I| − |covered|.
    assert_eq!(global.len(), before + 2 - 4);
}

/// The `ES − I` operator retains exactly the objects dropped by contract steps.
#[test]
fn schema_difference_matches_pathway_contracts() {
    let ds = dataspace(true);
    let result = build_intersection(&uprotein_spec(), ds.repository()).unwrap();
    let pedro = ds.repository().schema("pedro").unwrap();
    let pedro_pathway = result
        .pathways
        .iter()
        .find(|p| p.source == "pedro")
        .unwrap();
    let diff = difference(pedro, pedro_pathway).unwrap();
    // protein and protein.accession_num were covered; everything else remains.
    assert_eq!(diff.dropped.len(), 2);
    assert_eq!(diff.schema.len(), pedro.len() - 2);
    assert!(diff
        .schema
        .contains(&SchemeRef::column("protein", "organism")));
    assert!(!diff.schema.contains(&SchemeRef::table("protein")));
    // The derived pathway is all contracts and reproduces the difference schema.
    assert!(diff.pathway.steps().iter().all(|t| t.kind() == "contract"));
    let produced = diff.pathway.apply_to(pedro).unwrap();
    assert!(produced.syntactically_identical(&diff.schema));
}

/// Redundancy removal must not change the answers of queries over the integrated
/// concepts: the covered objects' extents are included in the intersection objects.
#[test]
fn redundancy_removal_preserves_integrated_extents() {
    let mut keep = dataspace(false);
    let mut drop = dataspace(true);
    keep.integrate(uprotein_spec()).unwrap();
    drop.integrate(uprotein_spec()).unwrap();

    for query in [
        "count <<UProtein>>",
        "count <<UProtein, accession_num>>",
        "[x | {s, k, x} <- <<UProtein, accession_num>>; s = 'gpmDB']",
    ] {
        let a = keep.query_value(query).unwrap();
        let b = drop.query_value(query).unwrap();
        assert_eq!(a, b, "query `{query}` changed under redundancy removal");
    }
    // The dropped objects' extents are recoverable from the intersection object: the
    // PEDRO-tagged subset of UProtein equals the extent of the dropped PEDRO_protein.
    let via_intersection = drop.query("[k | {'PEDRO', k} <- <<UProtein>>]").unwrap();
    let original = keep.query("[k | k <- <<PEDRO_protein>>]").unwrap();
    assert!(via_intersection.same_elements(&original));
}

/// The federated schema answers queries with zero integration effort, and integration
/// only ever adds answerable concepts (pay-as-you-go monotonicity).
#[test]
fn federation_costs_nothing_and_integration_is_monotone() {
    let mut ds = dataspace(false);
    assert_eq!(ds.effort_report().total_manual(), 0);
    let federated_count = ds.query_value("count <<PEDRO_protein>>").unwrap();
    ds.integrate(uprotein_spec()).unwrap();
    // Previously answerable queries still answer identically (no redundancy dropping).
    assert_eq!(
        ds.query_value("count <<PEDRO_protein>>").unwrap(),
        federated_count
    );
    // And new cross-source concepts are now available.
    assert!(ds.can_answer("count <<UProtein, accession_num>>"));
    assert_eq!(ds.effort_report().total_manual(), 4);
}
