//! E4 — the classical union-compatible integration flow of Figure 1, exercised end to
//! end, plus the reconstructed classical iSpider baseline counts.

use automed::transformation::Transformation;
use automed::union_compat::{integrate_union_compatible, SourceIntegration};
use automed::wrapper::{wrap_relational, SourceRegistry};
use automed::{Repository, SchemaObject};
use iql::ast::SchemeRef;
use proteomics::classical_integration::{run_classical_integration, PAPER_STAGE_COUNTS};
use proteomics::sources::{
    generate_gpmdb, generate_pedro, gpmdb_schema, pedro_schema, CaseStudyScale,
};

/// Figure 1: wrap → union-compatible schemas → ident → global schema, and the global
/// schema answers queries against both sources via GAV unfolding.
#[test]
fn figure1_union_compatible_flow_end_to_end() {
    let scale = CaseStudyScale::tiny();
    let mut registry = SourceRegistry::new();
    registry.add_source(generate_pedro(&scale)).unwrap();
    registry.add_source(generate_gpmdb(&scale)).unwrap();

    let mut repo = Repository::new();
    repo.add_source_schema(wrap_relational(&pedro_schema()))
        .unwrap();
    repo.add_source_schema(wrap_relational(&gpmdb_schema()))
        .unwrap();

    // Minimal union-compatible target: the universal protein concept.
    let pedro_steps = vec![
        Transformation::add(
            SchemaObject::table("UProtein"),
            iql::parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        ),
        Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            iql::parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
        ),
    ]
    .into_iter()
    .chain(
        wrap_relational(&pedro_schema())
            .objects()
            .map(|o| Transformation::contract_void_any(o.clone()))
            .collect::<Vec<_>>(),
    )
    .collect::<Vec<_>>();
    let gpmdb_steps = vec![
        Transformation::add(
            SchemaObject::table("UProtein"),
            iql::parse("[{'gpmDB', k} | k <- <<proseq>>]").unwrap(),
        ),
        Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            iql::parse("[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]").unwrap(),
        ),
    ]
    .into_iter()
    .chain(
        wrap_relational(&gpmdb_schema())
            .objects()
            .map(|o| Transformation::contract_void_any(o.clone()))
            .collect::<Vec<_>>(),
    )
    .collect::<Vec<_>>();

    let result = integrate_union_compatible(
        &mut repo,
        &[
            SourceIntegration::new("pedro", pedro_steps),
            SourceIntegration::new("gpmdb", gpmdb_steps),
        ],
        "GS",
    )
    .unwrap();
    assert!(result.union_schemas[0].syntactically_identical(&result.union_schemas[1]));
    assert!(result.global.contains(&SchemeRef::table("UProtein")));
    assert!(repo.pathway_between("pedro", "GS").is_ok());
    assert!(repo.pathway_between("gpmdb", "GS").is_ok());

    // Answer a query on the classical global schema through GAV unfolding per source.
    use automed::qp::evaluator::{ViewDefinitions, VirtualExtents};
    use automed::qp::Contribution;
    let mut defs = ViewDefinitions::new();
    for (source, steps) in [
        ("pedro", repo.pathway_between("pedro", "GS").unwrap()),
        ("gpmdb", repo.pathway_between("gpmdb", "GS").unwrap()),
    ]
    .iter()
    .map(|(s, p)| (*s, p.clone()))
    {
        for step in steps.add_steps() {
            if let Transformation::Add { object, query, .. } = step {
                defs.add_contribution(
                    &object.scheme,
                    Contribution::from_source(source, query.clone()),
                );
            }
        }
    }
    let virt = VirtualExtents::new(&registry, &defs);
    let count = virt
        .answer(&iql::parse("count <<UProtein>>").unwrap())
        .unwrap();
    assert_eq!(count, iql::Value::Int((scale.proteins * 2) as i64));
}

#[test]
fn classical_baseline_reproduces_stage_counts() {
    let run = run_classical_integration().unwrap();
    let measured: Vec<usize> = run.stages.iter().map(|s| s.nontrivial_total).collect();
    assert_eq!(measured, PAPER_STAGE_COUNTS);
    assert_eq!(run.total_nontrivial, 95);
    // Stage GS3 requires no further non-trivial transformations, as in the paper.
    assert_eq!(run.stages.last().unwrap().nontrivial_total, 0);
}

#[test]
fn classical_pathways_are_reversible_like_any_bav_pathway() {
    let run = run_classical_integration().unwrap();
    for pathway in &run.pathways {
        let reversed = pathway.reverse();
        assert_eq!(reversed.reverse(), *pathway);
        assert_eq!(reversed.len(), pathway.len());
        // Reversal preserves the non-trivial count (add ↔ delete keep their queries).
        assert_eq!(reversed.nontrivial_count(), pathway.nontrivial_count());
    }
}
