//! Concurrency stress tests for the shared query path: a `Database` and a
//! `VirtualExtents` provider hammered from many threads with queries and inserts
//! interleaved. Asserts cache coherence (every answer matches the data visible at
//! its snapshot), determinism (all threads get byte-identical answers for the same
//! query), absence of deadlocks (the tests simply must terminate), and the
//! plan-cache invalidation path on insert.

use automed::qp::evaluator::{ViewDefinitions, VirtualExtents};
use automed::qp::Contribution;
use automed::wrapper::SourceRegistry;
use iql::eval::ExtentProvider;
use iql::value::Value;
use iql::{parse, Evaluator, PlanCache, SchemeRef};
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use std::sync::{Arc, RwLock};
use std::thread;

fn fresh_db(name: &str) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new("t")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("grp", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    Database::new(schema)
}

fn seeded_db(name: &str, rows: i64) -> Database {
    let mut db = fresh_db(name);
    for i in 0..rows {
        db.insert(
            "t",
            vec![i.into(), (i % 5).into(), format!("w{}", i % 7).into()],
        )
        .unwrap();
    }
    db
}

/// N threads interleave validated inserts (write lock) with queries (read lock)
/// against one shared `Database`. Every answer must be coherent with the row count
/// visible under its read guard — a stale or torn extent cache would break the
/// equality — and the final cache state must equal a fresh recompute.
#[test]
fn shared_database_queries_and_inserts_interleaved() {
    const THREADS: i64 = 6;
    const ITERS: i64 = 25;
    let db = RwLock::new(seeded_db("stress", 10));
    let selection = parse("[{k, x} | {k, x} <- <<t, label>>]").unwrap();
    let join =
        parse("[{a, b} | {k1, a} <- <<t, label>>; {k2, b} <- <<t, label>>; k2 = k1]").unwrap();

    thread::scope(|scope| {
        for tid in 0..THREADS {
            let db = &db;
            let selection = &selection;
            let join = &join;
            scope.spawn(move || {
                for iter in 0..ITERS {
                    if tid % 2 == 0 {
                        // Writer: insert a unique row, then immediately query.
                        let mut guard = db.write().unwrap();
                        guard
                            .insert(
                                "t",
                                vec![
                                    (1000 + tid * ITERS + iter).into(),
                                    (iter % 5).into(),
                                    format!("w{}", iter % 7).into(),
                                ],
                            )
                            .unwrap();
                        let rows = guard.row_count("t");
                        let v = Evaluator::new(&*guard).eval_closed(selection).unwrap();
                        assert_eq!(
                            v.expect_bag().unwrap().len(),
                            rows,
                            "writer snapshot must see its own insert"
                        );
                    } else {
                        // Reader: the label extent and the key self-join must both
                        // agree with the row count visible under this read guard
                        // (keys are unique, so |join| == |rows|).
                        let guard = db.read().unwrap();
                        let rows = guard.row_count("t");
                        let sel = Evaluator::new(&*guard).eval_closed(selection).unwrap();
                        assert_eq!(sel.expect_bag().unwrap().len(), rows);
                        let planned = Evaluator::new(&*guard).eval_closed(join).unwrap();
                        assert_eq!(planned.expect_bag().unwrap().len(), rows);
                    }
                }
            });
        }
    });

    // Final coherence: the incrementally maintained extents equal a recompute.
    let final_db = db.read().unwrap();
    let total = final_db.row_count("t");
    assert_eq!(total as i64, 10 + (THREADS / 2) * ITERS);
    let cached = final_db.extent(&SchemeRef::column("t", "label")).unwrap();
    let fresh =
        relational::wrapper::extent_of(&final_db, &SchemeRef::column("t", "label")).unwrap();
    assert_eq!(cached.items(), fresh.items());
    assert!(final_db.data_version() >= (THREADS / 2) as u64 * ITERS as u64);
}

fn stress_definitions() -> ViewDefinitions {
    let mut defs = ViewDefinitions::new();
    let uacc = SchemeRef::table("UAcc");
    defs.add_contribution(
        &uacc,
        Contribution::from_source(
            "alpha",
            parse("[{'ALPHA', k, x} | {k, x} <- <<t, label>>]").unwrap(),
        ),
    );
    defs.add_contribution(
        &uacc,
        Contribution::from_source(
            "beta",
            parse("[{'BETA', k, x} | {k, x} <- <<t, label>>]").unwrap(),
        ),
    );
    defs.add_contribution(
        &SchemeRef::table("Shared"),
        Contribution::derived(
            parse(
                "[x | {s1, k1, x} <- <<UAcc>>; s1 = 'ALPHA'; {s2, k2, y} <- <<UAcc>>; x = y; s2 = 'BETA']",
            )
            .unwrap(),
        ),
    );
    defs
}

/// One shared `VirtualExtents` serves the same query set from many threads at
/// once: all threads must get answers identical (order included) to a sequential
/// baseline, while racing to fill the same `RwLock` memo.
#[test]
fn shared_virtual_extents_deterministic_across_threads() {
    const THREADS: usize = 8;
    let mut registry = SourceRegistry::new();
    registry.add_source(seeded_db("alpha", 30)).unwrap();
    registry.add_source(seeded_db("beta", 20)).unwrap();
    let defs = stress_definitions();

    let queries: Vec<iql::Expr> = [
        "count <<UAcc>>",
        "[x | {s, k, x} <- <<UAcc>>; s = 'BETA']",
        "count <<Shared>>",
        "[{a, b} | {s1, k1, a} <- <<UAcc>>; {s2, k2, b} <- <<UAcc>>; k2 = k1; s2 = 'ALPHA']",
    ]
    .iter()
    .map(|q| parse(q).unwrap())
    .collect();

    // Sequential baseline over a private provider.
    let baseline: Vec<Value> = {
        let provider = VirtualExtents::new(&registry, &defs).sequential();
        queries
            .iter()
            .map(|q| provider.answer(q).unwrap())
            .collect()
    };

    let shared = VirtualExtents::new(&registry, &defs).with_plan_cache(Arc::new(PlanCache::new()));
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            let queries = &queries;
            let baseline = &baseline;
            scope.spawn(move || {
                for _round in 0..5 {
                    for (query, expected) in queries.iter().zip(baseline) {
                        let got = shared.answer(query).unwrap();
                        match (&got, expected) {
                            (Value::Bag(g), Value::Bag(e)) => {
                                assert_eq!(g.items(), e.items(), "order must be deterministic")
                            }
                            _ => assert_eq!(&got, expected),
                        }
                    }
                }
            });
        }
    });
    assert!(shared.cached_scheme_count() >= 2);
}

/// The plan-cache invalidation path on insert: a cached join plan bakes in hash
/// indexes over the old extents; inserting a row bumps the provider version, so
/// the next evaluation must rebuild the plan and see the new row (while the extent
/// cache itself is maintained incrementally, not recomputed).
#[test]
fn plan_cache_invalidated_by_insert() {
    let mut db = seeded_db("solo", 12);
    let cache = Arc::new(PlanCache::new());
    let join =
        parse("[{a, b} | {k1, a} <- <<t, label>>; {k2, b} <- <<t, label>>; k2 = k1]").unwrap();

    let before = Evaluator::new(&db)
        .with_plan_cache(Arc::clone(&cache))
        .eval_closed(&join)
        .unwrap();
    assert_eq!(before.expect_bag().unwrap().len(), 12);
    assert_eq!(cache.len(), 1);
    let misses_before = cache.miss_count();

    // Prime the extent cache, then insert: the cached extent must be appended to
    // (incremental maintenance), and the cached plan must go stale.
    db.insert("t", vec![999.into(), 0.into(), "brand-new".into()])
        .unwrap();
    let after = Evaluator::new(&db)
        .with_plan_cache(Arc::clone(&cache))
        .eval_closed(&join)
        .unwrap();
    assert_eq!(
        after.expect_bag().unwrap().len(),
        13,
        "stale cached plan must not serve after an insert"
    );
    assert!(
        cache.miss_count() > misses_before,
        "version change must register as a cache miss"
    );

    // And the re-cached plan serves hits again at the new version.
    let hits = cache.hit_count();
    let again = Evaluator::new(&db)
        .with_plan_cache(Arc::clone(&cache))
        .eval_closed(&join)
        .unwrap();
    assert_eq!(again, after);
    assert!(cache.hit_count() > hits);
}

/// Standing subscriptions racing inserts on a shared `RwLock<Dataspace>`:
/// writer threads interleave inserts into both sources (each maintaining every
/// subscription — O(delta) or fallback) while reader threads check, under a
/// read guard, that each subscription's held result is byte-identical to
/// re-executing its query from scratch. Subscription handles are also read
/// **without** any dataspace lock — maintenance swaps results under the
/// handle's own mutex, so lock-free readers see a consistent (possibly
/// slightly stale, never torn) bag whose size only grows. At the end, every
/// drained update stream must replay the seeded baseline into the final
/// result: no lost and no duplicated deltas despite the races.
#[test]
fn subscriptions_race_inserts_without_losing_or_duplicating_deltas() {
    use dataspace_core::dataspace::Dataspace;
    use dataspace_core::{Subscription, SubscriptionUpdate};
    use iql::Params;

    const WRITERS: i64 = 3;
    const READERS: usize = 3;
    const ITERS: i64 = 20;

    let mut inner = Dataspace::new();
    inner.add_source(seeded_db("alpha", 5)).unwrap();
    inner.add_source(seeded_db("beta", 5)).unwrap();
    inner.federate().unwrap();

    // One incremental shape, one join chain (delta on alpha, fallback on
    // beta), one aggregate (always fallback).
    let shapes = [
        "[x | {k, x} <- <<ALPHA_t, ALPHA_label>>]",
        "[{a, b} | {k, a} <- <<ALPHA_t, ALPHA_label>>; {j, b} <- <<BETA_t, BETA_label>>; j = k]",
        "count <<ALPHA_t>>",
    ];
    let panel: Vec<(&str, Subscription, Value)> = shapes
        .iter()
        .map(|text| {
            let sub = inner
                .prepare(text)
                .unwrap()
                .subscribe(&Params::new())
                .unwrap();
            let baseline = sub.result();
            (*text, sub, baseline)
        })
        .collect();
    let ds = RwLock::new(inner);

    thread::scope(|scope| {
        for wid in 0..WRITERS {
            let ds = &ds;
            scope.spawn(move || {
                for iter in 0..ITERS {
                    let (source, table) = if iter % 2 == 0 {
                        ("alpha", "t")
                    } else {
                        ("beta", "t")
                    };
                    let key = 1000 + wid * ITERS + iter;
                    ds.write()
                        .unwrap()
                        .insert(
                            source,
                            table,
                            vec![
                                key.into(),
                                (iter % 5).into(),
                                format!("w{}", iter % 7).into(),
                            ],
                        )
                        .unwrap();
                }
            });
        }
        for _ in 0..READERS {
            let ds = &ds;
            let panel = &panel;
            scope.spawn(move || {
                let mut last_len = 0;
                for _ in 0..ITERS {
                    // Lock-free read: no dataspace guard held at all. The
                    // incremental shape's bag must never shrink and never tear.
                    let lock_free = panel[0].1.result_bag().unwrap().len();
                    assert!(lock_free >= last_len, "subscription result shrank");
                    last_len = lock_free;
                    // Guarded read: with writers excluded, every subscription
                    // must agree exactly with from-scratch re-execution.
                    let guard = ds.read().unwrap();
                    for (text, sub, _) in panel {
                        let expected = guard
                            .prepare(text)
                            .unwrap()
                            .execute_value(&Params::new())
                            .unwrap();
                        match (sub.result(), expected) {
                            (Value::Bag(g), Value::Bag(e)) => assert_eq!(
                                g.items(),
                                e.items(),
                                "subscription diverged under read guard for `{text}`"
                            ),
                            (got, expected) => assert_eq!(got, expected),
                        }
                    }
                }
            });
        }
    });

    // Post-race: results converged and the update streams replay exactly.
    let ds = ds.read().unwrap();
    let stats = ds.stats();
    assert!(stats.delta_evals > 0, "no insert took the O(delta) path");
    assert!(stats.fallback_reexecs > 0, "no insert fell back");
    for (text, sub, baseline) in &panel {
        let mut replayed = baseline.clone();
        for update in sub.drain_updates() {
            match update {
                SubscriptionUpdate::Delta(delta) => {
                    let Value::Bag(bag) = &mut replayed else {
                        panic!("Delta against non-bag result");
                    };
                    for v in delta.iter() {
                        bag.push(v.clone());
                    }
                }
                SubscriptionUpdate::Refreshed(value) => replayed = value,
            }
        }
        assert_eq!(
            replayed,
            sub.result(),
            "lost or duplicated delta for `{text}`"
        );
        let expected = ds
            .prepare(text)
            .unwrap()
            .execute_value(&Params::new())
            .unwrap();
        match (sub.result(), expected) {
            (Value::Bag(g), Value::Bag(e)) => assert_eq!(g.items(), e.items()),
            (got, expected) => assert_eq!(got, expected),
        }
    }
}

/// Racing N threads through the *same* cold plan cache: exactly one plan per
/// comprehension survives, every thread's answer is identical, and no thread
/// deadlocks between the plan-cache and extent-cache locks.
#[test]
fn plan_cache_race_from_cold_is_coherent() {
    const THREADS: usize = 8;
    let db = seeded_db("race", 40);
    let cache = Arc::new(PlanCache::new());
    let join =
        parse("[{a, b} | {k1, a} <- <<t, label>>; {k2, b} <- <<t, label>>; k2 = k1]").unwrap();
    let expected = Evaluator::new(&db).eval_closed(&join).unwrap();

    thread::scope(|scope| {
        for _ in 0..THREADS {
            let db = &db;
            let cache = Arc::clone(&cache);
            let join = &join;
            let expected = &expected;
            scope.spawn(move || {
                let got = Evaluator::new(db)
                    .with_plan_cache(cache)
                    .eval_closed(join)
                    .unwrap();
                assert_eq!(&got, expected);
            });
        }
    });
    assert_eq!(cache.len(), 1, "racing threads converge on one cached plan");
}
