//! Differential and stress tests for the batched dataspace query path:
//! `Dataspace::query_all` must equal the sequential `query` loop per item —
//! answers **and** errors, in input order — over randomly populated sources and
//! mixed query batches, under concurrent callers, and with the LRU-bounded
//! plan/extent caches forced to evict.

use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use proptest::prelude::*;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;
use std::thread;

fn source(name: &str, table: &str, rows: &[(i64, usize)]) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("grp", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    let mut db = Database::new(schema);
    for (i, (k, v)) in rows.iter().enumerate() {
        db.insert(
            table,
            vec![(i as i64).into(), (*k).into(), format!("w{v}").into()],
        )
        .unwrap();
    }
    db
}

fn uacc_spec() -> IntersectionSpec {
    IntersectionSpec::new("I1").with_mapping(
        ObjectMapping::column("UAcc", "label")
            .with_contribution(
                SourceContribution::parsed(
                    "alpha",
                    "[{'ALPHA', k, x} | {k, x} <- <<t, label>>]",
                    ["t,label"],
                )
                .unwrap(),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "beta",
                    "[{'BETA', k, x} | {k, x} <- <<u, label>>]",
                    ["u,label"],
                )
                .unwrap(),
            ),
    )
}

fn integrated(alpha_rows: &[(i64, usize)], beta_rows: &[(i64, usize)]) -> Dataspace {
    let mut ds = Dataspace::new();
    ds.add_source(source("alpha", "t", alpha_rows)).unwrap();
    ds.add_source(source("beta", "u", beta_rows)).unwrap();
    ds.federate().unwrap();
    ds.integrate(uacc_spec()).unwrap();
    ds
}

/// The batch mixes selections, joins (including a 3-generator chain for the
/// multiway reorder), an unknown-scheme error and an unparseable query, so the
/// per-item contract is exercised for every outcome kind.
fn query_batch() -> Vec<&'static str> {
    vec![
        "[x | {s, k, x} <- <<UAcc, label>>; s = 'ALPHA']",
        "[{x, y} | {s1, k1, x} <- <<UAcc, label>>; {s2, k2, y} <- <<UAcc, label>>; k2 = k1]",
        "[{x, y, z} | {s1, k1, x} <- <<UAcc, label>>; {s2, k2, y} <- <<UAcc, label>>; k2 = k1; {s3, k3, z} <- <<UAcc, label>>; k3 = k1]",
        "[k | k <- <<NoSuchScheme>>]",
        "[oops",
        "[x | {s, k, x} <- <<UAcc, label>>; s = 'BETA']",
        "[{k, x} | {s, k, x} <- <<UAcc, label>>]",
    ]
}

fn extent_rows() -> impl Strategy<Value = Vec<(i64, usize)>> {
    prop::collection::vec((0i64..6, 0usize..4), 0..16)
}

proptest! {
    /// query_all ≡ the sequential query loop, item for item and in input order —
    /// matching answers (order included) and matching error/success outcomes.
    #[test]
    fn query_all_equals_sequential_loop(
        alpha_rows in extent_rows(),
        beta_rows in extent_rows(),
    ) {
        let ds = integrated(&alpha_rows, &beta_rows);
        let batch = query_batch();
        let batched = ds.query_all(&batch);
        let sequential: Vec<_> = batch.iter().map(|q| ds.query(q)).collect();
        prop_assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            match (b, s) {
                (Ok(bb), Ok(sb)) => {
                    prop_assert_eq!(bb.items(), sb.items(), "order differs for query {}", i);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "outcome kind differs for query {}: batched {:?} vs sequential {:?}", i, b.is_ok(), s.is_ok()),
            }
        }
    }
}

#[test]
fn query_all_under_concurrent_callers_is_deterministic() {
    let rows: Vec<(i64, usize)> = (0..24).map(|i| (i % 6, (i % 4) as usize)).collect();
    let ds = integrated(&rows, &rows);
    let batch = query_batch();
    let reference = ds.query_all(&batch);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(|| ds.query_all(&batch)))
            .collect();
        for handle in handles {
            let got = handle.join().expect("query_all caller panicked");
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                match (g, r) {
                    (Ok(gb), Ok(rb)) => assert_eq!(gb.items(), rb.items()),
                    (Err(_), Err(_)) => {}
                    _ => panic!("concurrent query_all outcome diverged"),
                }
            }
        }
    });
}

#[test]
fn lru_bounded_caches_enforce_caps_and_stay_correct() {
    let rows: Vec<(i64, usize)> = (0..20).map(|i| (i % 5, (i % 3) as usize)).collect();
    let mut ds = Dataspace::with_config(DataspaceConfig {
        plan_cache_capacity: 2,
        extent_cache_capacity: 2,
        ..DataspaceConfig::default()
    });
    ds.add_source(source("alpha", "t", &rows)).unwrap();
    ds.add_source(source("beta", "u", &rows)).unwrap();
    ds.federate().unwrap();
    ds.integrate(uacc_spec()).unwrap();

    // Many distinct queries: both memos must stay within their caps while every
    // answer stays correct (eviction recomputes, never corrupts).
    let templates: Vec<String> = (0..8)
        .map(|k| format!("[x | {{s, k, x}} <- <<UAcc, label>>; k = {k}]"))
        .collect();
    let all: Vec<&str> = templates.iter().map(String::as_str).collect();
    let first = ds.query_all(&all);
    assert!(
        ds.plan_cache().len() <= 2,
        "plan cache exceeded its LRU cap"
    );
    assert!(
        ds.cached_extent_count() <= 2,
        "extent memo exceeded its LRU cap"
    );
    assert!(ds.plan_cache().capacity() == 2);
    // Re-run sequentially: evicted plans rebuild and answers are identical.
    for (i, q) in all.iter().enumerate() {
        let again = ds.query(q).unwrap();
        assert_eq!(
            again.items(),
            first[i].as_ref().unwrap().items(),
            "eviction changed the answer of query {i}"
        );
    }
}

#[test]
fn query_all_handles_tiny_batches() {
    let rows: Vec<(i64, usize)> = (0..4).map(|i| (i, i as usize)).collect();
    let ds = integrated(&rows, &rows);
    assert!(ds.query_all(&[]).is_empty());
    let one = ds.query_all(&["[x | {s, k, x} <- <<UAcc, label>>]"]);
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].as_ref().unwrap().len(), 8);
}
