//! Grammar-wide parser ↔ pretty-printer round-trip property: for randomly
//! generated `Expr` trees covering **every** AST variant the surface syntax can
//! spell, `parse(print(e))` must reproduce `e` exactly.
//!
//! PR 3 caught `Float(2.0)` printing as `2` and re-parsing as an `Int`; this
//! suite locks the whole grammar against that class of bug rather than just
//! literals. Writing it found (and the fixes now guard) two more instances:
//! string literals containing `\` printed unescaped (truncating or corrupting
//! the re-parse), and `if`/`let`/`Range` printed bare as binary-operator
//! operands, where the re-parse either swallows the rest of the operator chain
//! into their last sub-expression or rejects the input outright.
//!
//! Two AST shapes are deliberately *not* generated because the surface syntax
//! cannot spell them: negative numeric literals (they print as `-n`, which the
//! parser reads as unary negation of a positive literal — semantically equal,
//! structurally different) and `Float`/`Null` literal *patterns* (the pattern
//! grammar only admits int, string and bool literals). Both are documented
//! grammar limits, not printer bugs.

use iql::ast::{BinOp, Expr, Literal, Pattern, Qualifier, SchemeRef, UnOp};
use iql::builtins::BUILTINS;
use iql::pretty;
use iql::{parse, Bag, Value};
use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// Identifier pool: valid identifiers that are neither keywords nor built-in
/// function names (a variable named like a built-in is a distinct — and
/// separately interesting — case the grammar resolves by lookahead; covered by
/// the deterministic tests below).
const IDENTS: &[&str] = &["x", "y", "z2", "acc", "organism", "k_1", "pep"];

/// Characters string literals draw from; includes the two escape-relevant
/// characters (`'`, `\`) and multi-byte UTF-8 alongside plain text.
const STRING_CHARS: &[char] = &['a', 'b', ' ', '\'', '\\', '0', 'P', 'é', '百', '→'];

fn ident(rng: &mut TestRng) -> String {
    IDENTS[rng.usize_in(0..IDENTS.len())].to_string()
}

fn string_lit(rng: &mut TestRng) -> String {
    let len = rng.usize_in(0..6);
    (0..len)
        .map(|_| STRING_CHARS[rng.usize_in(0..STRING_CHARS.len())])
        .collect()
}

/// A non-negative literal the surface syntax can spell exactly.
fn literal(rng: &mut TestRng) -> Literal {
    match rng.usize_in(0..5) {
        0 => Literal::Int(rng.i64_in(0..10_000)),
        // Eighths are binary-exact, so `Display` prints them losslessly; the
        // `.fract() == 0` cases exercise the `2.0`-not-`2` formatting rule.
        1 => Literal::Float(rng.i64_in(0..4_000) as f64 / 8.0),
        2 => Literal::Str(string_lit(rng)),
        3 => Literal::Bool(rng.usize_in(0..2) == 0),
        _ => Literal::Null,
    }
}

fn scheme(rng: &mut TestRng) -> SchemeRef {
    let n = rng.usize_in(1..4);
    SchemeRef::new((0..n).map(|_| ident(rng)))
}

/// A pattern the pattern grammar can spell: variables, wildcards, int/str/bool
/// literals, and (possibly empty) tuples of the same.
fn pattern(rng: &mut TestRng, depth: usize) -> Pattern {
    let top = if depth == 0 { 4 } else { 5 };
    match rng.usize_in(0..top) {
        0 => Pattern::Var(ident(rng)),
        1 => Pattern::Wildcard,
        2 => Pattern::Lit(Literal::Int(rng.i64_in(0..100))),
        3 => match rng.usize_in(0..2) {
            0 => Pattern::Lit(Literal::Str(string_lit(rng))),
            _ => Pattern::Lit(Literal::Bool(rng.usize_in(0..2) == 0)),
        },
        _ => {
            let n = rng.usize_in(0..4);
            Pattern::Tuple((0..n).map(|_| pattern(rng, depth - 1)).collect())
        }
    }
}

fn qualifier(rng: &mut TestRng, depth: usize) -> Qualifier {
    match rng.usize_in(0..3) {
        0 => Qualifier::Generator {
            pattern: pattern(rng, 2),
            source: expr(rng, depth),
        },
        1 => Qualifier::Filter(expr(rng, depth)),
        _ => Qualifier::Binding {
            pattern: pattern(rng, 2),
            value: expr(rng, depth),
        },
    }
}

const BIN_OPS: &[BinOp] = &[
    BinOp::Eq,
    BinOp::Neq,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::BagUnion,
    BinOp::BagDiff,
    BinOp::And,
    BinOp::Or,
];

/// Generate an expression covering every `Expr` variant; `depth` bounds
/// recursion (at zero only leaves are produced).
fn expr(rng: &mut TestRng, depth: usize) -> Expr {
    let variant = if depth == 0 {
        rng.usize_in(0..6)
    } else {
        rng.usize_in(0..15)
    };
    match variant {
        0 => Expr::Lit(literal(rng)),
        1 => Expr::Var(ident(rng)),
        2 => Expr::Scheme(scheme(rng)),
        3 => Expr::Void,
        4 => Expr::Any,
        5 => Expr::Param(ident(rng)),
        6 => {
            let n = rng.usize_in(0..4);
            Expr::Tuple((0..n).map(|_| expr(rng, depth - 1)).collect())
        }
        7 => {
            let n = rng.usize_in(0..4);
            Expr::Bag((0..n).map(|_| expr(rng, depth - 1)).collect())
        }
        8 => {
            let n = rng.usize_in(1..4);
            Expr::Comp {
                head: Box::new(expr(rng, depth - 1)),
                qualifiers: (0..n).map(|_| qualifier(rng, depth - 1)).collect(),
            }
        }
        9 => {
            let n = rng.usize_in(0..3);
            Expr::Apply {
                function: BUILTINS[rng.usize_in(0..BUILTINS.len())].to_string(),
                args: (0..n).map(|_| expr(rng, depth - 1)).collect(),
            }
        }
        10 => Expr::BinOp {
            op: BIN_OPS[rng.usize_in(0..BIN_OPS.len())],
            lhs: Box::new(expr(rng, depth - 1)),
            rhs: Box::new(expr(rng, depth - 1)),
        },
        11 => Expr::UnOp {
            op: if rng.usize_in(0..2) == 0 {
                UnOp::Neg
            } else {
                UnOp::Not
            },
            expr: Box::new(expr(rng, depth - 1)),
        },
        12 => Expr::If {
            cond: Box::new(expr(rng, depth - 1)),
            then: Box::new(expr(rng, depth - 1)),
            otherwise: Box::new(expr(rng, depth - 1)),
        },
        13 => Expr::Let {
            pattern: pattern(rng, 2),
            value: Box::new(expr(rng, depth - 1)),
            body: Box::new(expr(rng, depth - 1)),
        },
        _ => Expr::Range {
            lower: Box::new(expr(rng, depth - 1)),
            upper: Box::new(expr(rng, depth - 1)),
        },
    }
}

/// Strategy adapter so the generator plugs into the `proptest!` macro.
struct ExprTrees {
    depth: usize,
}

impl Strategy for ExprTrees {
    type Value = Expr;
    fn generate(&self, rng: &mut TestRng) -> Expr {
        expr(rng, self.depth)
    }
}

proptest! {
    /// `parse(print(e)) == e` for arbitrarily shaped expression trees.
    #[test]
    fn printed_expressions_reparse_to_the_same_ast(e in ExprTrees { depth: 4 }) {
        let printed = pretty::print(&e);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("printed `{printed}` of {e:?} failed to parse: {err}"));
        prop_assert_eq!(
            &reparsed, &e,
            "round trip changed the AST: `{}` reparsed as {:?}", &printed, &reparsed
        );
    }

    /// Round-tripping also preserves the plan-cache key: equal ASTs must stay
    /// equal (and hash-equal) through print → parse.
    #[test]
    fn round_trip_preserves_cache_key_equality(e in ExprTrees { depth: 3 }) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let reparsed = parse(&pretty::print(&e)).expect("printed form parses");
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        e.hash(&mut h1);
        reparsed.hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish(), "hash diverged for {:?}", &e);
    }
}

// ---------- deterministic regressions for the bugs this suite found ----------

#[test]
fn backslash_strings_round_trip() {
    for s in ["\\", "a\\'b", "\\\\", "end\\", "'", "mix\\'\\"] {
        let e = Expr::Lit(Literal::Str(s.to_string()));
        let printed = pretty::print(&e);
        let reparsed =
            parse(&printed).unwrap_or_else(|err| panic!("`{printed}` failed to parse: {err}"));
        assert_eq!(reparsed, e, "string {s:?} changed through `{printed}`");
    }
}

#[test]
fn if_let_range_round_trip_as_operator_operands() {
    let one = Box::new(Expr::int(1));
    let cases = [
        Expr::BinOp {
            op: BinOp::Add,
            lhs: Box::new(Expr::If {
                cond: Box::new(Expr::Lit(Literal::Bool(true))),
                then: Box::new(Expr::int(2)),
                otherwise: Box::new(Expr::int(3)),
            }),
            rhs: one.clone(),
        },
        Expr::BinOp {
            op: BinOp::Mul,
            lhs: one.clone(),
            rhs: Box::new(Expr::Let {
                pattern: Pattern::Var("x".into()),
                value: Box::new(Expr::int(2)),
                body: Box::new(Expr::var("x")),
            }),
        },
        Expr::BinOp {
            op: BinOp::BagUnion,
            lhs: Box::new(Expr::range_void_any()),
            rhs: Box::new(Expr::Bag(vec![])),
        },
    ];
    for e in cases {
        let printed = pretty::print(&e);
        let reparsed =
            parse(&printed).unwrap_or_else(|err| panic!("`{printed}` failed to parse: {err}"));
        assert_eq!(reparsed, e, "AST changed through `{printed}`");
    }
}

/// A comprehension *filter* that is itself a `let … in …` expression collides
/// with the `let` binding-qualifier syntax unless parenthesised (found by the
/// property above).
#[test]
fn let_expression_filters_round_trip() {
    let e = Expr::Comp {
        head: Box::new(Expr::var("x")),
        qualifiers: vec![
            Qualifier::Generator {
                pattern: Pattern::Var("x".into()),
                source: Expr::scheme(["t"]),
            },
            Qualifier::Filter(Expr::Let {
                pattern: Pattern::Var("y".into()),
                value: Box::new(Expr::int(1)),
                body: Box::new(Expr::BinOp {
                    op: BinOp::Gt,
                    lhs: Box::new(Expr::var("x")),
                    rhs: Box::new(Expr::var("y")),
                }),
            }),
        ],
    };
    let printed = pretty::print(&e);
    let reparsed =
        parse(&printed).unwrap_or_else(|err| panic!("`{printed}` failed to parse: {err}"));
    assert_eq!(reparsed, e, "AST changed through `{printed}`");
}

/// A variable that happens to be named like a built-in must survive printing in
/// the positions the grammar disambiguates by lookahead.
#[test]
fn builtin_named_variables_round_trip() {
    let count_var = Expr::var("count");
    let cases = [
        Expr::Tuple(vec![count_var.clone(), Expr::int(1)]),
        Expr::BinOp {
            op: BinOp::Add,
            lhs: Box::new(count_var.clone()),
            rhs: Box::new(Expr::int(1)),
        },
        count_var,
    ];
    for e in cases {
        let printed = pretty::print(&e);
        assert_eq!(parse(&printed).expect("parses"), e, "through `{printed}`");
    }
}

/// The printed form is not just structurally stable: it evaluates to the same
/// answer (spot check with a literal-heavy expression over a tiny extent).
#[test]
fn printed_queries_still_answer() {
    let mut m = iql::MapExtents::new();
    m.insert(
        "t,v",
        Bag::from_values(vec![
            Value::pair(Value::Int(1), Value::str("a\\b")),
            Value::pair(Value::Int(2), Value::str("c'd")),
        ]),
    );
    let q = parse("[x | {k, x} <- <<t, v>>; x = 'a\\\\b']").unwrap();
    let printed = pretty::print(&q);
    let reparsed = parse(&printed).unwrap();
    assert_eq!(reparsed, q);
    let a = iql::Evaluator::new(&m).eval_closed(&q).unwrap();
    let b = iql::Evaluator::new(&m).eval_closed(&reparsed).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.expect_bag().unwrap().len(), 1);
}
