//! Edge-case regressions for the vectorised columnar executor: every case
//! pins columnar ≡ row equality (bag order and multiplicities included, and
//! value *variants* preserved — `Int(1)`, never `Float(1.0)`) exactly where
//! the batch representation has seams: empty extents, the [`BATCH_SIZE`]
//! morsel boundary, float hash keys with `NaN`/`±0.0` (canonicalised by
//! `Value`'s hash), mixed-type columns that must degrade to boxed values, and
//! selection bitmaps carried across chained filter kernels.

use iql::env::Env;
use iql::value::{Bag, Value};
use iql::{parse, Evaluator, ExecEngine, MapExtents, StepProbe, BATCH_SIZE};
use std::sync::Arc;

fn extents(named: &[(&str, Vec<Value>)]) -> MapExtents {
    let mut m = MapExtents::new();
    for (name, rows) in named {
        m.insert(*name, Bag::from_values(rows.clone()));
    }
    m
}

fn kv_rows(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            Value::pair(
                Value::Int((i % 7) as i64),
                Value::str(format!("w{}", i % 3)),
            )
        })
        .collect()
}

/// Evaluate under both engines, assert the columnar engine actually produced
/// the default run's result (via a probe), and return the columnar items
/// after asserting they equal the row engine's.
fn assert_engines_agree(extents: &MapExtents, text: &str) -> Vec<Value> {
    let query = parse(text).unwrap_or_else(|e| panic!("{text} does not parse: {e}"));
    let probe = Arc::new(StepProbe::new());
    let col_ev = Evaluator::new(extents).with_step_probe(Arc::clone(&probe));
    assert_eq!(
        col_ev
            .execution_engine(&query, &Env::new())
            .expect("engine prediction"),
        ExecEngine::Columnar,
        "edge cases must exercise the columnar engine: {text}"
    );
    let columnar = col_ev.eval_closed(&query).expect("columnar evaluation");
    assert!(
        probe.engine_count(ExecEngine::Columnar) >= 1,
        "the columnar engine did not run for {text}"
    );
    let row = Evaluator::new(extents)
        .with_columnar(false)
        .eval_closed(&query)
        .expect("row evaluation");
    let citems = columnar.expect_bag().expect("bag result").items().to_vec();
    let ritems = row.expect_bag().expect("bag result").items().to_vec();
    assert_eq!(citems, ritems, "columnar vs row disagree for {text}");
    citems
}

#[test]
fn empty_extents_produce_empty_bags() {
    let m = extents(&[("empty", vec![]), ("full", kv_rows(10))]);
    for text in [
        // Empty leading source: the pipeline's first expansion yields nothing.
        "[{k, v} | {k, v} <- <<empty>>; k >= 0]",
        // Empty build side: every probe misses.
        "[{a, b} | {k, a} <- <<full>>; {k2, b} <- <<empty>>; k2 = k]",
        // Empty probe side: the build side is constructed but never probed.
        "[{a, b} | {k, a} <- <<empty>>; {k2, b} <- <<full>>; k2 = k]",
    ] {
        assert!(
            assert_engines_agree(&m, text).is_empty(),
            "expected an empty result for {text}"
        );
    }
}

#[test]
fn batch_size_boundary_rows_survive_morsel_streaming() {
    // One row below, exactly at, and one row above the morsel size: the
    // streamed expansion must neither drop nor duplicate rows at the seam,
    // with and without a join stage after it.
    for n in [BATCH_SIZE - 1, BATCH_SIZE, BATCH_SIZE + 1] {
        let m = extents(&[("big", kv_rows(n)), ("small", kv_rows(5))]);
        let filtered = assert_engines_agree(&m, "[{k, v} | {k, v} <- <<big>>; k >= 0]");
        assert_eq!(filtered.len(), n, "row count at boundary {n}");
        assert_engines_agree(
            &m,
            "[{a, b} | {k, a} <- <<big>>; {k2, b} <- <<small>>; k2 = k; b <> 'w1']",
        );
    }
}

#[test]
fn nan_and_signed_zero_float_keys_hash_consistently() {
    // `Value`'s hash canonicalises every NaN to one bit pattern and -0.0 to
    // 0.0, and its total order treats NaN as equal to everything it meets —
    // the typed float kernels and probe-key extraction must reproduce exactly
    // the row engine's bucket membership and comparison outcomes.
    let keys = [f64::NAN, 0.0, -0.0, 1.5, -1.5, f64::NAN];
    let left: Vec<Value> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Value::pair(Value::Float(*k), Value::Int(i as i64)))
        .collect();
    let right: Vec<Value> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Value::pair(Value::Float(*k), Value::str(format!("r{i}"))))
        .collect();
    let m = extents(&[("l", left), ("r", right)]);
    assert_engines_agree(&m, "[{a, b} | {k, a} <- <<l>>; {k2, b} <- <<r>>; k2 = k]");
    assert_engines_agree(&m, "[{k, a} | {k, a} <- <<l>>; k >= 0]");
    assert_engines_agree(&m, "[{k, a} | {k, a} <- <<l>>; k = 0]");
}

#[test]
fn mixed_type_columns_fall_back_to_boxed_values() {
    // One variable bound to ints, floats, strings and tuples across rows: the
    // column degrades to boxed values, and every surviving variant must come
    // out exactly as it went in (Int stays Int, Float stays Float).
    let rows = vec![
        Value::pair(Value::Int(1), Value::Int(10)),
        Value::pair(Value::Int(1), Value::Float(1.0)),
        Value::pair(Value::Int(2), Value::str("ten")),
        Value::pair(Value::Int(2), Value::pair(Value::Int(1), Value::Int(2))),
        Value::pair(Value::Int(1), Value::Int(10)),
    ];
    let m = extents(&[("mixed", rows)]);
    let all = assert_engines_agree(&m, "[v | {k, v} <- <<mixed>>; k >= 1]");
    assert_eq!(all[0], Value::Int(10), "Int(10) must not widen");
    assert_eq!(all[1], Value::Float(1.0), "Float(1.0) must stay a float");
    let joined = assert_engines_agree(
        &m,
        "[{a, b} | {k, a} <- <<mixed>>; {k2, b} <- <<mixed>>; k2 = k]",
    );
    assert_eq!(joined.len(), 13, "3*3 + 2*2 join pairs over the mixed keys");
}

#[test]
fn chained_filters_carry_the_selection_bitmap() {
    // Several consecutive filter steps over one generator: each kernel must
    // AND into the selection the previous ones left (never resurrect a
    // cleared row), and compaction afterwards must keep surviving rows in
    // source order.
    let m = extents(&[("s", kv_rows(BATCH_SIZE + 3)), ("t", kv_rows(6))]);
    assert_engines_agree(
        &m,
        "[{k, v} | {k, v} <- <<s>>; k >= 1; v <> 'w0'; k < 6; v <> 'w2'; k <> 3]",
    );
    // The same chain feeding a downstream join and a let-binding, so the
    // filtered batch is compacted and expanded again.
    assert_engines_agree(
        &m,
        "[{m, b} | {k, v} <- <<s>>; k >= 1; v <> 'w0'; k < 6; {k2, b} <- <<t>>; k2 = k; let m = k * 2; m <> 4]",
    );
    // A filter chain that clears every row: downstream operators see only
    // empty selections and the result is empty under both engines.
    assert!(
        assert_engines_agree(&m, "[k | {k, v} <- <<s>>; k < 3; k > 3]").is_empty(),
        "contradictory filters must yield nothing"
    );
}
