//! The prepared, parameterised query API end-to-end:
//!
//! * the **quoting regression**: parameter values containing `'`, `\` or
//!   multi-byte characters round-trip exactly through prepared execution
//!   (the old `format!`-splicing builders mis-parsed them);
//! * the **plan economy**: executing one `PreparedQuery` under N distinct
//!   bindings produces exactly one `PlanCache` entry, with every re-binding a
//!   cache **hit** (asserted through `DataspaceStats`);
//! * the **differential property**: `prepare(q).execute(params)` must answer
//!   exactly — answers *and order* — like the literal-substituted text query,
//!   over random string (quotes/backslashes/unicode), int and float values;
//! * the batched `execute_all` ≡ the sequential `execute` loop, per item and
//!   in input order, including validation errors;
//! * typed `UnboundParam` / `UnknownParam` validation errors.

use dataspace_core::dataspace::Dataspace;
use dataspace_core::error::CoreError;
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
use iql::{Params, Value};
use proptest::prelude::*;
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;

fn source(name: &str, table: &str, rows: &[(i64, &str)]) -> Database {
    let mut schema = RelSchema::new(name);
    schema
        .add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
    let mut db = Database::new(schema);
    for (k, v) in rows {
        db.insert(table, vec![(*k).into(), (*v).into()]).unwrap();
    }
    db
}

fn uacc_spec() -> IntersectionSpec {
    IntersectionSpec::new("I1").with_mapping(
        ObjectMapping::column("UAcc", "label")
            .with_contribution(
                SourceContribution::parsed(
                    "alpha",
                    "[{'ALPHA', k, x} | {k, x} <- <<t, label>>]",
                    ["t,label"],
                )
                .unwrap(),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "beta",
                    "[{'BETA', k, x} | {k, x} <- <<u, label>>]",
                    ["u,label"],
                )
                .unwrap(),
            ),
    )
}

fn integrated(alpha_rows: &[(i64, &str)], beta_rows: &[(i64, &str)]) -> Dataspace {
    let mut ds = Dataspace::new();
    ds.add_source(source("alpha", "t", alpha_rows)).unwrap();
    ds.add_source(source("beta", "u", beta_rows)).unwrap();
    ds.federate().unwrap();
    ds.integrate(uacc_spec()).unwrap();
    ds
}

const SELECT_BY_LABEL: &str = "[{s, k} | {s, k, x} <- <<UAcc, label>>; x = ?label]";

// ---------------------------------------------------------------- regression

/// Pinned regression for the injection-style quoting bug: an accession
/// containing `'` (or `\`, or multi-byte characters) must round-trip exactly
/// through prepared execution. The old `format!`-splicing path produced
/// `x = 'it's'`, which fails to parse.
#[test]
fn quote_bearing_parameter_values_round_trip() {
    let awkward = [
        "it's",
        "back\\slash",
        "both\\'mixed",
        "ACC'); drop table protein; --",
        "протеин αβ→γ 寿司",
    ];
    let rows: Vec<(i64, &str)> = awkward
        .iter()
        .enumerate()
        .map(|(i, a)| (i as i64, *a))
        .collect();
    let ds = integrated(&rows, &[(100, "plain")]);
    let q = ds.prepare(SELECT_BY_LABEL).unwrap();
    for (i, accession) in awkward.iter().enumerate() {
        let bag = q.execute(&Params::new().with("label", *accession)).unwrap();
        assert_eq!(
            bag.items(),
            &[Value::pair(Value::str("ALPHA"), Value::Int(i as i64))],
            "prepared lookup failed for awkward accession {accession:?}"
        );
    }
    // The literal-splicing equivalent of the first accession does not even
    // parse — this is the bug the prepared API retires.
    let spliced = format!(
        "[{{s, k}} | {{s, k, x}} <- <<UAcc, label>>; x = '{}']",
        awkward[0]
    );
    assert!(
        matches!(ds.query(&spliced), Err(CoreError::Parse(_))),
        "unescaped splicing should fail to parse"
    );
}

// ------------------------------------------------------------- plan economy

/// N distinct bindings of one prepared query ⇒ exactly one plan-cache entry,
/// and every execution after the first is a hit.
#[test]
fn rebinding_a_prepared_query_hits_the_plan_cache() {
    let ds = integrated(&[(1, "a"), (2, "b"), (3, "a")], &[(10, "a"), (11, "c")]);
    let q = ds.prepare(SELECT_BY_LABEL).unwrap();

    let before = ds.stats();
    let bindings: Vec<Params> = ["a", "b", "c", "nope", "a"]
        .iter()
        .map(|l| Params::new().with("label", *l))
        .collect();
    for params in &bindings {
        q.execute(params).unwrap();
    }
    let after = ds.stats();

    assert_eq!(
        after.plan_cache_misses - before.plan_cache_misses,
        1,
        "one miss: the first execution plans"
    );
    assert_eq!(
        after.plan_cache_hits - before.plan_cache_hits,
        bindings.len() as u64 - 1,
        "every re-binding is a plan-cache hit"
    );
    assert_eq!(
        after.plan_cache_len - before.plan_cache_len,
        1,
        "N distinct bindings produce exactly one plan-cache entry"
    );
    assert_eq!(after.plan_cache_evictions, before.plan_cache_evictions);
    // The observability snapshot also reports the memo/pool dimensions.
    assert!(
        after.extent_memo_len >= 1,
        "extents memoised across bindings"
    );
    assert!(
        after.parse_memo_len >= 1,
        "prepared text held in the parse memo"
    );
    assert!(after.fetch_pool_capacity >= 1);
    assert!(after.plan_cache_capacity >= after.plan_cache_len);
}

// ---------------------------------------------------------------- validation

#[test]
fn binding_validation_errors_are_typed() {
    let ds = integrated(&[(1, "a")], &[(2, "b")]);
    let q = ds.prepare(SELECT_BY_LABEL).unwrap();
    assert_eq!(q.param_names().collect::<Vec<_>>(), vec!["label"]);

    assert!(matches!(
        q.execute(&Params::new()),
        Err(CoreError::UnboundParam(name)) if name == "label"
    ));
    assert!(matches!(
        q.execute(&Params::new().with("label", "a").with("lable", "typo")),
        Err(CoreError::UnknownParam(name)) if name == "lable"
    ));
    // `query` and `query_all` stay thin wrappers: placeholder-bearing texts
    // report the same typed error through every entry point.
    assert!(matches!(
        ds.query(SELECT_BY_LABEL),
        Err(CoreError::UnboundParam(_))
    ));
    let batch = ds.query_all(&[SELECT_BY_LABEL, "[x | {s, k, x} <- <<UAcc, label>>]"]);
    assert!(matches!(batch[0], Err(CoreError::UnboundParam(_))));
    assert!(batch[1].is_ok());
}

// ------------------------------------------------------------- batched legs

#[test]
fn execute_all_equals_the_sequential_execute_loop() {
    let ds = integrated(
        &[(1, "a"), (2, "b"), (3, "a"), (4, "c")],
        &[(10, "a"), (11, "b"), (12, "d")],
    );
    let q = ds
        .prepare("[{s, k} | {s, k, x} <- <<UAcc, label>>; x = ?label]")
        .unwrap();
    let mut bindings: Vec<Params> = ["a", "b", "c", "d", "missing", "a", "b"]
        .iter()
        .map(|l| Params::new().with("label", *l))
        .collect();
    bindings.push(Params::new()); // validation error in one slot
    bindings.push(Params::new().with("label", "a").with("oops", 1));

    let batched = q.execute_all(&bindings);
    let sequential: Vec<_> = bindings.iter().map(|p| q.execute(p)).collect();
    assert_eq!(batched.len(), sequential.len());
    for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
        match (b, s) {
            (Ok(bb), Ok(sb)) => assert_eq!(bb.items(), sb.items(), "answer order at {i}"),
            (Err(be), Err(se)) => assert_eq!(be, se, "error at {i}"),
            other => panic!("batched vs sequential diverged at {i}: {other:?}"),
        }
    }
}

#[test]
fn query_all_bound_reports_per_item_errors() {
    let ds = integrated(&[(1, "a")], &[(2, "b")]);
    let p_ok = Params::new().with("label", "a");
    let p_empty = Params::new();
    let batch: Vec<(&str, &Params)> = vec![
        (SELECT_BY_LABEL, &p_ok),
        ("[oops", &p_empty),
        (SELECT_BY_LABEL, &p_empty),
        ("[k | k <- <<UAcc, label>>]", &p_ok),
    ];
    let results = ds.query_all_bound(&batch);
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].as_ref().unwrap().len(), 1);
    assert!(matches!(results[1], Err(CoreError::Parse(_))));
    assert!(matches!(results[2], Err(CoreError::UnboundParam(_))));
    assert!(matches!(results[3], Err(CoreError::UnknownParam(_))));
}

// ------------------------------------------------------------- differential

/// One randomly generated parameter value: the kinds the paper's workload
/// binds (accession strings — including quote/backslash/unicode-bearing ones —
/// integer keys, floating-point thresholds).
#[derive(Debug, Clone)]
enum ParamValue {
    Str(String),
    Int(i64),
    Float(f64),
}

impl ParamValue {
    fn to_value(&self) -> Value {
        match self {
            ParamValue::Str(s) => Value::str(s.as_str()),
            ParamValue::Int(i) => Value::Int(*i),
            ParamValue::Float(f) => Value::Float(*f),
        }
    }
}

/// Characters the random labels/parameters draw from: plain ASCII, the two
/// escape-relevant characters, and multi-byte UTF-8.
const LABEL_CHARS: &[&str] = &["a", "b", "'", "\\", " ", "ю", "百", "→", "ß"];

fn label() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..LABEL_CHARS.len(), 0..6)
        .prop_map(|idxs| idxs.into_iter().map(|i| LABEL_CHARS[i]).collect())
}

fn param_value() -> impl Strategy<Value = ParamValue> {
    (0usize..3, label(), -100i64..100, -800i64..800).prop_map(|(kind, s, i, eighths)| {
        match kind {
            0 => ParamValue::Str(s),
            1 => ParamValue::Int(i),
            // Eighths are binary-exact, so the literal-substituted text prints
            // and reparses the float losslessly.
            _ => ParamValue::Float(eighths as f64 / 8.0),
        }
    })
}

proptest! {
    /// `prepare(q).execute(params)` ≡ the literal-substituted text query —
    /// answers and order — for a parameterised selection and a parameterised
    /// join chain over randomly populated sources.
    #[test]
    fn prepared_equals_literal_substitution(
        alpha in prop::collection::vec(label(), 0..8),
        beta in prop::collection::vec(label(), 0..8),
        value in param_value(),
    ) {
        // Row index doubles as the primary key; ALPHA and BETA share key
        // ranges, so the self-join shape below matches across sources.
        let alpha_rows: Vec<(i64, &str)> =
            alpha.iter().enumerate().map(|(i, v)| (i as i64, v.as_str())).collect();
        let beta_rows: Vec<(i64, &str)> =
            beta.iter().enumerate().map(|(i, v)| (i as i64, v.as_str())).collect();
        let ds = integrated(&alpha_rows, &beta_rows);

        // A parameterised selection, a numeric-comparison filter, and a join
        // chain whose trailing filter carries the parameter.
        let shapes = [
            SELECT_BY_LABEL,
            "[{s, k} | {s, k, x} <- <<UAcc, label>>; x <> ?label]",
            "[k | {s, k, x} <- <<UAcc, label>>; k < ?label]",
            "[{x, y} | {s1, k1, x} <- <<UAcc, label>>; {s2, k2, y} <- <<UAcc, label>>; \
             k2 = k1; y = ?label]",
        ];
        for text in shapes {
            let prepared = ds.prepare(text).unwrap();
            let params = Params::new().with("label", value.to_value());
            let via_params = prepared.execute(&params).unwrap();

            // Reference: substitute the value as a literal into the AST, print
            // it, and run the resulting text through the plain query path.
            let substituted =
                iql::rewrite::substitute_params(prepared.expr(), &params);
            prop_assert!(substituted.params().is_empty());
            let literal_text = iql::pretty::print(&substituted);
            let via_literal = ds.query(&literal_text).unwrap();

            prop_assert_eq!(
                via_params.items(),
                via_literal.items(),
                "prepared vs literal-substituted diverged for `{}` under {:?} (literal text `{}`)",
                text, value, literal_text
            );
        }
    }

    /// The same property for a *bag-valued* parameter (the case study's Q2
    /// group shape, probed with `member(?group, x)`).
    #[test]
    fn prepared_bag_parameters_equal_literal_substitution(
        alpha in prop::collection::vec(label(), 0..8),
        group in prop::collection::vec(label(), 0..5),
    ) {
        let alpha_rows: Vec<(i64, &str)> =
            alpha.iter().enumerate().map(|(i, v)| (i as i64, v.as_str())).collect();
        let ds = integrated(&alpha_rows, &[(999, "fixed")]);
        let text = "[{s, k} | {s, k, x} <- <<UAcc, label>>; member(?group, x)]";
        let bag = iql::Bag::from_values(group.iter().map(|s| Value::str(s.as_str())).collect());
        let params = Params::new().with("group", Value::Bag(bag));

        let prepared = ds.prepare(text).unwrap();
        let via_params = prepared.execute(&params).unwrap();
        let literal_text =
            iql::pretty::print(&iql::rewrite::substitute_params(prepared.expr(), &params));
        let via_literal = ds.query(&literal_text).unwrap();
        prop_assert_eq!(via_params.items(), via_literal.items());
    }
}
