//! The deterministic RNG behind the strategies.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Per-test deterministic random source. Seeded from the test name (FNV-1a) so
/// every property test gets a distinct but reproducible stream; set
/// `PROPTEST_SEED` to perturb all tests at once.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = extra.parse::<u64>() {
                hash ^= seed;
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `usize` in range.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        if r.is_empty() {
            return r.start;
        }
        self.inner.gen_range(r)
    }

    /// Uniform `i64` in range.
    pub fn i64_in(&mut self, r: Range<i64>) -> i64 {
        self.inner.gen_range(r)
    }

    /// Uniform `i32` in range.
    pub fn i32_in(&mut self, r: Range<i32>) -> i32 {
        self.inner.gen_range(r)
    }

    /// Uniform `u32` in range.
    pub fn u32_in(&mut self, r: Range<u32>) -> u32 {
        self.inner.gen_range(r)
    }

    /// Uniform `f64` in range.
    pub fn f64_in(&mut self, r: Range<f64>) -> f64 {
        self.inner.gen_range(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::from_name("y");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
