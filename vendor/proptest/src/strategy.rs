//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Object-safe view of a strategy, used by `prop_oneof!`.
pub trait DynStrategy<V> {
    /// Draw one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<V, S: Strategy<Value = V>> DynStrategy<V> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> V {
        self.generate(rng)
    }
}

/// Uniform choice between boxed strategies of a common value type.
pub struct OneOf<V> {
    choices: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> OneOf<V> {
    /// Build from boxed choices (used by `prop_oneof!`).
    pub fn new(choices: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        OneOf { choices }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0..self.choices.len());
        self.choices[i].generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (`any::<i64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning a wide magnitude range.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = rng.i64_in(-64..64) as f64;
        (mantissa * 2.0 - 1.0) * exp.exp2()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $m:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$m(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i32 => i32_in, i64 => i64_in, usize => usize_in, u32 => u32_in, f64 => f64_in);

/// Regex-lite string strategy: character classes `[a-z0-9_]` (ranges and
/// singles), literal characters, and `{m}` / `{m,n}` repetition. This covers
/// the identifier-shaped patterns the tests use; anything fancier panics so the
/// gap is visible instead of silently producing wrong data.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {self:?}"));
                    i += 2;
                    vec![c]
                }
                '.' | '(' | ')' | '|' | '*' | '+' | '?' => {
                    panic!(
                        "regex feature {:?} unsupported by the proptest shim (pattern {self:?})",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(
                !alphabet.is_empty(),
                "empty character class in pattern {self:?}"
            );
            // Optional {m} or {m,n} repetition.
            let mut reps = 1..2usize;
            if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                reps = match body.split_once(',') {
                    Some((m, n)) => {
                        let m: usize = m.trim().parse().expect("repetition lower bound");
                        let n: usize = n.trim().parse().expect("repetition upper bound");
                        m..n + 1
                    }
                    None => {
                        let m: usize = body.trim().parse().expect("repetition count");
                        m..m + 1
                    }
                };
                i = close + 1;
            }
            let count = rng.usize_in(reps);
            for _ in 0..count {
                out.push(alphabet[rng.usize_in(0..alphabet.len())]);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_lite_identifiers() {
        let mut rng = TestRng::from_name("regex_lite_identifiers");
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_name("ranges_and_tuples");
        for _ in 0..500 {
            let (a, b) = (0i64..10, 5usize..7).generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((5..7).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_choices() {
        let s: OneOf<i64> = crate::prop_oneof![Just(1i64), Just(2i64), Just(3i64)];
        let mut rng = TestRng::from_name("oneof_covers_all_choices");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn map_and_collections() {
        let mut rng = TestRng::from_name("map_and_collections");
        let evens = (0i64..50).prop_map(|v| v * 2);
        let v = crate::collection::vec(evens, 3..4).generate(&mut rng);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x % 2 == 0));
        let s = crate::collection::btree_set("[a-z]{4}", 5..6).generate(&mut rng);
        assert_eq!(s.len(), 5);
    }
}
