//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, `any::<T>()`, `Just`, numeric range strategies,
//! regex-lite string strategies (`"[a-z]{0,6}"`-style character classes with
//! `{m,n}` repetition), tuple strategies, `prop::collection::{vec, btree_set}`,
//! and the `proptest!`/`prop_oneof!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! inputs via the panic message only), and a fixed per-test deterministic seed
//! derived from the test name (override the case count with `PROPTEST_CASES`).

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`, `prop::collection::btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for a `Vec` of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for a `BTreeSet` of `element`; retries on collision to reach
    /// the minimum size where possible.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 100 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Declare property tests. Each function runs [`cases`] times with fresh
/// random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])+
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..$crate::cases() {
                    let _ = case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// Choose uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$(Box::new($strat) as Box<dyn $crate::strategy::DynStrategy<_>>),+])
    };
}

/// Assert within a property (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
