//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the bench targets use — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a real (if simple)
//! measurement loop: per sample, run a calibrated batch of iterations and take
//! the mean; report the median across samples.
//!
//! Machine-readable output: when the `BENCH_JSON` environment variable names a
//! file, every finished benchmark merges its median (in nanoseconds) into that
//! JSON document under `"benches"`, keyed by `"<group>/<name>"`. Repeated runs
//! and multiple bench binaries accumulate into the same file, so a whole
//! `cargo bench` sweep can be collected into e.g. `BENCH_iql.json`.

use std::collections::BTreeMap;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Measure `routine`: calibrate a batch size, then collect `sample_size`
    /// samples of mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find how many iterations fit the per-sample budget.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            calibration_iters += 1;
        }
        let est_ns = (calibration_start.elapsed().as_nanos() as f64
            / calibration_iters.max(1) as f64)
            .max(1.0);
        let per_sample_budget =
            self.measurement_time.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let batch = ((per_sample_budget / est_ns).round() as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    match samples.len() {
        0 => 0.0,
        n if n % 2 == 1 => samples[n / 2],
        n => (samples[n / 2 - 1] + samples[n / 2]) / 2.0,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a routine under `<group>/<name>`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.group_name, name);
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.criterion
            .run_one(&id, sample_size, measurement_time, |b| f(b));
        self
    }

    /// Benchmark a routine that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.group_name, id);
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.criterion
            .run_one(&full, sample_size, measurement_time, |b| f(b, input));
        self
    }

    /// End the group (results are already recorded).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: BTreeMap<String, f64>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = name.to_string();
        self.run_one(&id, 10, Duration::from_secs(2), |b| f(b));
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::with_capacity(sample_size);
        {
            let mut bencher = Bencher {
                samples: &mut samples,
                sample_size,
                measurement_time,
            };
            f(&mut bencher);
        }
        let med = median(&mut samples);
        eprintln!("bench: {id:<50} median {:>12}", format_ns(med));
        self.results.insert(id.to_string(), med);
    }

    /// Results recorded so far (`id -> median ns`).
    pub fn results(&self) -> &BTreeMap<String, f64> {
        &self.results
    }

    /// Merge results into the JSON file named by `BENCH_JSON`, if set.
    pub fn write_json_if_requested(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut merged = read_bench_json(&path);
        merged.extend(self.results.iter().map(|(k, v)| (k.clone(), *v)));
        let mut out = String::from(
            "{\n  \"schema\": \"bench-medians-v1\",\n  \"unit\": \"ns\",\n  \"benches\": {\n",
        );
        let n = merged.len();
        for (i, (k, v)) in merged.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!("    \"{}\": {:.1}{}\n", escape(k), v, comma));
        }
        out.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("bench: wrote {n} medians to {path}");
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parse the `"benches"` object of a file previously written by
/// [`Criterion::write_json_if_requested`] (line-oriented; tolerant of absence).
pub fn read_bench_json(path: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Ok(content) = std::fs::read_to_string(path) else {
        return out;
    };
    for line in content.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\": ") else {
            continue;
        };
        if key == "schema" || key == "unit" || key == "benches" {
            continue;
        }
        if let Ok(v) = value.parse::<f64>() {
            out.insert(key.replace("\\\"", "\"").replace("\\\\", "\\"), v);
        }
    }
    out
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups. Skips measurement when invoked by
/// `cargo test` (which passes `--test` to harness-less bench binaries).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn bench_records_result() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(c.results().contains_key("g/noop"));
        assert!(c.results()["g/noop"] >= 0.0);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("criterion_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path_str = path.to_str().unwrap().to_string();
        let mut c = Criterion::default();
        c.results.insert("iql_eval/join/400".into(), 1234.5);
        std::env::set_var("BENCH_JSON", &path_str);
        c.write_json_if_requested();
        std::env::remove_var("BENCH_JSON");
        let parsed = read_bench_json(&path_str);
        assert_eq!(parsed.get("iql_eval/join/400"), Some(&1234.5));
        std::fs::remove_file(&path).ok();
    }
}
