//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but never
//! actually serializes anything (no `serde_json`, no trait bounds on serde
//! traits anywhere). The build environment has no network access, so instead of
//! the real serde this shim provides derive macros of the same names that
//! expand to nothing. Replacing this crate with real serde is a one-line change
//! in the workspace `Cargo.toml`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
