//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges and
//! `Rng::gen_bool` — on top of xoshiro256++ seeded via splitmix64. Deterministic
//! for a given seed, which is all the data generators need (they fix seeds for
//! reproducible fixtures). Not cryptographically secure.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `lo..hi` using the generator's next_u64.
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, irrelevant here.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample(rng, lo as f64, hi as f64) as f32
    }
}

/// Subset of rand's `Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// An arbitrary value of a samplable type (unit-interval for floats).
    fn gen<T: SampleArbitrary>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_arbitrary(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible by `Rng::gen` (floats draw from `[0, 1)`).
pub trait SampleArbitrary {
    /// Draw an arbitrary value.
    fn sample_arbitrary(rng: &mut dyn RngCore) -> Self;
}

impl SampleArbitrary for f64 {
    fn sample_arbitrary(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleArbitrary for f32 {
    fn sample_arbitrary(rng: &mut dyn RngCore) -> f32 {
        f64::sample_arbitrary(rng) as f32
    }
}

impl SampleArbitrary for bool {
    fn sample_arbitrary(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_arbitrary_int {
    ($($t:ty),*) => {$(
        impl SampleArbitrary for $t {
            fn sample_arbitrary(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Subset of rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator (stands in for rand's ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
