//! Threaded TCP server exposing a [`dataspace_core::dataspace::Dataspace`]
//! over the `wire` protocol — the subsystem that turns the in-process engine
//! into a shared service.
//!
//! Shape:
//!
//! - [`serve`] binds a `std::net` listener and accepts on a background
//!   thread; each admitted connection gets its own session thread (the
//!   connection cap bounds the pool).
//! - A session (internal) re-prepares its held query texts
//!   through the dataspace's parse memo per request, streams bag results in
//!   bounded chunks advanced only by client `NextChunk` acks, and drains
//!   standing-subscription updates into server-push frames between socket
//!   polls — no async runtime, just read timeouts.
//! - Admission control: connections over `max_connections` are turned away
//!   with a `ServerBusy` frame; engine work shares `exec_permits` slots and a
//!   request that cannot get one within `request_timeout` is answered
//!   `Timeout`; a session may hold at most `max_session_handles` open
//!   streams + subscriptions.
//! - Everything is counted ([`ServerStats`]) and surfaced to clients through
//!   the `Stats` opcode alongside the dataspace's own counters.
//!
//! The dataspace sits behind one `Arc<RwLock<_>>`: reads (prepare, execute,
//! subscribe, stats) share the lock, writes (insert, checkpoint) take it
//! exclusively, and no lock is held while frames travel — results are
//! materialised into per-session stream state first, with MVCC snapshot pins
//! marking the sources as "being read" for the stream's life.

mod server;
mod session;
mod stats;

pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::ServerStats;
