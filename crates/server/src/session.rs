//! Per-connection session: the dispatch loop that turns request frames into
//! engine calls and responses, drains subscription pushes between polls, and
//! tears everything down (streams, subscriptions, snapshot pins) when the
//! client goes away — cleanly or not.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use dataspace_core::dataspace::{Dataspace, DataspaceStats};
use dataspace_core::error::CoreError;
use dataspace_core::subscriptions::{Subscription, SubscriptionUpdate};
use iql::value::{Bag, Value};
use iql::Params;

use wire::frame::{write_frame, FrameError, FrameReader, SERVER_ORIGIN_ID};
use wire::proto::{ErrorCode, PushUpdate, Request, Response};

use crate::server::{Semaphore, ServerConfig};
use crate::stats::ServerStats;

/// A materialised result mid-stream. The rows are already computed (under the
/// execution permit that produced them); what remains is pacing them out at
/// the client's ack rate. The snapshot pins mark the member sources as "being
/// read" for the stream's whole life.
struct StreamState {
    rows: Vec<Value>,
    cursor: usize,
    chunk_rows: usize,
    _pins: Vec<relational::Snapshot>,
}

/// One live subscription held on behalf of the client.
struct SubEntry {
    subscription: Subscription,
}

pub(crate) fn run_session(
    stream: TcpStream,
    dataspace: Arc<RwLock<Dataspace>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    permits: Arc<Semaphore>,
) {
    let mut session = Session {
        stream,
        reader: FrameReader::new(),
        consumed_in: 0,
        dataspace,
        stats,
        config,
        shutdown,
        permits,
        handles: HashMap::new(),
        next_handle: 1,
        streams: HashMap::new(),
        subs: HashMap::new(),
        next_sub: 1,
    };
    session.run();
    // Dropping the session drops every Subscription handle (unregistering the
    // standing queries) and every stream's snapshot pins.
}

struct Session {
    stream: TcpStream,
    reader: FrameReader,
    /// Frame bytes already credited to the server's `bytes_in` counter.
    consumed_in: u64,
    dataspace: Arc<RwLock<Dataspace>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    permits: Arc<Semaphore>,
    /// Prepared handles: id → query text, re-prepared per request through the
    /// dataspace's parse memo (a `PreparedQuery` borrows the dataspace, so
    /// the text is the only thing a session can hold across lock releases —
    /// and re-preparing a memoised text is a few `Arc` bumps, not a re-parse).
    handles: HashMap<u64, String>,
    next_handle: u64,
    /// Open result streams, keyed by the request id that opened them.
    streams: HashMap<u64, StreamState>,
    subs: HashMap<u64, SubEntry>,
    next_sub: u64,
}

impl Session {
    fn run(&mut self) {
        if self
            .stream
            .set_read_timeout(Some(self.config.poll_interval))
            .is_err()
        {
            return;
        }
        self.stream.set_nodelay(true).ok();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.send(
                    SERVER_ORIGIN_ID,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                );
                return;
            }
            if !self.flush_pushes() {
                return;
            }
            match self.reader.poll(&mut self.stream) {
                Ok(None) => continue,
                Ok(Some(frame)) => {
                    let fresh = self.reader.bytes_in() - self.consumed_in;
                    self.consumed_in = self.reader.bytes_in();
                    self.stats.add_bytes_in(fresh);
                    if !self.handle_frame(frame.request_id, frame.opcode, &frame.body) {
                        return;
                    }
                }
                // Clean close between frames: the client vanished without a
                // `Close`; tear down silently.
                Err(FrameError::Closed) => return,
                // Framing is lost (corruption, oversize, bad version, or a
                // disconnect mid-frame): answer with a typed error where a
                // write can still succeed, then drop the connection — no
                // later byte boundary can be trusted.
                Err(e) => {
                    self.stats.frame_error();
                    let code = match &e {
                        FrameError::TooLarge { .. } => ErrorCode::FrameTooLarge,
                        FrameError::Version { .. } => ErrorCode::VersionMismatch,
                        _ => ErrorCode::MalformedBody,
                    };
                    self.send(
                        SERVER_ORIGIN_ID,
                        &Response::Error {
                            code,
                            message: e.to_string(),
                        },
                    );
                    return;
                }
            }
        }
    }

    /// Drain pending updates from every subscription into push frames.
    /// Returns `false` if the client is unreachable.
    fn flush_pushes(&mut self) -> bool {
        let mut pushes: Vec<(u64, Vec<SubscriptionUpdate>)> = Vec::new();
        for (id, entry) in &self.subs {
            let updates = entry.subscription.drain_updates();
            if !updates.is_empty() {
                pushes.push((*id, updates));
            }
        }
        // Deliver in subscription order; updates within one subscription keep
        // their push order.
        pushes.sort_by_key(|(id, _)| *id);
        for (sub_id, updates) in pushes {
            for update in updates {
                let update = match update {
                    SubscriptionUpdate::Delta(bag) => PushUpdate::Delta(bag.into_items()),
                    SubscriptionUpdate::Refreshed(value) => PushUpdate::Refreshed(value),
                };
                if !self.send(SERVER_ORIGIN_ID, &Response::Push { sub_id, update }) {
                    return false;
                }
                self.stats.push_sent();
            }
        }
        true
    }

    /// Dispatch one frame. Returns `false` when the session should end.
    fn handle_frame(&mut self, request_id: u64, opcode: u8, body: &[u8]) -> bool {
        let request = match Request::decode(opcode, body) {
            Ok(Some(request)) => request,
            Ok(None) => {
                // Unknown opcode: framing is intact, so answer and carry on.
                return self.send_error(
                    request_id,
                    ErrorCode::UnknownOpcode,
                    format!("unknown request opcode 0x{opcode:02x}"),
                );
            }
            Err(e) => {
                // The frame passed its checksum but the body does not match
                // the opcode's shape — a client bug, not lost framing.
                return self.send_error(request_id, ErrorCode::MalformedBody, e.to_string());
            }
        };
        self.stats.request(request.opcode());
        match request {
            Request::Prepare { text } => self.on_prepare(request_id, &text),
            Request::Execute {
                handle,
                params,
                chunk_rows,
            } => self.on_execute(request_id, handle, &params, chunk_rows),
            Request::ExecuteValue { handle, params } => {
                self.on_execute_value(request_id, handle, &params)
            }
            Request::Query { text, chunk_rows } => self.on_query(request_id, &text, chunk_rows),
            Request::NextChunk { stream_id } => self.on_next_chunk(request_id, stream_id),
            Request::CancelStream { stream_id } => {
                self.streams.remove(&stream_id);
                self.send(
                    request_id,
                    &Response::Chunk {
                        rows: Vec::new(),
                        done: true,
                    },
                )
            }
            Request::Subscribe { handle, params } => self.on_subscribe(request_id, handle, &params),
            Request::Unsubscribe { sub_id } => {
                if self.subs.remove(&sub_id).is_some() {
                    self.send(request_id, &Response::Unsubscribed)
                } else {
                    self.send_error(
                        request_id,
                        ErrorCode::BadSubscription,
                        format!("no live subscription {sub_id}"),
                    )
                }
            }
            Request::Insert {
                source,
                table,
                rows,
            } => self.on_insert(request_id, &source, &table, rows),
            Request::Checkpoint => self.on_checkpoint(request_id),
            Request::Stats => self.on_stats(request_id),
            Request::Close => {
                self.send(request_id, &Response::Closed);
                false
            }
        }
    }

    fn on_prepare(&mut self, request_id: u64, text: &str) -> bool {
        let prepared = {
            let ds = self.read_ds();
            match ds.prepare(text) {
                Ok(q) => Ok(q.param_names().map(str::to_string).collect::<Vec<_>>()),
                Err(e) => Err(e),
            }
        };
        match prepared {
            Ok(param_names) => {
                let handle = self.next_handle;
                self.next_handle += 1;
                self.handles.insert(handle, text.to_string());
                self.send(
                    request_id,
                    &Response::Prepared {
                        handle,
                        param_names,
                    },
                )
            }
            Err(e) => self.send_core_error(request_id, &e),
        }
    }

    /// Run a bag-producing execution and open a stream over its rows.
    fn run_bag(&mut self, request_id: u64, text: &str, params: &Params, chunk_rows: u32) -> bool {
        if self.streams.len() + self.subs.len() >= self.config.max_session_handles {
            self.stats.busy_rejection();
            return self.send_error(
                request_id,
                ErrorCode::ServerBusy,
                format!(
                    "session holds {} open streams/subscriptions (limit {})",
                    self.streams.len() + self.subs.len(),
                    self.config.max_session_handles
                ),
            );
        }
        if !self.permits.acquire(self.config.request_timeout) {
            self.stats.timeout();
            return self.send_error(
                request_id,
                ErrorCode::Timeout,
                format!("no execution slot within {:?}", self.config.request_timeout),
            );
        }
        let outcome: Result<(Bag, Vec<relational::Snapshot>), CoreError> = {
            let ds = self.read_ds();
            let pins = ds.pin_snapshots();
            ds.prepare(text)
                .and_then(|q| q.execute(params))
                .map(|bag| (bag, pins))
        };
        self.permits.release();
        match outcome {
            Ok((bag, pins)) => self.open_stream(request_id, bag.into_items(), chunk_rows, pins),
            Err(e) => self.send_core_error(request_id, &e),
        }
    }

    fn on_execute(
        &mut self,
        request_id: u64,
        handle: u64,
        params: &Params,
        chunk_rows: u32,
    ) -> bool {
        let Some(text) = self.handles.get(&handle).cloned() else {
            return self.send_error(
                request_id,
                ErrorCode::BadHandle,
                format!("no prepared handle {handle}"),
            );
        };
        self.run_bag(request_id, &text, params, chunk_rows)
    }

    fn on_query(&mut self, request_id: u64, text: &str, chunk_rows: u32) -> bool {
        self.run_bag(request_id, text, &Params::new(), chunk_rows)
    }

    fn on_execute_value(&mut self, request_id: u64, handle: u64, params: &Params) -> bool {
        let Some(text) = self.handles.get(&handle).cloned() else {
            return self.send_error(
                request_id,
                ErrorCode::BadHandle,
                format!("no prepared handle {handle}"),
            );
        };
        if !self.permits.acquire(self.config.request_timeout) {
            self.stats.timeout();
            return self.send_error(
                request_id,
                ErrorCode::Timeout,
                format!("no execution slot within {:?}", self.config.request_timeout),
            );
        }
        let outcome = {
            let ds = self.read_ds();
            ds.prepare(&text).and_then(|q| q.execute_value(params))
        };
        self.permits.release();
        match outcome {
            Ok(value) => self.send(request_id, &Response::ValueResult { value }),
            Err(e) => self.send_core_error(request_id, &e),
        }
    }

    /// Send the first chunk; park the rest as a stream if anything remains.
    fn open_stream(
        &mut self,
        request_id: u64,
        rows: Vec<Value>,
        chunk_rows: u32,
        pins: Vec<relational::Snapshot>,
    ) -> bool {
        let chunk = if chunk_rows == 0 {
            self.config.default_chunk_rows
        } else {
            (chunk_rows as usize).min(self.config.max_chunk_rows)
        }
        .max(1);
        if rows.len() <= chunk {
            self.stats.chunk_sent();
            return self.send(request_id, &Response::Chunk { rows, done: true });
        }
        let first: Vec<Value> = rows[..chunk].to_vec();
        self.streams.insert(
            request_id,
            StreamState {
                rows,
                cursor: chunk,
                chunk_rows: chunk,
                _pins: pins,
            },
        );
        self.stats.stream_opened();
        self.stats.chunk_sent();
        self.send(
            request_id,
            &Response::Chunk {
                rows: first,
                done: false,
            },
        )
    }

    fn on_next_chunk(&mut self, request_id: u64, stream_id: u64) -> bool {
        let Some(state) = self.streams.get_mut(&stream_id) else {
            return self.send_error(
                request_id,
                ErrorCode::BadStream,
                format!("no open stream {stream_id}"),
            );
        };
        let end = (state.cursor + state.chunk_rows).min(state.rows.len());
        let rows: Vec<Value> = state.rows[state.cursor..end].to_vec();
        state.cursor = end;
        let done = end == state.rows.len();
        if done {
            self.streams.remove(&stream_id);
        }
        self.stats.chunk_sent();
        self.send(request_id, &Response::Chunk { rows, done })
    }

    fn on_subscribe(&mut self, request_id: u64, handle: u64, params: &Params) -> bool {
        let Some(text) = self.handles.get(&handle).cloned() else {
            return self.send_error(
                request_id,
                ErrorCode::BadHandle,
                format!("no prepared handle {handle}"),
            );
        };
        if self.streams.len() + self.subs.len() >= self.config.max_session_handles {
            self.stats.busy_rejection();
            return self.send_error(
                request_id,
                ErrorCode::ServerBusy,
                format!(
                    "session holds {} open streams/subscriptions (limit {})",
                    self.streams.len() + self.subs.len(),
                    self.config.max_session_handles
                ),
            );
        }
        let outcome = {
            let ds = self.read_ds();
            ds.prepare(&text).and_then(|q| q.subscribe(params))
        };
        match outcome {
            Ok(subscription) => {
                let sub_id = self.next_sub;
                self.next_sub += 1;
                let initial = subscription.result();
                self.subs.insert(sub_id, SubEntry { subscription });
                self.stats.subscription_opened();
                self.send(request_id, &Response::Subscribed { sub_id, initial })
            }
            Err(e) => self.send_core_error(request_id, &e),
        }
    }

    fn on_insert(
        &mut self,
        request_id: u64,
        source: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> bool {
        if !self.permits.acquire(self.config.request_timeout) {
            self.stats.timeout();
            return self.send_error(
                request_id,
                ErrorCode::Timeout,
                format!("no execution slot within {:?}", self.config.request_timeout),
            );
        }
        let count = rows.len() as u64;
        let outcome = self.write_ds().insert_many(source, table, rows);
        self.permits.release();
        match outcome {
            Ok(()) => self.send(request_id, &Response::Inserted { rows: count }),
            Err(e) => self.send_core_error(request_id, &e),
        }
    }

    fn on_checkpoint(&mut self, request_id: u64) -> bool {
        if !self.permits.acquire(self.config.request_timeout) {
            self.stats.timeout();
            return self.send_error(
                request_id,
                ErrorCode::Timeout,
                format!("no execution slot within {:?}", self.config.request_timeout),
            );
        }
        let outcome = self.write_ds().checkpoint();
        self.permits.release();
        match outcome {
            Ok(report) => self.send(
                request_id,
                &Response::CheckpointDone {
                    records_before: report.records_before as u64,
                    records_after: report.records_after as u64,
                },
            ),
            Err(e) => self.send_core_error(request_id, &e),
        }
    }

    fn on_stats(&mut self, request_id: u64) -> bool {
        let ds_stats = self.read_ds().stats();
        let mut counters = self.stats.snapshot();
        counters.extend(dataspace_counters(&ds_stats));
        self.send(request_id, &Response::StatsResult { counters })
    }

    fn read_ds(&self) -> std::sync::RwLockReadGuard<'_, Dataspace> {
        self.dataspace
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write_ds(&self) -> std::sync::RwLockWriteGuard<'_, Dataspace> {
        self.dataspace
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Write one response frame; `false` means the client is unreachable.
    fn send(&mut self, request_id: u64, response: &Response) -> bool {
        let body = response.encode_body();
        match write_frame(&mut self.stream, request_id, response.opcode() as u8, &body) {
            Ok(n) => {
                self.stats.add_bytes_out(n);
                if matches!(response, Response::Error { .. }) {
                    self.stats.error_sent();
                }
                self.stream.flush().is_ok()
            }
            Err(_) => false,
        }
    }

    fn send_error(&mut self, request_id: u64, code: ErrorCode, message: String) -> bool {
        self.send(request_id, &Response::Error { code, message })
    }

    fn send_core_error(&mut self, request_id: u64, e: &CoreError) -> bool {
        let code = match e {
            CoreError::Parse(_) => ErrorCode::Parse,
            CoreError::UnboundParam(_) => ErrorCode::UnboundParam,
            CoreError::UnknownParam(_) => ErrorCode::UnknownParam,
            CoreError::Storage(_) => ErrorCode::Storage,
            CoreError::Relational(_) => ErrorCode::Rejected,
            CoreError::Automed(_)
            | CoreError::Query(_)
            | CoreError::InvalidSpec(_)
            | CoreError::WorkflowOrder(_) => ErrorCode::Query,
        };
        self.send_error(request_id, code, e.to_string())
    }
}

/// Flatten the dataspace's stats snapshot into `ds_`-prefixed counters.
fn dataspace_counters(s: &DataspaceStats) -> Vec<(String, u64)> {
    vec![
        ("ds_plan_cache_hits".into(), s.plan_cache_hits),
        ("ds_plan_cache_misses".into(), s.plan_cache_misses),
        ("ds_plan_cache_evictions".into(), s.plan_cache_evictions),
        ("ds_plan_cache_len".into(), s.plan_cache_len as u64),
        ("ds_plan_reopts".into(), s.plan_reopts),
        ("ds_index_hits".into(), s.index_hits),
        ("ds_index_misses".into(), s.index_misses),
        ("ds_index_builds".into(), s.index_builds),
        ("ds_index_evictions".into(), s.index_evictions),
        ("ds_extent_memo_len".into(), s.extent_memo_len as u64),
        ("ds_extent_memo_evictions".into(), s.extent_memo_evictions),
        ("ds_parse_memo_len".into(), s.parse_memo_len as u64),
        ("ds_subscriptions".into(), s.subscriptions as u64),
        ("ds_delta_evals".into(), s.delta_evals),
        ("ds_fallback_reexecs".into(), s.fallback_reexecs),
        ("ds_columnar_execs".into(), s.columnar_execs),
        ("ds_row_fallbacks".into(), s.row_fallbacks),
        ("ds_snapshots_active".into(), s.snapshots_active as u64),
        ("ds_wal_appends".into(), s.wal_appends),
        ("ds_recovery_replays".into(), s.recovery_replays),
    ]
}
