//! The listener: accepts connections, enforces the connection cap, and runs
//! one session thread per client (plain `std::net` blocking I/O — the session
//! count is bounded, so threads are the worker pool).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dataspace_core::dataspace::Dataspace;
use wire::frame::SERVER_ORIGIN_ID;
use wire::proto::{ErrorCode, RespOp, Response};

use crate::session::run_session;
use crate::stats::ServerStats;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections admitted concurrently; excess connections get a
    /// [`ErrorCode::ServerBusy`] error frame and are closed.
    pub max_connections: usize,
    /// Query/write executions allowed to run concurrently across all
    /// sessions (the worker-pool bound on engine work).
    pub exec_permits: usize,
    /// How long a request may wait for an execution permit before it is
    /// answered with [`ErrorCode::Timeout`].
    pub request_timeout: Duration,
    /// Open streams + subscriptions one session may hold; the next open is
    /// answered with [`ErrorCode::ServerBusy`].
    pub max_session_handles: usize,
    /// Rows per result chunk when the client asks for the default (0).
    pub default_chunk_rows: usize,
    /// Hard ceiling on rows per chunk regardless of what the client asks.
    pub max_chunk_rows: usize,
    /// Socket read timeout for session polling — the cadence at which a
    /// session checks for shutdown and drains subscription pushes while the
    /// client is quiet.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            exec_permits: 8,
            request_timeout: Duration::from_secs(10),
            max_session_handles: 64,
            default_chunk_rows: 256,
            max_chunk_rows: 16_384,
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// A counting semaphore with deadline acquisition — the execution worker pool.
#[derive(Debug)]
pub(crate) struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    pub(crate) fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            freed: Condvar::new(),
        }
    }

    /// Take a permit, waiting at most `timeout`; `false` means the deadline
    /// passed with every permit still busy.
    pub(crate) fn acquire(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut free = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if *free > 0 {
                *free -= 1;
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(free, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            free = guard;
        }
    }

    pub(crate) fn release(&self) {
        *self.permits.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        self.freed.notify_one();
    }
}

/// Start a server on `addr` (use port 0 for an OS-assigned port) serving the
/// given dataspace. Returns once the listener is bound; connections are
/// accepted on a background thread until [`ServerHandle::shutdown`].
pub fn serve(
    dataspace: Arc<RwLock<Dataspace>>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let permits = Arc::new(Semaphore::new(config.exec_permits));
    let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let sessions = Arc::clone(&sessions);
        std::thread::spawn(move || {
            accept_loop(
                listener, dataspace, stats, config, shutdown, permits, sessions,
            )
        })
    };

    Ok(ServerHandle {
        local_addr,
        stats,
        shutdown,
        acceptor: Some(acceptor),
        sessions,
    })
}

/// Control handle for a running server.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's live counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, tell live sessions to finish (each
    /// sends a [`ErrorCode::ShuttingDown`] frame and tears down, dropping its
    /// subscriptions and streams), and join every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<_> =
            std::mem::take(&mut *self.sessions.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a throwaway connect.
        let _ = TcpStream::connect(self.local_addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.begin_shutdown();
            if let Some(acceptor) = self.acceptor.take() {
                let _ = acceptor.join();
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    dataspace: Arc<RwLock<Dataspace>>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    permits: Arc<Semaphore>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        // Reap finished session threads so the handle list doesn't grow
        // unboundedly on long-lived servers.
        {
            let mut live = sessions.lock().unwrap_or_else(PoisonError::into_inner);
            live.retain(|h| !h.is_finished());
        }
        if stats.connections_open() >= config.max_connections as u64 {
            stats.connection_rejected();
            reject(stream, &stats, "connection limit reached");
            continue;
        }
        stats.connection_accepted();
        let dataspace = Arc::clone(&dataspace);
        let session_stats = Arc::clone(&stats);
        let session_config = config.clone();
        let session_shutdown = Arc::clone(&shutdown);
        let session_permits = Arc::clone(&permits);
        let handle = std::thread::spawn(move || {
            let guard_stats = Arc::clone(&session_stats);
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
                run_session(
                    stream,
                    dataspace,
                    session_stats,
                    session_config,
                    session_shutdown,
                    session_permits,
                );
            }));
            if outcome.is_err() {
                guard_stats.session_panic();
            }
            guard_stats.connection_closed();
        });
        sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
}

/// Turn a connection away with a pre-session `ServerBusy` error frame.
fn reject(mut stream: TcpStream, stats: &ServerStats, detail: &str) {
    let response = Response::Error {
        code: ErrorCode::ServerBusy,
        message: detail.to_string(),
    };
    let body = response.encode_body();
    if let Ok(n) =
        wire::frame::write_frame(&mut stream, SERVER_ORIGIN_ID, RespOp::Error as u8, &body)
    {
        stats.add_bytes_out(n);
        stats.error_sent();
    }
    let _ = stream.flush();
}
