//! Lock-free server counters, surfaced to clients through the `Stats` opcode
//! alongside the dataspace's own [`dataspace_core::dataspace::DataspaceStats`].

use std::sync::atomic::{AtomicU64, Ordering};

use wire::proto::ReqOp;

/// Cumulative counters for one server instance. All counters are monotonic
/// except [`ServerStats::connections_open`], which is a gauge.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections_accepted: AtomicU64,
    /// Connections turned away at the door (`max_connections`).
    connections_rejected: AtomicU64,
    connections_open: AtomicU64,
    /// Requests dispatched, by opcode (indexed in [`ReqOp::ALL`] order).
    requests: [AtomicU64; ReqOp::ALL.len()],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Typed error frames written (all codes, including admission).
    errors_sent: AtomicU64,
    /// Requests answered `ServerBusy` (per-session stream/subscription caps).
    busy_rejections: AtomicU64,
    /// Requests answered `Timeout` (no execution permit within the deadline).
    timeouts: AtomicU64,
    chunks_sent: AtomicU64,
    pushes_sent: AtomicU64,
    streams_opened: AtomicU64,
    subscriptions_opened: AtomicU64,
    /// Frame-layer failures that tore a session down (checksum, oversize,
    /// version, mid-frame disconnects).
    frame_errors: AtomicU64,
    /// Session threads that panicked (caught; the connection just drops).
    session_panics: AtomicU64,
}

impl ServerStats {
    pub fn new() -> Self {
        ServerStats::default()
    }

    pub(crate) fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn request(&self, op: ReqOp) {
        let idx = ReqOp::ALL.iter().position(|o| *o == op).expect("known op");
        self.requests[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn error_sent(&self) {
        self.errors_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn chunk_sent(&self) {
        self.chunks_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn push_sent(&self) {
        self.pushes_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stream_opened(&self) {
        self.streams_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn subscription_opened(&self) {
        self.subscriptions_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn frame_error(&self) {
        self.frame_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_panic(&self) {
        self.session_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections turned away by admission control so far.
    pub fn connections_rejected(&self) -> u64 {
        self.connections_rejected.load(Ordering::Relaxed)
    }

    /// Requests answered with `ServerBusy`.
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.load(Ordering::Relaxed)
    }

    /// Requests answered with `Timeout`.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Session threads that panicked.
    pub fn session_panics(&self) -> u64 {
        self.session_panics.load(Ordering::Relaxed)
    }

    /// Subscription pushes written to clients.
    pub fn pushes_sent(&self) -> u64 {
        self.pushes_sent.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Flat `name → value` snapshot, `server_`-prefixed, wire-ready.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            (
                "server_connections_accepted".to_string(),
                self.connections_accepted.load(Ordering::Relaxed),
            ),
            (
                "server_connections_rejected".to_string(),
                self.connections_rejected.load(Ordering::Relaxed),
            ),
            (
                "server_connections_open".to_string(),
                self.connections_open.load(Ordering::Relaxed),
            ),
            (
                "server_bytes_in".to_string(),
                self.bytes_in.load(Ordering::Relaxed),
            ),
            (
                "server_bytes_out".to_string(),
                self.bytes_out.load(Ordering::Relaxed),
            ),
            (
                "server_errors_sent".to_string(),
                self.errors_sent.load(Ordering::Relaxed),
            ),
            (
                "server_busy_rejections".to_string(),
                self.busy_rejections.load(Ordering::Relaxed),
            ),
            (
                "server_timeouts".to_string(),
                self.timeouts.load(Ordering::Relaxed),
            ),
            (
                "server_chunks_sent".to_string(),
                self.chunks_sent.load(Ordering::Relaxed),
            ),
            (
                "server_pushes_sent".to_string(),
                self.pushes_sent.load(Ordering::Relaxed),
            ),
            (
                "server_streams_opened".to_string(),
                self.streams_opened.load(Ordering::Relaxed),
            ),
            (
                "server_subscriptions_opened".to_string(),
                self.subscriptions_opened.load(Ordering::Relaxed),
            ),
            (
                "server_frame_errors".to_string(),
                self.frame_errors.load(Ordering::Relaxed),
            ),
            (
                "server_session_panics".to_string(),
                self.session_panics.load(Ordering::Relaxed),
            ),
        ];
        for (idx, op) in ReqOp::ALL.iter().enumerate() {
            out.push((
                format!("server_requests_{}", op.name()),
                self.requests[idx].load(Ordering::Relaxed),
            ));
        }
        out
    }
}
