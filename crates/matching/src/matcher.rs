//! The combined schema matcher.

use crate::instance::ExtentProfile;
use crate::name::name_similarity;
use automed::wrapper::SourceRegistry;
use automed::Schema;
use iql::ast::SchemeRef;
use serde::Serialize;

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Minimum combined score for a suggestion to be reported.
    pub threshold: f64,
    /// Weight of the name-based score (the instance-based score gets `1 - weight` when
    /// instance evidence is available).
    pub name_weight: f64,
    /// Maximum number of extent tuples sampled per object for instance matching.
    pub sample_limit: usize,
    /// Only suggest correspondences between objects of the same construct kind.
    pub same_construct_only: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            threshold: 0.55,
            name_weight: 0.6,
            sample_limit: 200,
            same_construct_only: true,
        }
    }
}

/// A suggested correspondence between an object of the left schema and an object of
/// the right schema.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MatchSuggestion {
    /// Scheme in the left schema.
    pub left: SchemeRef,
    /// Scheme in the right schema.
    pub right: SchemeRef,
    /// Name-based similarity component.
    pub name_score: f64,
    /// Instance-based similarity component (`None` when no extents were available).
    pub instance_score: Option<f64>,
    /// The combined score used for ranking and thresholding.
    pub combined: f64,
}

/// Precision/recall of a suggestion list against a ground-truth set of pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MatchQuality {
    /// Fraction of suggestions that are correct.
    pub precision: f64,
    /// Fraction of ground-truth correspondences that were suggested.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// The schema matcher: scores all object pairs of two schemas.
#[derive(Debug, Clone, Default)]
pub struct Matcher {
    config: MatchConfig,
}

impl Matcher {
    /// A matcher with the default configuration.
    pub fn new() -> Self {
        Matcher {
            config: MatchConfig::default(),
        }
    }

    /// A matcher with a custom configuration.
    pub fn with_config(config: MatchConfig) -> Self {
        Matcher { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// Suggest correspondences using names only.
    pub fn match_names(&self, left: &Schema, right: &Schema) -> Vec<MatchSuggestion> {
        self.match_internal(left, right, None)
    }

    /// Suggest correspondences using names and instance evidence sampled from the
    /// registered sources (the source for each schema is looked up by the schema's
    /// name).
    pub fn match_with_instances(
        &self,
        left: &Schema,
        right: &Schema,
        registry: &SourceRegistry,
    ) -> Vec<MatchSuggestion> {
        self.match_internal(left, right, Some(registry))
    }

    fn match_internal(
        &self,
        left: &Schema,
        right: &Schema,
        registry: Option<&SourceRegistry>,
    ) -> Vec<MatchSuggestion> {
        let mut suggestions = Vec::new();
        for lo in left.objects() {
            for ro in right.objects() {
                if self.config.same_construct_only && lo.construct != ro.construct {
                    continue;
                }
                let name_score =
                    name_similarity(&display_name(&lo.scheme), &display_name(&ro.scheme));
                let instance_score = registry.and_then(|reg| {
                    let lbag = reg.extent(&left.name, &lo.scheme).ok()?;
                    let rbag = reg.extent(&right.name, &ro.scheme).ok()?;
                    let lp = ExtentProfile::from_bag(&lbag, self.config.sample_limit);
                    let rp = ExtentProfile::from_bag(&rbag, self.config.sample_limit);
                    Some(lp.similarity(&rp))
                });
                let combined = match instance_score {
                    Some(inst) => {
                        self.config.name_weight * name_score
                            + (1.0 - self.config.name_weight) * inst
                    }
                    None => name_score,
                };
                if combined >= self.config.threshold {
                    suggestions.push(MatchSuggestion {
                        left: lo.scheme.clone(),
                        right: ro.scheme.clone(),
                        name_score,
                        instance_score,
                        combined,
                    });
                }
            }
        }
        suggestions.sort_by(|a, b| {
            b.combined
                .partial_cmp(&a.combined)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.left.key().cmp(&b.left.key()))
                .then_with(|| a.right.key().cmp(&b.right.key()))
        });
        suggestions
    }

    /// Keep only the best suggestion for each left-hand object (a simple stable
    /// one-to-one filter).
    pub fn best_per_left(suggestions: &[MatchSuggestion]) -> Vec<MatchSuggestion> {
        let mut seen_left = std::collections::BTreeSet::new();
        let mut seen_right = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for s in suggestions {
            if seen_left.contains(&s.left.key()) || seen_right.contains(&s.right.key()) {
                continue;
            }
            seen_left.insert(s.left.key());
            seen_right.insert(s.right.key());
            out.push(s.clone());
        }
        out
    }

    /// Evaluate suggestions against a ground truth of `(left, right)` scheme pairs.
    pub fn evaluate(
        suggestions: &[MatchSuggestion],
        ground_truth: &[(SchemeRef, SchemeRef)],
    ) -> MatchQuality {
        let truth: std::collections::BTreeSet<(String, String)> = ground_truth
            .iter()
            .map(|(l, r)| (l.key(), r.key()))
            .collect();
        let proposed: std::collections::BTreeSet<(String, String)> = suggestions
            .iter()
            .map(|s| (s.left.key(), s.right.key()))
            .collect();
        let correct = proposed.intersection(&truth).count() as f64;
        let precision = if proposed.is_empty() {
            0.0
        } else {
            correct / proposed.len() as f64
        };
        let recall = if truth.is_empty() {
            0.0
        } else {
            correct / truth.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        MatchQuality {
            precision,
            recall,
            f1,
        }
    }
}

/// Human-facing name of a scheme used for name matching: the last part for columns
/// (the column name), the only part for tables, with the parent appended for context.
fn display_name(scheme: &SchemeRef) -> String {
    scheme.parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use automed::SchemaObject;

    fn pedro() -> Schema {
        Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
                SchemaObject::column("protein", "organism"),
                SchemaObject::table("peptidehit"),
                SchemaObject::column("peptidehit", "sequence"),
                SchemaObject::column("peptidehit", "score"),
            ],
        )
        .unwrap()
    }

    fn pepseeker() -> Schema {
        Schema::from_objects(
            "pepseeker",
            [
                SchemaObject::table("proteinhit"),
                SchemaObject::column("proteinhit", "proteinid"),
                SchemaObject::table("peptidehit"),
                SchemaObject::column("peptidehit", "pepseq"),
                SchemaObject::column("peptidehit", "score"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn name_matching_finds_expected_correspondences() {
        let m = Matcher::new();
        let suggestions = m.match_names(&pedro(), &pepseeker());
        assert!(!suggestions.is_empty());
        let has = |l: &SchemeRef, r: &SchemeRef| {
            suggestions.iter().any(|s| &s.left == l && &s.right == r)
        };
        assert!(has(
            &SchemeRef::table("peptidehit"),
            &SchemeRef::table("peptidehit")
        ));
        assert!(has(
            &SchemeRef::column("peptidehit", "score"),
            &SchemeRef::column("peptidehit", "score")
        ));
        // The synonym table bridges sequence ↔ pepseq.
        assert!(has(
            &SchemeRef::column("peptidehit", "sequence"),
            &SchemeRef::column("peptidehit", "pepseq")
        ));
    }

    #[test]
    fn suggestions_are_ranked_by_score() {
        let m = Matcher::new();
        let suggestions = m.match_names(&pedro(), &pepseeker());
        for pair in suggestions.windows(2) {
            assert!(pair[0].combined >= pair[1].combined);
        }
    }

    #[test]
    fn construct_kinds_are_not_mixed_by_default() {
        let m = Matcher::new();
        let suggestions = m.match_names(&pedro(), &pepseeker());
        assert!(suggestions
            .iter()
            .all(|s| (s.left.parts.len() == 1) == (s.right.parts.len() == 1)));
    }

    #[test]
    fn best_per_left_is_one_to_one() {
        let m = Matcher::new();
        let all = m.match_names(&pedro(), &pepseeker());
        let best = Matcher::best_per_left(&all);
        let lefts: std::collections::BTreeSet<String> = best.iter().map(|s| s.left.key()).collect();
        let rights: std::collections::BTreeSet<String> =
            best.iter().map(|s| s.right.key()).collect();
        assert_eq!(lefts.len(), best.len());
        assert_eq!(rights.len(), best.len());
    }

    #[test]
    fn evaluation_against_ground_truth() {
        let m = Matcher::new();
        let all = m.match_names(&pedro(), &pepseeker());
        let best = Matcher::best_per_left(&all);
        let truth = vec![
            (
                SchemeRef::table("peptidehit"),
                SchemeRef::table("peptidehit"),
            ),
            (
                SchemeRef::column("peptidehit", "sequence"),
                SchemeRef::column("peptidehit", "pepseq"),
            ),
            (
                SchemeRef::column("peptidehit", "score"),
                SchemeRef::column("peptidehit", "score"),
            ),
            (SchemeRef::table("protein"), SchemeRef::table("proteinhit")),
        ];
        let q = Matcher::evaluate(&best, &truth);
        assert!(q.recall >= 0.5, "recall {}", q.recall);
        assert!(q.precision > 0.0);
        assert!(q.f1 > 0.0);
    }

    #[test]
    fn threshold_controls_suggestion_volume() {
        let strict = Matcher::with_config(MatchConfig {
            threshold: 0.95,
            ..MatchConfig::default()
        });
        let lax = Matcher::with_config(MatchConfig {
            threshold: 0.3,
            ..MatchConfig::default()
        });
        let s = strict.match_names(&pedro(), &pepseeker());
        let l = lax.match_names(&pedro(), &pepseeker());
        assert!(s.len() < l.len());
    }
}
