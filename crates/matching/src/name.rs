//! Name-based similarity between schema object names.

use std::collections::BTreeSet;

/// Normalised Levenshtein similarity in `[0, 1]`: `1 - distance / max_len`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let dist = levenshtein(&a, &b) as f64;
    let max_len = a.chars().count().max(b.chars().count()) as f64;
    1.0 - dist / max_len
}

/// Classic dynamic-programming Levenshtein edit distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Split an identifier into lowercase tokens at `_`, `-`, whitespace and camelCase
/// boundaries.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c == '_' || c == '-' || c == ' ' || c == '.' {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            prev_lower = false;
        } else if c.is_uppercase() && prev_lower {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            current.push(c.to_ascii_lowercase());
            prev_lower = false;
        } else {
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
            current.push(c.to_ascii_lowercase());
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Jaccard similarity of the token sets of two identifiers, with synonym expansion.
pub fn token_similarity(a: &str, b: &str) -> f64 {
    let ta: BTreeSet<String> = tokenize(a).into_iter().map(canonical_token).collect();
    let tb: BTreeSet<String> = tokenize(b).into_iter().map(canonical_token).collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Map a token to a canonical representative of its synonym group.
///
/// The table covers the identifier vocabulary of the case-study schemas (Pedro, gpmDB,
/// PepSeeker) plus generic relational naming conventions; it is intentionally small
/// and transparent rather than a full thesaurus.
pub fn canonical_token(token: String) -> String {
    match token.as_str() {
        // identifiers / keys
        "id" | "identifier" | "key" | "pk" => "id".into(),
        // protein accession naming across the three proteomics sources
        "accession" | "acc" | "label" => "accession".into(),
        "num" | "number" | "no" => "num".into(),
        // sequences
        "seq" | "sequence" | "pepseq" => "sequence".into(),
        // proteins / protein sequence records
        "protein" | "proseq" | "prot" => "protein".into(),
        // peptides
        "peptide" | "pep" => "peptide".into(),
        // scores / expectation values
        "score" | "ionscore" => "score".into(),
        "expect" | "expectation" | "probability" | "prob" | "evalue" => "probability".into(),
        // database search runs
        "db" | "database" => "db".into(),
        "search" | "fileparameters" | "dbsearch" => "search".into(),
        "hit" | "hits" | "identification" => "hit".into(),
        "organism" | "species" | "taxon" => "organism".into(),
        "description" | "desc" | "title" => "description".into(),
        other => other.to_string(),
    }
}

/// Whether one identifier (case-insensitively) contains the other as a substring.
pub fn containment(a: &str, b: &str) -> bool {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    a.contains(&b) || b.contains(&a)
}

/// The combined name similarity used by the matcher: the maximum of edit-distance and
/// token similarity, boosted slightly by containment.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let base = levenshtein_similarity(a, b).max(token_similarity(a, b));
    let boosted = if containment(a, b) { base + 0.1 } else { base };
    boosted.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!(levenshtein_similarity("protein", "protien") > 0.7);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
    }

    #[test]
    fn tokenisation_handles_snake_and_camel_case() {
        assert_eq!(tokenize("accession_num"), vec!["accession", "num"]);
        assert_eq!(tokenize("ProteinID"), vec!["protein", "id"]);
        assert_eq!(tokenize("db search"), vec!["db", "search"]);
        assert_eq!(tokenize("pepSeq"), vec!["pep", "seq"]);
    }

    #[test]
    fn synonyms_bridge_source_vocabularies() {
        // Pedro's accession_num vs gpmDB's label.
        assert!(token_similarity("accession_num", "label") > 0.0);
        // Pedro's sequence vs PepSeeker's pepseq.
        assert!(token_similarity("sequence", "pepseq") > 0.9);
        // db_search vs fileparameters.
        assert!(token_similarity("db_search", "fileparameters") > 0.0);
        // expect vs probability.
        assert!(token_similarity("expect", "probability") > 0.9);
    }

    #[test]
    fn name_similarity_orders_plausible_matches_first() {
        let s_same = name_similarity("proteinhit", "proteinhit");
        let s_close = name_similarity("proteinhit", "protein");
        let s_far = name_similarity("protein", "fileparameters");
        assert!(s_same > s_close);
        assert!(s_close > s_far);
        assert!(s_same <= 1.0);
    }

    #[test]
    fn containment_boost() {
        assert!(containment("proteinhit", "protein"));
        assert!(!containment("peptide", "organism"));
        assert!(
            name_similarity("proteinhit", "protein")
                > levenshtein_similarity("proteinhit", "protein")
        );
    }
}
