//! # matching — schema matching suggestions
//!
//! A reimplementation of the role the Schema Matching Tool plays in the paper's
//! workflow (step 4 of §2.3): given two schemas, *suggest* correspondences between
//! their objects so that the integrator can turn accepted suggestions into intersection
//! mappings. Matching combines:
//!
//! * [`name`] — name-based similarity (normalised edit distance, token overlap,
//!   substring containment, and a small synonym table covering the proteomics domain
//!   vocabulary used in the case study);
//! * [`instance`] — instance-based similarity (overlap of sampled extents and value
//!   type compatibility), available when the sources are registered and extents can be
//!   sampled;
//! * [`matcher`] — the combined scorer producing ranked [`matcher::MatchSuggestion`]s
//!   and precision/recall evaluation against a ground truth.

pub mod instance;
pub mod matcher;
pub mod name;

pub use matcher::{MatchConfig, MatchSuggestion, Matcher};
