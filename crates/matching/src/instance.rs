//! Instance-based similarity between schema objects.
//!
//! When the extents of two schema objects can be sampled (the sources are wrapped and
//! registered), overlap between the sampled value sets is strong evidence of a
//! semantic correspondence — this is what makes `⟨⟨protein, accession_num⟩⟩` (Pedro)
//! and `⟨⟨proseq, label⟩⟩` (gpmDB) matchable even though their names share little.

use iql::value::{Bag, Value};
use std::collections::BTreeSet;

/// A compact profile of an extent sample used for instance-based comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtentProfile {
    /// Distinct scalar values observed (column extents contribute their value
    /// component, table extents their keys).
    pub values: BTreeSet<String>,
    /// Fraction of sampled values that parse as numbers.
    pub numeric_fraction: f64,
    /// Mean string length of the sampled values.
    pub mean_length: f64,
    /// Number of tuples sampled.
    pub sample_size: usize,
}

impl ExtentProfile {
    /// Profile a bag following the wrapper conventions: `{key, value}` pairs
    /// contribute their second component, scalars contribute themselves.
    pub fn from_bag(bag: &Bag, sample_limit: usize) -> ExtentProfile {
        let mut values = BTreeSet::new();
        let mut numeric = 0usize;
        let mut total_len = 0usize;
        let mut sampled = 0usize;
        for item in bag.iter().take(sample_limit) {
            let scalar = match item {
                Value::Tuple(parts) if parts.len() >= 2 => &parts[parts.len() - 1],
                other => other,
            };
            let text = match scalar {
                Value::Str(s) => s.to_string(),
                other => other.to_string(),
            };
            if matches!(scalar, Value::Int(_) | Value::Float(_)) || text.parse::<f64>().is_ok() {
                numeric += 1;
            }
            total_len += text.chars().count();
            values.insert(text);
            sampled += 1;
        }
        ExtentProfile {
            values,
            numeric_fraction: if sampled == 0 {
                0.0
            } else {
                numeric as f64 / sampled as f64
            },
            mean_length: if sampled == 0 {
                0.0
            } else {
                total_len as f64 / sampled as f64
            },
            sample_size: sampled,
        }
    }

    /// Jaccard overlap of the distinct value sets.
    pub fn value_overlap(&self, other: &ExtentProfile) -> f64 {
        if self.values.is_empty() && other.values.is_empty() {
            return 0.0;
        }
        let inter = self.values.intersection(&other.values).count() as f64;
        let union = self.values.union(&other.values).count() as f64;
        inter / union
    }

    /// Compatibility of the two profiles' value types and lengths in `[0, 1]`.
    pub fn type_compatibility(&self, other: &ExtentProfile) -> f64 {
        let numeric = 1.0 - (self.numeric_fraction - other.numeric_fraction).abs();
        let max_len = self.mean_length.max(other.mean_length);
        let length = if max_len == 0.0 {
            1.0
        } else {
            1.0 - ((self.mean_length - other.mean_length).abs() / max_len).min(1.0)
        };
        0.5 * numeric + 0.5 * length
    }

    /// The combined instance similarity: value overlap dominates, type compatibility
    /// provides a weak prior when extents do not overlap.
    pub fn similarity(&self, other: &ExtentProfile) -> f64 {
        if self.sample_size == 0 || other.sample_size == 0 {
            return 0.0;
        }
        let overlap = self.value_overlap(other);
        let compat = self.type_compatibility(other);
        (0.75 * overlap + 0.25 * compat).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_bag(pairs: &[(i64, &str)]) -> Bag {
        Bag::from_values(
            pairs
                .iter()
                .map(|(k, v)| Value::pair(Value::Int(*k), Value::str(*v)))
                .collect(),
        )
    }

    #[test]
    fn profiles_use_value_component_of_pairs() {
        let bag = pair_bag(&[(1, "ACC1"), (2, "ACC2")]);
        let p = ExtentProfile::from_bag(&bag, 100);
        assert_eq!(p.sample_size, 2);
        assert!(p.values.contains("ACC1"));
        assert_eq!(p.numeric_fraction, 0.0);
    }

    #[test]
    fn overlapping_extents_score_high() {
        let pedro =
            ExtentProfile::from_bag(&pair_bag(&[(1, "ACC1"), (2, "ACC2"), (3, "ACC3")]), 100);
        let gpmdb =
            ExtentProfile::from_bag(&pair_bag(&[(7, "ACC2"), (8, "ACC3"), (9, "ACC4")]), 100);
        let unrelated =
            ExtentProfile::from_bag(&pair_bag(&[(1, "Homo sapiens"), (2, "Mus musculus")]), 100);
        assert!(pedro.similarity(&gpmdb) > pedro.similarity(&unrelated));
        assert!(pedro.value_overlap(&gpmdb) > 0.3);
        assert_eq!(pedro.value_overlap(&unrelated), 0.0);
    }

    #[test]
    fn type_compatibility_separates_numeric_and_text() {
        let scores = ExtentProfile::from_bag(
            &Bag::from_values(vec![
                Value::pair(Value::Int(1), Value::Float(55.5)),
                Value::pair(Value::Int(2), Value::Float(71.2)),
            ]),
            100,
        );
        let more_scores = ExtentProfile::from_bag(
            &Bag::from_values(vec![Value::pair(Value::Int(3), Value::Float(60.0))]),
            100,
        );
        let text = ExtentProfile::from_bag(
            &pair_bag(&[(1, "Putative kinase 12"), (2, "Probable hydrolase 4")]),
            100,
        );
        assert!(scores.type_compatibility(&more_scores) > scores.type_compatibility(&text));
    }

    #[test]
    fn empty_extent_gives_zero_similarity() {
        let empty = ExtentProfile::from_bag(&Bag::empty(), 100);
        let full = ExtentProfile::from_bag(&pair_bag(&[(1, "x")]), 100);
        assert_eq!(empty.similarity(&full), 0.0);
        assert_eq!(empty.sample_size, 0);
    }

    #[test]
    fn sample_limit_is_respected() {
        let big = Bag::from_values((0..1000).map(Value::Int).collect());
        let p = ExtentProfile::from_bag(&big, 50);
        assert_eq!(p.sample_size, 50);
        assert_eq!(p.numeric_fraction, 1.0);
    }
}
