//! End-to-end query answering over virtual (integrated) schemas.
//!
//! A virtual schema object (an object of a federated, intersection or global schema)
//! has no stored extent: its extent is *defined* by the `add` transformations that
//! introduced it, one contribution per data source (plus possibly contributions
//! derived from other virtual objects). Following the paper, the extent of such an
//! object is the **bag union** of its contributions.
//!
//! [`VirtualExtents`] implements [`ExtentProvider`] on top of a [`SourceRegistry`] and
//! a set of [`Contribution`]s per scheme, so the ordinary IQL [`Evaluator`] can answer
//! any query posed on the integrated schema — this is GAV query processing by
//! unfolding, performed lazily during evaluation. Results are memoised per scheme and
//! recursion is cycle-checked.

use crate::error::AutomedError;
use crate::qp::Contribution;
use crate::wrapper::SourceRegistry;
use iql::ast::{Expr, SchemeRef};
use iql::error::EvalError;
use iql::eval::{Evaluator, ExtentProvider};
use iql::value::{Bag, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The definitions of all virtual schema objects: scheme key → contributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewDefinitions {
    contributions: BTreeMap<String, Vec<Contribution>>,
}

impl ViewDefinitions {
    /// Empty definitions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a contribution for a scheme. Contributions accumulate (bag-union
    /// semantics), in registration order.
    pub fn add_contribution(&mut self, scheme: &SchemeRef, contribution: Contribution) {
        self.contributions
            .entry(scheme.key())
            .or_default()
            .push(contribution);
    }

    /// The contributions registered for a scheme.
    pub fn contributions_for(&self, scheme: &SchemeRef) -> Option<&[Contribution]> {
        self.contributions.get(&scheme.key()).map(Vec::as_slice)
    }

    /// Whether any contribution is registered for the scheme.
    pub fn defines(&self, scheme: &SchemeRef) -> bool {
        self.contributions.contains_key(&scheme.key())
    }

    /// Number of schemes with at least one contribution.
    pub fn defined_scheme_count(&self) -> usize {
        self.contributions.len()
    }

    /// Total number of contributions.
    pub fn contribution_count(&self) -> usize {
        self.contributions.values().map(Vec::len).sum()
    }

    /// Iterate over `(scheme key, contributions)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Contribution])> {
        self.contributions
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Merge another set of definitions into this one.
    pub fn merge(&mut self, other: &ViewDefinitions) {
        for (k, v) in &other.contributions {
            self.contributions
                .entry(k.clone())
                .or_default()
                .extend(v.iter().cloned());
        }
    }
}

/// An [`ExtentProvider`] for integrated schemas: resolves virtual schemes through
/// their contributions and memoises results.
pub struct VirtualExtents<'a> {
    registry: &'a SourceRegistry,
    definitions: &'a ViewDefinitions,
    cache: RefCell<BTreeMap<String, Arc<Bag>>>,
    in_progress: RefCell<BTreeSet<String>>,
    /// When set, schemes with no registered contribution are looked up in this source
    /// (used for federated schemas where untouched source objects remain queryable).
    fallback_sources: Vec<String>,
}

impl<'a> VirtualExtents<'a> {
    /// Create a provider over the given sources and view definitions.
    pub fn new(registry: &'a SourceRegistry, definitions: &'a ViewDefinitions) -> Self {
        VirtualExtents {
            registry,
            definitions,
            cache: RefCell::new(BTreeMap::new()),
            in_progress: RefCell::new(BTreeSet::new()),
            fallback_sources: Vec::new(),
        }
    }

    /// Also resolve schemes with no contribution by probing the named sources in
    /// order (first match wins).
    pub fn with_fallback_sources<I, S>(mut self, sources: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.fallback_sources = sources.into_iter().map(Into::into).collect();
        self
    }

    /// Answer a query posed on the integrated schema.
    pub fn answer(&self, query: &Expr) -> Result<Value, AutomedError> {
        Ok(Evaluator::new(self).eval_closed(query)?)
    }

    /// Answer a query with comprehension planning disabled (naive nested loops).
    /// Reference semantics for tests and the baseline for benchmarks; note that the
    /// extents the contributions themselves are computed with still use the planning
    /// evaluator via [`ExtentProvider`].
    pub fn answer_with_nested_loops(&self, query: &Expr) -> Result<Value, AutomedError> {
        Ok(Evaluator::new(self)
            .with_nested_loops()
            .eval_closed(query)?)
    }

    /// Answer a query and insist on a bag result.
    pub fn answer_bag(&self, query: &Expr) -> Result<Bag, AutomedError> {
        Ok(self.answer(query)?.expect_bag()?)
    }

    fn compute_extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        let Some(contributions) = self.definitions.contributions_for(scheme) else {
            // Fall back to probing the configured sources directly.
            for source in &self.fallback_sources {
                if let Ok(db) = self.registry.database(source) {
                    if let Ok(bag) = db.extent(scheme) {
                        return Ok(bag);
                    }
                }
            }
            return Err(EvalError::UnknownScheme(scheme.clone()));
        };
        let mut result: Vec<Value> = Vec::new();
        for contribution in contributions {
            let value = match &contribution.source {
                Some(source) => {
                    let db = self
                        .registry
                        .database(source)
                        .map_err(|_| EvalError::UnknownScheme(scheme.clone()))?;
                    // Queries over a named source may still reference other virtual
                    // objects (e.g. an intersection object defined partly in terms of
                    // the evolving global schema), so the source is layered over this
                    // provider.
                    let layered = LayeredProvider {
                        primary: db,
                        fallback: self,
                    };
                    Evaluator::new(&layered).eval_closed(&contribution.query)?
                }
                None => Evaluator::new(self).eval_closed(&contribution.query)?,
            };
            match value {
                Value::Void => {}
                other => {
                    let bag = other.expect_bag()?;
                    result.extend(bag.iter().cloned());
                }
            }
        }
        Ok(Arc::new(Bag::from_values(result)))
    }
}

impl ExtentProvider for VirtualExtents<'_> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        let key = scheme.key();
        if let Some(cached) = self.cache.borrow().get(&key) {
            return Ok(Arc::clone(cached));
        }
        if !self.in_progress.borrow_mut().insert(key.clone()) {
            return Err(EvalError::TypeError {
                context: format!("extent of {scheme}"),
                found: "cyclic view definition".into(),
            });
        }
        let result = self.compute_extent(scheme);
        self.in_progress.borrow_mut().remove(&key);
        if let Ok(bag) = &result {
            self.cache.borrow_mut().insert(key, Arc::clone(bag));
        }
        result
    }
}

/// Resolves schemes against a primary provider first, then a fallback.
struct LayeredProvider<'a, P, F> {
    primary: &'a P,
    fallback: &'a F,
}

impl<P: ExtentProvider, F: ExtentProvider> ExtentProvider for LayeredProvider<'_, P, F> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        match self.primary.extent(scheme) {
            Ok(bag) => Ok(bag),
            Err(_) => self.fallback.extent(scheme),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::parse;
    use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    use relational::Database;

    fn pedro() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
        db.insert("protein", vec![2.into(), "ACC2".into()]).unwrap();
        db
    }

    fn gpmdb() -> Database {
        let mut s = RelSchema::new("gpmdb");
        s.add_table(
            RelTable::new("proseq")
                .with_column(RelColumn::new("proseqid", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["proseqid"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("proseq", vec![10.into(), "ACC2".into()]).unwrap();
        db.insert("proseq", vec![11.into(), "ACC3".into()]).unwrap();
        db
    }

    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        r.add_source(pedro()).unwrap();
        r.add_source(gpmdb()).unwrap();
        r
    }

    fn uprotein_definitions() -> ViewDefinitions {
        let mut defs = ViewDefinitions::new();
        let uprotein = SchemeRef::table("UProtein");
        defs.add_contribution(
            &uprotein,
            Contribution::from_source("pedro", parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap()),
        );
        defs.add_contribution(
            &uprotein,
            Contribution::from_source("gpmdb", parse("[{'gpmDB', k} | k <- <<proseq>>]").unwrap()),
        );
        let acc = SchemeRef::column("UProtein", "accession_num");
        defs.add_contribution(
            &acc,
            Contribution::from_source(
                "pedro",
                parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
            ),
        );
        defs.add_contribution(
            &acc,
            Contribution::from_source(
                "gpmdb",
                parse("[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]").unwrap(),
            ),
        );
        // A derived object defined purely over the virtual schema.
        defs.add_contribution(
            &SchemeRef::table("SharedAccession"),
            Contribution::derived(
                parse(
                    "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']",
                )
                .unwrap(),
            ),
        );
        defs
    }

    #[test]
    fn extent_is_bag_union_of_contributions() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let bag = virt.extent(&SchemeRef::table("UProtein")).unwrap();
        assert_eq!(bag.len(), 4); // 2 from pedro + 2 from gpmdb
        assert!(bag.contains(&Value::pair(Value::str("PEDRO"), Value::Int(1))));
        assert!(bag.contains(&Value::pair(Value::str("gpmDB"), Value::Int(11))));
    }

    #[test]
    fn derived_objects_resolve_recursively() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let q = parse("count <<SharedAccession>>").unwrap();
        // ACC2 appears in both sources.
        assert_eq!(virt.answer(&q).unwrap(), Value::Int(1));
    }

    #[test]
    fn queries_over_virtual_schema_answerable() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let q = parse("[x | {s, k, x} <- <<UProtein, accession_num>>; s = 'gpmDB']").unwrap();
        let bag = virt.answer_bag(&q).unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::str("ACC3")));
    }

    #[test]
    fn fallback_sources_expose_untouched_objects() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs).with_fallback_sources(["pedro", "gpmdb"]);
        // ⟨⟨proseq⟩⟩ has no contribution; it is resolved directly from gpmdb.
        let q = parse("count <<proseq>>").unwrap();
        assert_eq!(virt.answer(&q).unwrap(), Value::Int(2));
        // Without fallback it is an unknown scheme.
        let strict = VirtualExtents::new(&reg, &defs);
        assert!(strict.answer(&q).is_err());
    }

    #[test]
    fn results_are_cached_per_scheme() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let q = parse("count <<UProtein>> + count <<UProtein>>").unwrap();
        assert_eq!(virt.answer(&q).unwrap(), Value::Int(8));
        assert!(virt.cache.borrow().contains_key("UProtein"));
    }

    #[test]
    fn cyclic_definitions_are_detected() {
        let reg = registry();
        let mut defs = ViewDefinitions::new();
        defs.add_contribution(
            &SchemeRef::table("A"),
            Contribution::derived(parse("[k | k <- <<B>>]").unwrap()),
        );
        defs.add_contribution(
            &SchemeRef::table("B"),
            Contribution::derived(parse("[k | k <- <<A>>]").unwrap()),
        );
        let virt = VirtualExtents::new(&reg, &defs);
        assert!(virt.answer(&parse("count <<A>>").unwrap()).is_err());
    }

    #[test]
    fn void_contributions_contribute_nothing() {
        let reg = registry();
        let mut defs = uprotein_definitions();
        defs.add_contribution(
            &SchemeRef::table("UProtein"),
            Contribution::derived(Expr::range_void_any()),
        );
        let virt = VirtualExtents::new(&reg, &defs);
        let bag = virt.extent(&SchemeRef::table("UProtein")).unwrap();
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn definitions_merge_and_count() {
        let mut a = uprotein_definitions();
        let mut b = ViewDefinitions::new();
        b.add_contribution(
            &SchemeRef::table("UPeptideHit"),
            Contribution::from_source("pedro", parse("[k | k <- <<peptidehit>>]").unwrap()),
        );
        let before = a.contribution_count();
        a.merge(&b);
        assert_eq!(a.contribution_count(), before + 1);
        assert!(a.defines(&SchemeRef::table("UPeptideHit")));
        assert_eq!(a.iter().count(), a.defined_scheme_count());
    }
}
