//! End-to-end query answering over virtual (integrated) schemas.
//!
//! A virtual schema object (an object of a federated, intersection or global schema)
//! has no stored extent: its extent is *defined* by the `add` transformations that
//! introduced it, one contribution per data source (plus possibly contributions
//! derived from other virtual objects). Following the paper, the extent of such an
//! object is the **bag union** of its contributions.
//!
//! [`VirtualExtents`] implements [`ExtentProvider`] on top of a [`SourceRegistry`] and
//! a set of [`Contribution`]s per scheme, so the ordinary IQL [`Evaluator`] can answer
//! any query posed on the integrated schema — this is GAV query processing by
//! unfolding, performed lazily during evaluation. Results are memoised per scheme and
//! recursion is cycle-checked.
//!
//! # Concurrency
//!
//! The provider satisfies the [`ExtentProvider`] `Sync` contract: the scheme memo is
//! `RwLock`-guarded (and can be shared across provider instances with
//! [`VirtualExtents::with_shared_cache`]), so one `VirtualExtents` can serve queries
//! from many threads at once. A scheme's per-source contributions are independent of
//! each other (bag-union semantics), so when a scheme has two or more they are
//! fetched and evaluated on scoped worker threads budgeted by the process-wide
//! [`iql::FetchPool`] semaphore (each worker taking a contiguous slice; whatever
//! the pool cannot grant runs inline on the caller); results are unioned in
//! registration order, keeping extents deterministic. Cycle detection is **static**:
//! before computing an extent the provider walks the scheme-dependency graph of the
//! view definitions — a contribution's scheme reference recurses only when it names
//! another *defined* scheme that the contribution's own source database cannot
//! resolve, exactly the runtime lookup rule — and rejects any scheme whose
//! definition is cyclic. Because the check never consults execution state, it holds
//! no matter which thread (the caller's, a contribution worker's, or one of the
//! evaluator's parallel-fetch workers) resolves which scheme.

use crate::error::AutomedError;
use crate::qp::Contribution;
use crate::wrapper::SourceRegistry;
use iql::ast::{Expr, SchemeRef};
use iql::error::EvalError;
use iql::eval::{Evaluator, ExtentProvider, PlanCache};
use iql::lru::LruMap;
use iql::rewrite;
use iql::value::{Bag, Value};
use iql::FetchPool;
use iql::IndexStore;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, PoisonError, RwLock};
use std::thread;

/// The definitions of all virtual schema objects: scheme key → contributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewDefinitions {
    contributions: BTreeMap<String, Vec<Contribution>>,
}

impl ViewDefinitions {
    /// Empty definitions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a contribution for a scheme. Contributions accumulate (bag-union
    /// semantics), in registration order.
    pub fn add_contribution(&mut self, scheme: &SchemeRef, contribution: Contribution) {
        self.contributions
            .entry(scheme.key())
            .or_default()
            .push(contribution);
    }

    /// The contributions registered for a scheme.
    pub fn contributions_for(&self, scheme: &SchemeRef) -> Option<&[Contribution]> {
        self.contributions_for_key(&scheme.key())
    }

    /// The contributions registered under a raw scheme key.
    pub fn contributions_for_key(&self, key: &str) -> Option<&[Contribution]> {
        self.contributions.get(key).map(Vec::as_slice)
    }

    /// Whether any contribution is registered for the scheme.
    pub fn defines(&self, scheme: &SchemeRef) -> bool {
        self.contributions.contains_key(&scheme.key())
    }

    /// Number of schemes with at least one contribution.
    pub fn defined_scheme_count(&self) -> usize {
        self.contributions.len()
    }

    /// Total number of contributions.
    pub fn contribution_count(&self) -> usize {
        self.contributions.values().map(Vec::len).sum()
    }

    /// Iterate over `(scheme key, contributions)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Contribution])> {
        self.contributions
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Merge another set of definitions into this one.
    pub fn merge(&mut self, other: &ViewDefinitions) {
        for (k, v) in &other.contributions {
            self.contributions
                .entry(k.clone())
                .or_default()
                .extend(v.iter().cloned());
        }
    }
}

fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Default number of extents an [`ExtentMemo`] holds before evicting.
pub const DEFAULT_EXTENT_CAPACITY: usize = 1024;

/// Default byte budget for an [`ExtentMemo`]'s materialised bags (64 MiB).
/// Entry *count* alone is a poor residency bound — one memoised extent can be
/// a million-row bag — so eviction also weighs entries by
/// [`iql::value::Bag::approx_bytes`] against this budget.
pub const DEFAULT_EXTENT_BYTES: u64 = 64 * 1024 * 1024;

/// A version-stamped scheme-key → extent memo, shareable across provider
/// instances (e.g. by a dataspace handing out one provider per query over the
/// same definitions). Self-invalidating: every provider access first syncs the
/// stamp against the provider's [`ExtentProvider::version`], clearing the memo
/// when the underlying source data (or the owner's version salt) moved — a
/// rebuilt plan can therefore never be constructed from stale memoised extents.
///
/// The memo is **bounded** two ways: at most [`ExtentMemo::capacity`] extents
/// are held, and their estimated resident bytes ([`Bag::approx_bytes`]) stay
/// within [`ExtentMemo::byte_budget`] — the least recently used extent is
/// evicted when either bound overflows ([`ExtentMemo::with_capacity_and_bytes`]
/// configures both; defaults [`DEFAULT_EXTENT_CAPACITY`] /
/// [`DEFAULT_EXTENT_BYTES`]). A long-lived dataspace serving an unbounded
/// query stream therefore keeps bounded memory even when individual extents
/// are huge. An evicted extent is simply recomputed on next use — eviction can
/// never serve stale data.
#[derive(Debug)]
pub struct ExtentMemo {
    stamp: RwLock<u64>,
    extents: RwLock<LruMap<String, Arc<Bag>>>,
}

impl Default for ExtentMemo {
    fn default() -> Self {
        Self::with_capacity_and_bytes(DEFAULT_EXTENT_CAPACITY, DEFAULT_EXTENT_BYTES)
    }
}

impl ExtentMemo {
    /// An empty memo (stamp 0) with the default capacity and byte budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty memo bounded to `capacity` extents with the default byte
    /// budget (LRU eviction past either bound).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_bytes(capacity, DEFAULT_EXTENT_BYTES)
    }

    /// An empty memo bounded to `capacity` extents **and** `byte_budget`
    /// estimated resident bytes: inserting weighs each bag by
    /// [`Bag::approx_bytes`], evicting least-recently-used extents until both
    /// bounds hold. An evicted extent is recomputed on next use, so neither
    /// bound ever affects answers.
    pub fn with_capacity_and_bytes(capacity: usize, byte_budget: u64) -> Self {
        ExtentMemo {
            stamp: RwLock::new(0),
            extents: RwLock::new(LruMap::with_weight_budget(capacity, byte_budget)),
        }
    }

    /// The maximum number of extents held before LRU eviction.
    pub fn capacity(&self) -> usize {
        read(&self.extents).capacity()
    }

    /// The estimated-byte budget for memoised bags.
    pub fn byte_budget(&self) -> u64 {
        read(&self.extents).weight_budget()
    }

    /// Estimated resident bytes of the currently memoised bags.
    pub fn total_bytes(&self) -> u64 {
        read(&self.extents).total_weight()
    }

    /// How many extents have been evicted for capacity so far.
    pub fn eviction_count(&self) -> u64 {
        read(&self.extents).evictions()
    }

    /// Clear the memo when `version` differs from the recorded stamp.
    /// Lock order is stamp → extents everywhere.
    fn sync_to(&self, version: u64) {
        if *read(&self.stamp) == version {
            return;
        }
        let mut stamp = write(&self.stamp);
        if *stamp != version {
            write(&self.extents).clear();
            *stamp = version;
        }
    }

    /// The memoised extent for a scheme key, if any (refreshes its LRU slot; the
    /// refresh is atomic, so concurrent hits share the read lock).
    pub fn get(&self, key: &str) -> Option<Arc<Bag>> {
        read(&self.extents).get(key).cloned()
    }

    fn insert(&self, key: String, bag: Arc<Bag>) {
        let weight = bag.approx_bytes();
        write(&self.extents).insert_weighted(key, bag, weight);
    }

    /// Number of memoised extents.
    pub fn len(&self) -> usize {
        read(&self.extents).len()
    }

    /// Whether the memo holds no extents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoised extent (explicit invalidation hook).
    pub fn clear(&self) {
        write(&self.extents).clear();
    }
}

/// A shareable handle to an [`ExtentMemo`].
pub type SharedExtentCache = Arc<ExtentMemo>;

/// An [`ExtentProvider`] for integrated schemas: resolves virtual schemes through
/// their contributions and memoises results. Safe to share across threads (see the
/// module docs for the concurrency story).
pub struct VirtualExtents<'a> {
    registry: &'a SourceRegistry,
    definitions: &'a ViewDefinitions,
    cache: SharedExtentCache,
    /// Scheme keys whose reachable definition subgraph is proven acyclic, so the
    /// static cycle check runs once per scheme, not once per extent computation.
    verified_acyclic: RwLock<BTreeSet<String>>,
    /// When set, schemes with no registered contribution are looked up in this source
    /// (used for federated schemas where untouched source objects remain queryable).
    fallback_sources: Vec<String>,
    /// Evaluate a scheme's contributions on scoped worker threads when ≥ 2.
    parallel: bool,
    /// Plan chains of joined generators with the bushy enumerator (on by
    /// default; off restricts the planner to the greedy chain reorder).
    bushy: bool,
    /// Plan cache attached to the evaluators spawned by [`VirtualExtents::answer`].
    plan_cache: Option<Arc<PlanCache>>,
    /// Secondary point-lookup index store attached to spawned evaluators (see
    /// [`iql::IndexStore`]).
    index_store: Option<Arc<IndexStore>>,
    /// Plan point-equality filter runs as index lookups (on by default; off is
    /// the index-disabled differential/bench leg).
    use_index: bool,
    /// Override for the evaluators' re-optimisation divergence factor.
    reopt_factor: Option<f64>,
    /// Run eligible planned comprehensions on the vectorised columnar engine
    /// (on by default; off is the row-engine differential/bench leg).
    columnar: bool,
    /// Engine-selection counters attached to spawned evaluators (see
    /// [`iql::EngineStats`]).
    engine_stats: Option<Arc<iql::EngineStats>>,
    /// Folded into [`ExtentProvider::version`] so the owner can invalidate plan
    /// caches on definition changes the registry's versions cannot see.
    version_salt: u64,
}

impl<'a> VirtualExtents<'a> {
    /// Create a provider over the given sources and view definitions.
    pub fn new(registry: &'a SourceRegistry, definitions: &'a ViewDefinitions) -> Self {
        VirtualExtents {
            registry,
            definitions,
            cache: Arc::new(ExtentMemo::new()),
            verified_acyclic: RwLock::new(BTreeSet::new()),
            fallback_sources: Vec::new(),
            parallel: true,
            bushy: true,
            plan_cache: None,
            index_store: None,
            use_index: true,
            reopt_factor: None,
            columnar: true,
            engine_stats: None,
            version_salt: 0,
        }
    }

    /// Also resolve schemes with no contribution by probing the named sources in
    /// order (first match wins).
    pub fn with_fallback_sources<I, S>(mut self, sources: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.fallback_sources = sources.into_iter().map(Into::into).collect();
        self
    }

    /// Use (and fill) a scheme memo shared with other provider instances over the
    /// same registry + definitions. The memo is version-stamped: it clears itself
    /// whenever this provider's [`ExtentProvider::version`] moves (source inserts,
    /// or a definitions change signalled through
    /// [`VirtualExtents::with_version_salt`]), so owners need no manual hook —
    /// though an eager [`ExtentMemo::clear`] is harmless.
    pub fn with_shared_cache(mut self, cache: SharedExtentCache) -> Self {
        self.cache = cache;
        self
    }

    /// Evaluate everything on the calling thread: contribution fan-out *and* the
    /// parallel extent prefetch of every evaluator this provider spawns. The
    /// thread-free reference leg of the differential tests.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Disable the bushy join enumerator in the evaluators this provider spawns:
    /// generator chains are reordered with the greedy rule only (see
    /// [`Evaluator::without_bushy`]). A differential-test and benchmarking leg.
    pub fn without_bushy(mut self) -> Self {
        self.bushy = false;
        self
    }

    /// Attach a plan cache to the evaluators created by [`VirtualExtents::answer`]
    /// (see [`PlanCache`] for the sharing contract: one cache per logical provider).
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Attach a secondary point-lookup index store to the evaluators created by
    /// [`VirtualExtents::answer`] (see [`iql::IndexStore`] for the design; same
    /// sharing contract as the plan cache: one store per logical provider).
    pub fn with_index_store(mut self, store: Arc<IndexStore>) -> Self {
        self.index_store = Some(store);
        self
    }

    /// Disable point-lookup index planning in the evaluators this provider
    /// spawns (see [`Evaluator::without_index`]). The index-disabled
    /// differential-test and benchmarking leg.
    pub fn without_index(mut self) -> Self {
        self.use_index = false;
        self
    }

    /// Set the actual/estimated divergence factor past which spawned
    /// evaluators re-optimise cached plans (see [`Evaluator::with_reopt_factor`]).
    pub fn with_reopt_factor(mut self, factor: f64) -> Self {
        self.reopt_factor = Some(factor);
        self
    }

    /// Force every execution in the evaluators this provider spawns onto the
    /// row-at-a-time engine (see [`Evaluator::with_columnar`]). The row-engine
    /// differential-test and benchmarking leg; results are identical either way.
    pub fn without_columnar(mut self) -> Self {
        self.columnar = false;
        self
    }

    /// Attach engine-selection counters to the evaluators this provider spawns
    /// (see [`iql::EngineStats`]): columnar completions and row-engine
    /// fallbacks accumulate there across every query answered.
    pub fn with_engine_stats(mut self, stats: Arc<iql::EngineStats>) -> Self {
        self.engine_stats = Some(stats);
        self
    }

    /// Fold an owner-managed generation counter into this provider's version, so
    /// view-definition changes invalidate plan caches (see
    /// [`ExtentProvider::version`]).
    pub fn with_version_salt(mut self, salt: u64) -> Self {
        self.version_salt = salt;
        self
    }

    /// Drop every memoised extent (explicit invalidation hook; also clears a cache
    /// installed with [`VirtualExtents::with_shared_cache`]).
    pub fn invalidate(&self) {
        self.cache.clear();
    }

    /// Number of schemes with a memoised extent.
    pub fn cached_scheme_count(&self) -> usize {
        self.cache.len()
    }

    /// Build the evaluator used for [`VirtualExtents::answer`]: planning on, plan
    /// cache attached when configured.
    fn evaluator(&self) -> Evaluator<&Self> {
        let mut ev = Evaluator::new(self);
        if !self.parallel {
            ev = ev.without_parallel_fetch();
        }
        if !self.bushy {
            ev = ev.without_bushy();
        }
        if !self.use_index {
            ev = ev.without_index();
        }
        if let Some(store) = &self.index_store {
            ev = ev.with_index_store(Arc::clone(store));
        }
        if let Some(factor) = self.reopt_factor {
            ev = ev.with_reopt_factor(factor);
        }
        if !self.columnar {
            ev = ev.with_columnar(false);
        }
        if let Some(stats) = &self.engine_stats {
            ev = ev.with_engine_stats(Arc::clone(stats));
        }
        match &self.plan_cache {
            Some(cache) => ev.with_plan_cache(Arc::clone(cache)),
            None => ev,
        }
    }

    /// Answer a query posed on the integrated schema.
    pub fn answer(&self, query: &Expr) -> Result<Value, AutomedError> {
        Ok(self.evaluator().eval_closed(query)?)
    }

    /// Answer a query under a set of named parameter bindings (`?name`
    /// placeholders in the query resolve through `params` at execution time).
    ///
    /// This is the execution path of prepared queries: the expression — and
    /// therefore the plan-cache key — is the same for every binding, so all
    /// executions of one query shape share one cached plan.
    pub fn answer_with(&self, query: &Expr, params: &iql::Params) -> Result<Value, AutomedError> {
        let env = iql::env::Env::new().with_params(params.clone());
        Ok(self.evaluator().eval(query, &env)?)
    }

    /// Answer a query under parameter bindings and insist on a bag result.
    pub fn answer_bag_with(&self, query: &Expr, params: &iql::Params) -> Result<Bag, AutomedError> {
        Ok(self.answer_with(query, params)?.expect_bag()?)
    }

    /// Plan `query`'s top-level comprehension (without executing it) and report
    /// the join statistics and strategies — including bushy trees — the same
    /// way [`Evaluator::explain`] does for a plain provider. Resolving the
    /// extents the planner needs may itself evaluate contributions (GAV
    /// unfolding), so this can fail like [`VirtualExtents::answer`].
    pub fn explain(&self, query: &Expr) -> Result<Vec<iql::JoinStats>, AutomedError> {
        Ok(self.evaluator().explain(query, &iql::env::Env::new())?)
    }

    /// Answer a query with comprehension planning disabled (naive nested loops).
    /// Reference semantics for tests and the baseline for benchmarks; note that the
    /// extents the contributions themselves are computed with still use the planning
    /// evaluator via [`ExtentProvider`].
    pub fn answer_with_nested_loops(&self, query: &Expr) -> Result<Value, AutomedError> {
        Ok(self.evaluator().with_nested_loops().eval_closed(query)?)
    }

    /// Answer a query with planning disabled, under parameter bindings — the
    /// reference leg the prepared-execution differentials compare against.
    pub fn answer_with_nested_loops_params(
        &self,
        query: &Expr,
        params: &iql::Params,
    ) -> Result<Value, AutomedError> {
        let env = iql::env::Env::new().with_params(params.clone());
        Ok(self.evaluator().with_nested_loops().eval(query, &env)?)
    }

    /// Answer a query and insist on a bag result.
    pub fn answer_bag(&self, query: &Expr) -> Result<Bag, AutomedError> {
        Ok(self.answer(query)?.expect_bag()?)
    }

    /// Build a [`iql::StandingPlan`] for `query` over the virtual schema under
    /// fixed parameter bindings, or `None` when the shape is not incrementally
    /// maintainable (see [`Evaluator::standing_plan`] for the contract).
    pub fn standing_plan(
        &self,
        query: &Expr,
        params: &iql::Params,
    ) -> Result<Option<iql::StandingPlan>, AutomedError> {
        let env = iql::env::Env::new().with_params(params.clone());
        Ok(self.evaluator().standing_plan(query, &env)?)
    }

    /// Execute a standing plan in full (initial answer / re-synchronisation).
    pub fn execute_standing(
        &self,
        plan: &iql::StandingPlan,
        params: &iql::Params,
    ) -> Result<Bag, AutomedError> {
        let env = iql::env::Env::new().with_params(params.clone());
        Ok(self.evaluator().execute_standing(plan, &env)?)
    }

    /// Delta-evaluate a standing plan against rows appended to its lead
    /// scheme's extent (see [`Evaluator::delta_standing`] for the soundness
    /// contract the caller's version bookkeeping must enforce).
    pub fn delta_standing(
        &self,
        plan: &iql::StandingPlan,
        appended: &[iql::Value],
        params: &iql::Params,
    ) -> Result<Bag, AutomedError> {
        let env = iql::env::Env::new().with_params(params.clone());
        Ok(self.evaluator().delta_standing(plan, appended, &env)?)
    }

    /// Evaluate one contribution to a scheme's extent.
    fn eval_contribution(
        &self,
        scheme: &SchemeRef,
        contribution: &Contribution,
    ) -> Result<Value, EvalError> {
        match &contribution.source {
            Some(source) => {
                let db = self
                    .registry
                    .database(source)
                    .map_err(|_| EvalError::UnknownScheme(scheme.clone()))?;
                // Queries over a named source may still reference other virtual
                // objects (e.g. an intersection object defined partly in terms of
                // the evolving global schema), so the source is layered over this
                // provider.
                let layered = LayeredProvider {
                    primary: db,
                    fallback: self,
                };
                let ev = Evaluator::new(&layered);
                let ev = if self.parallel {
                    ev
                } else {
                    ev.without_parallel_fetch()
                };
                ev.eval_closed(&contribution.query)
            }
            None => self.evaluator().eval_closed(&contribution.query),
        }
    }

    /// Evaluate all contributions, on scoped worker threads when there are at
    /// least two (contributions over distinct sources are independent), each
    /// worker taking a contiguous slice with results reassembled in registration
    /// order (deterministic bag union). Worker threads are budgeted by the
    /// process-wide [`FetchPool`] semaphore — nested resolutions draw from the
    /// same global budget instead of multiplying per-call caps, and whatever the
    /// pool cannot grant runs inline on the calling thread.
    fn eval_contributions(
        &self,
        scheme: &SchemeRef,
        contributions: &[Contribution],
    ) -> Vec<Result<Value, EvalError>> {
        // A single-core machine (pool capacity 1) gains nothing from running a
        // worker alongside the caller — skip the fan-out entirely there.
        let pool = FetchPool::global();
        let mut permits = if self.parallel && contributions.len() >= 2 && pool.capacity() >= 2 {
            pool.acquire_up_to(contributions.len() - 1)
        } else {
            pool.acquire_up_to(0)
        };
        if permits.count() == 0 {
            return contributions
                .iter()
                .map(|c| self.eval_contribution(scheme, c))
                .collect();
        }
        let workers = permits.count() + 1; // the calling thread takes a share too
        let chunk = contributions.len().div_ceil(workers);
        // Ceil-division may need fewer chunks than workers: return the surplus
        // permits instead of stranding them for the fan-out.
        permits.truncate(contributions.len().div_ceil(chunk) - 1);
        thread::scope(|scope| {
            let mut chunks = contributions.chunks(chunk);
            let caller_share = chunks.next().unwrap_or(&[]);
            let handles: Vec<_> = chunks
                .map(|slice| {
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|c| self.eval_contribution(scheme, c))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut results: Vec<Result<Value, EvalError>> = caller_share
                .iter()
                .map(|c| self.eval_contribution(scheme, c))
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("contribution worker panicked"));
            }
            results
        })
    }

    /// The scheme keys a defined scheme's contributions can recurse into: every
    /// scheme referenced by a contribution query that (a) is itself defined and
    /// (b) is **not** resolvable in the contribution's own source database —
    /// mirroring the runtime rule that a source contribution's references try the
    /// source first and only fall back to the virtual schema.
    fn virtual_deps(&self, key: &str) -> Vec<String> {
        let Some(contributions) = self.definitions.contributions_for_key(key) else {
            return Vec::new();
        };
        let mut deps = BTreeSet::new();
        for contribution in contributions {
            let source_schema = contribution
                .source
                .as_deref()
                .and_then(|s| self.registry.database(s).ok())
                .map(|db| db.schema());
            for referenced in rewrite::collect_schemes(&contribution.query) {
                let ref_key = referenced.key();
                if self.definitions.contributions_for_key(&ref_key).is_none() {
                    continue; // resolves via fallback sources, never recurses
                }
                let resolved_in_source = source_schema
                    .is_some_and(|schema| relational::wrapper::covers(schema, &referenced));
                if !resolved_in_source {
                    deps.insert(ref_key);
                }
            }
        }
        deps.into_iter().collect()
    }

    /// Statically verify that the definition subgraph reachable from `root` is
    /// acyclic (depth-first over [`Self::virtual_deps`]). Runs before an extent is
    /// computed, so cyclic view definitions error cleanly no matter which thread
    /// the recursion would have unfolded on; verified schemes are memoised.
    fn ensure_acyclic(&self, root: &str, scheme: &SchemeRef) -> Result<(), EvalError> {
        if read(&self.verified_acyclic).contains(root) {
            return Ok(());
        }
        enum Frame {
            Enter(String),
            Exit(String),
        }
        let mut on_path: BTreeSet<String> = BTreeSet::new();
        let mut done: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![Frame::Enter(root.to_string())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(key) => {
                    if done.contains(&key) {
                        continue;
                    }
                    if !on_path.insert(key.clone()) {
                        return Err(EvalError::TypeError {
                            context: format!("extent of {scheme}"),
                            found: "cyclic view definition".into(),
                        });
                    }
                    let deps = self.virtual_deps(&key);
                    stack.push(Frame::Exit(key));
                    for dep in deps {
                        if on_path.contains(&dep) {
                            return Err(EvalError::TypeError {
                                context: format!("extent of {scheme}"),
                                found: "cyclic view definition".into(),
                            });
                        }
                        if !done.contains(&dep) {
                            stack.push(Frame::Enter(dep));
                        }
                    }
                }
                Frame::Exit(key) => {
                    on_path.remove(&key);
                    done.insert(key);
                }
            }
        }
        write(&self.verified_acyclic).extend(done);
        Ok(())
    }

    fn compute_extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        let Some(contributions) = self.definitions.contributions_for(scheme) else {
            // Fall back to probing the configured sources directly.
            for source in &self.fallback_sources {
                if let Ok(db) = self.registry.database(source) {
                    if let Ok(bag) = db.extent(scheme) {
                        return Ok(bag);
                    }
                }
            }
            return Err(EvalError::UnknownScheme(scheme.clone()));
        };
        let mut result: Vec<Value> = Vec::new();
        for value in self.eval_contributions(scheme, contributions) {
            match value? {
                Value::Void => {}
                other => {
                    let bag = other.expect_bag()?;
                    result.extend(bag.iter().cloned());
                }
            }
        }
        Ok(Arc::new(Bag::from_values(result)))
    }
}

impl ExtentProvider for VirtualExtents<'_> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        self.cache.sync_to(self.version());
        let key = scheme.key();
        if let Some(cached) = self.cache.get(&key) {
            return Ok(cached);
        }
        self.ensure_acyclic(&key, scheme)?;
        let result = self.compute_extent(scheme);
        if let Ok(bag) = &result {
            self.cache.insert(key, Arc::clone(bag));
        }
        result
    }

    /// Combines the registry's source versions with the owner's salt: a mutation of
    /// any underlying source (or a definitions change signalled through the salt)
    /// invalidates plan-cache entries built over this provider.
    fn version(&self) -> u64 {
        self.registry
            .data_version()
            .wrapping_add(self.version_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Resolving a virtual scheme evaluates its contribution queries — expensive
    /// enough that the evaluator should overlap independent generator fetches.
    fn prefers_parallel_fetch(&self) -> bool {
        true
    }
}

/// Resolves schemes against a primary provider first, then a fallback.
struct LayeredProvider<'a, P, F> {
    primary: &'a P,
    fallback: &'a F,
}

impl<P: ExtentProvider, F: ExtentProvider> ExtentProvider for LayeredProvider<'_, P, F> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        match self.primary.extent(scheme) {
            Ok(bag) => Ok(bag),
            Err(_) => self.fallback.extent(scheme),
        }
    }

    fn version(&self) -> u64 {
        self.primary
            .version()
            .wrapping_add(self.fallback.version().rotate_left(32))
    }

    fn prefers_parallel_fetch(&self) -> bool {
        self.primary.prefers_parallel_fetch() || self.fallback.prefers_parallel_fetch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::parse;
    use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    use relational::Database;

    fn pedro() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
        db.insert("protein", vec![2.into(), "ACC2".into()]).unwrap();
        db
    }

    fn gpmdb() -> Database {
        let mut s = RelSchema::new("gpmdb");
        s.add_table(
            RelTable::new("proseq")
                .with_column(RelColumn::new("proseqid", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["proseqid"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("proseq", vec![10.into(), "ACC2".into()]).unwrap();
        db.insert("proseq", vec![11.into(), "ACC3".into()]).unwrap();
        db
    }

    fn registry() -> SourceRegistry {
        let mut r = SourceRegistry::new();
        r.add_source(pedro()).unwrap();
        r.add_source(gpmdb()).unwrap();
        r
    }

    fn uprotein_definitions() -> ViewDefinitions {
        let mut defs = ViewDefinitions::new();
        let uprotein = SchemeRef::table("UProtein");
        defs.add_contribution(
            &uprotein,
            Contribution::from_source("pedro", parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap()),
        );
        defs.add_contribution(
            &uprotein,
            Contribution::from_source("gpmdb", parse("[{'gpmDB', k} | k <- <<proseq>>]").unwrap()),
        );
        let acc = SchemeRef::column("UProtein", "accession_num");
        defs.add_contribution(
            &acc,
            Contribution::from_source(
                "pedro",
                parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
            ),
        );
        defs.add_contribution(
            &acc,
            Contribution::from_source(
                "gpmdb",
                parse("[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]").unwrap(),
            ),
        );
        // A derived object defined purely over the virtual schema.
        defs.add_contribution(
            &SchemeRef::table("SharedAccession"),
            Contribution::derived(
                parse(
                    "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']",
                )
                .unwrap(),
            ),
        );
        defs
    }

    #[test]
    fn extent_is_bag_union_of_contributions() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let bag = virt.extent(&SchemeRef::table("UProtein")).unwrap();
        assert_eq!(bag.len(), 4); // 2 from pedro + 2 from gpmdb
        assert!(bag.contains(&Value::pair(Value::str("PEDRO"), Value::Int(1))));
        assert!(bag.contains(&Value::pair(Value::str("gpmDB"), Value::Int(11))));
    }

    #[test]
    fn derived_objects_resolve_recursively() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let q = parse("count <<SharedAccession>>").unwrap();
        // ACC2 appears in both sources.
        assert_eq!(virt.answer(&q).unwrap(), Value::Int(1));
    }

    #[test]
    fn queries_over_virtual_schema_answerable() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let q = parse("[x | {s, k, x} <- <<UProtein, accession_num>>; s = 'gpmDB']").unwrap();
        let bag = virt.answer_bag(&q).unwrap();
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::str("ACC3")));
    }

    #[test]
    fn fallback_sources_expose_untouched_objects() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs).with_fallback_sources(["pedro", "gpmdb"]);
        // ⟨⟨proseq⟩⟩ has no contribution; it is resolved directly from gpmdb.
        let q = parse("count <<proseq>>").unwrap();
        assert_eq!(virt.answer(&q).unwrap(), Value::Int(2));
        // Without fallback it is an unknown scheme.
        let strict = VirtualExtents::new(&reg, &defs);
        assert!(strict.answer(&q).is_err());
    }

    #[test]
    fn results_are_cached_per_scheme() {
        let reg = registry();
        let defs = uprotein_definitions();
        let virt = VirtualExtents::new(&reg, &defs);
        let q = parse("count <<UProtein>> + count <<UProtein>>").unwrap();
        assert_eq!(virt.answer(&q).unwrap(), Value::Int(8));
        assert!(virt.cache.get("UProtein").is_some());
        assert_eq!(virt.cached_scheme_count(), 1);
    }

    #[test]
    fn parallel_and_sequential_contribution_fetch_agree() {
        let reg = registry();
        let defs = uprotein_definitions();
        let parallel = VirtualExtents::new(&reg, &defs);
        let sequential = VirtualExtents::new(&reg, &defs).sequential();
        for q in [
            "count <<UProtein>>",
            "[x | {s, k, x} <- <<UProtein, accession_num>>; s = 'gpmDB']",
            "count <<SharedAccession>>",
        ] {
            let q = parse(q).unwrap();
            assert_eq!(parallel.answer(&q).unwrap(), sequential.answer(&q).unwrap());
        }
    }

    #[test]
    fn shared_cache_is_filled_and_reused_across_provider_instances() {
        let reg = registry();
        let defs = uprotein_definitions();
        let shared: SharedExtentCache = Arc::new(ExtentMemo::new());
        {
            let virt = VirtualExtents::new(&reg, &defs).with_shared_cache(Arc::clone(&shared));
            virt.answer(&parse("count <<UProtein>>").unwrap()).unwrap();
        }
        assert!(shared.get("UProtein").is_some());
        // A second provider over the same definitions reuses the memo (same Arc).
        let virt2 = VirtualExtents::new(&reg, &defs).with_shared_cache(Arc::clone(&shared));
        let before = shared.get("UProtein").unwrap();
        let bag = virt2.extent(&SchemeRef::table("UProtein")).unwrap();
        assert!(Arc::ptr_eq(&before, &bag));
        virt2.invalidate();
        assert_eq!(virt2.cached_scheme_count(), 0);
    }

    #[test]
    fn shared_cache_self_invalidates_when_source_data_moves() {
        // Warm the memo, then mutate a source through the registry: the stamped
        // memo must clear itself on next access, so a rebuilt plan can never bake
        // in stale extents.
        let mut reg = registry();
        let defs = uprotein_definitions();
        let shared: SharedExtentCache = Arc::new(ExtentMemo::new());
        {
            let virt = VirtualExtents::new(&reg, &defs).with_shared_cache(Arc::clone(&shared));
            assert_eq!(
                virt.answer(&parse("count <<UProtein>>").unwrap()).unwrap(),
                Value::Int(4)
            );
        }
        assert!(shared.get("UProtein").is_some());
        reg.database_mut("pedro")
            .unwrap()
            .insert("protein", vec![3.into(), "ACC3b".into()])
            .unwrap();
        let virt = VirtualExtents::new(&reg, &defs).with_shared_cache(Arc::clone(&shared));
        assert_eq!(
            virt.answer(&parse("count <<UProtein>>").unwrap()).unwrap(),
            Value::Int(5),
            "memo stamped with the old version must not serve after an insert"
        );
    }

    #[test]
    fn cyclic_definitions_error_through_evaluator_parallel_fetch() {
        // The shape the evaluator fans out on worker threads: a comprehension over
        // two independent generator sources whose schemes are mutually recursive.
        // The static cycle check must produce a clean error (not unbounded thread
        // recursion) regardless of which worker resolves which scheme.
        let reg = registry();
        let mut defs = ViewDefinitions::new();
        defs.add_contribution(
            &SchemeRef::table("A"),
            Contribution::derived(
                parse("[{x, y} | {k, x} <- <<B>>; {k2, y} <- <<C>>; k2 = k]").unwrap(),
            ),
        );
        defs.add_contribution(
            &SchemeRef::table("B"),
            Contribution::derived(parse("[k | k <- <<A>>]").unwrap()),
        );
        defs.add_contribution(
            &SchemeRef::table("C"),
            Contribution::derived(parse("[{k, k} | k <- <<B>>]").unwrap()),
        );
        let virt = VirtualExtents::new(&reg, &defs);
        let err = virt.answer(&parse("count <<A>>").unwrap());
        assert!(err.is_err(), "cyclic A → B → A must error, not recurse");
    }

    #[test]
    fn version_reflects_sources_and_salt() {
        let reg = registry();
        let defs = uprotein_definitions();
        let v0 = VirtualExtents::new(&reg, &defs).version();
        let salted = VirtualExtents::new(&reg, &defs)
            .with_version_salt(1)
            .version();
        assert_ne!(v0, salted);
        // Mutating a source shifts the unsalted version too.
        let mut reg2 = SourceRegistry::new();
        reg2.add_source(pedro()).unwrap();
        reg2.add_source(gpmdb()).unwrap();
        let before = VirtualExtents::new(&reg2, &defs).version();
        reg2.database_mut("pedro")
            .unwrap()
            .insert("protein", vec![3.into(), "ACC9".into()])
            .unwrap();
        let after = VirtualExtents::new(&reg2, &defs).version();
        assert_ne!(before, after);
    }

    #[test]
    fn cyclic_definitions_detected_through_parallel_workers() {
        // Two contributions per scheme force the scoped-thread path; the recursion
        // A → B → A crosses worker threads and must still error, not hang.
        let reg = registry();
        let mut defs = ViewDefinitions::new();
        defs.add_contribution(
            &SchemeRef::table("A"),
            Contribution::derived(parse("[k | k <- <<B>>]").unwrap()),
        );
        defs.add_contribution(
            &SchemeRef::table("A"),
            Contribution::derived(parse("[k | k <- <<B>>]").unwrap()),
        );
        defs.add_contribution(
            &SchemeRef::table("B"),
            Contribution::derived(parse("[k | k <- <<A>>]").unwrap()),
        );
        defs.add_contribution(
            &SchemeRef::table("B"),
            Contribution::derived(parse("[k | k <- <<A>>]").unwrap()),
        );
        let virt = VirtualExtents::new(&reg, &defs);
        assert!(virt.answer(&parse("count <<A>>").unwrap()).is_err());
    }

    #[test]
    fn cyclic_definitions_are_detected() {
        let reg = registry();
        let mut defs = ViewDefinitions::new();
        defs.add_contribution(
            &SchemeRef::table("A"),
            Contribution::derived(parse("[k | k <- <<B>>]").unwrap()),
        );
        defs.add_contribution(
            &SchemeRef::table("B"),
            Contribution::derived(parse("[k | k <- <<A>>]").unwrap()),
        );
        let virt = VirtualExtents::new(&reg, &defs);
        assert!(virt.answer(&parse("count <<A>>").unwrap()).is_err());
    }

    #[test]
    fn void_contributions_contribute_nothing() {
        let reg = registry();
        let mut defs = uprotein_definitions();
        defs.add_contribution(
            &SchemeRef::table("UProtein"),
            Contribution::derived(Expr::range_void_any()),
        );
        let virt = VirtualExtents::new(&reg, &defs);
        let bag = virt.extent(&SchemeRef::table("UProtein")).unwrap();
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn definitions_merge_and_count() {
        let mut a = uprotein_definitions();
        let mut b = ViewDefinitions::new();
        b.add_contribution(
            &SchemeRef::table("UPeptideHit"),
            Contribution::from_source("pedro", parse("[k | k <- <<peptidehit>>]").unwrap()),
        );
        let before = a.contribution_count();
        a.merge(&b);
        assert_eq!(a.contribution_count(), before + 1);
        assert!(a.defines(&SchemeRef::table("UPeptideHit")));
        assert_eq!(a.iter().count(), a.defined_scheme_count());
    }

    /// A bag of `rows` strings of `width` chars each.
    fn wide_bag(rows: usize, width: usize) -> Arc<Bag> {
        Arc::new(Bag::from_values(
            (0..rows)
                .map(|i| iql::value::Value::str(format!("{i:0width$}")))
                .collect(),
        ))
    }

    #[test]
    fn byte_budget_evicts_heavy_extents_before_count_bound() {
        // Room for 100 entries by count, but only ~one wide bag by bytes.
        let one_bag_bytes = wide_bag(50, 64).approx_bytes();
        let memo = ExtentMemo::with_capacity_and_bytes(100, one_bag_bytes + 16);
        memo.insert("a".into(), wide_bag(50, 64));
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.eviction_count(), 0);
        memo.insert("b".into(), wide_bag(50, 64));
        // The second bag can't fit alongside the first: LRU eviction by bytes.
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.eviction_count(), 1);
        assert!(memo.get("b").is_some(), "newest entry survives");
        assert!(memo.get("a").is_none(), "stalest entry evicted");
        assert!(memo.total_bytes() <= memo.byte_budget());
    }

    #[test]
    fn count_bound_still_applies_under_a_generous_byte_budget() {
        let memo = ExtentMemo::with_capacity_and_bytes(2, u64::MAX);
        memo.insert("a".into(), wide_bag(1, 4));
        memo.insert("b".into(), wide_bag(1, 4));
        memo.insert("c".into(), wide_bag(1, 4));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.eviction_count(), 1);
    }

    #[test]
    fn byte_weights_release_on_clear_and_version_sync() {
        let memo = ExtentMemo::with_capacity_and_bytes(8, u64::MAX);
        memo.insert("a".into(), wide_bag(10, 32));
        assert!(memo.total_bytes() > 0);
        memo.clear();
        assert_eq!(memo.total_bytes(), 0);
        memo.insert("b".into(), wide_bag(10, 32));
        memo.sync_to(7); // version moved: memo clears, weights released
        assert_eq!(memo.total_bytes(), 0);
        assert_eq!(memo.len(), 0);
    }
}
