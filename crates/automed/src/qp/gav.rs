//! GAV view unfolding along pathways.
//!
//! Given a query posed on the *target* schema of a pathway, unfolding walks the
//! pathway backwards (from the last step to the first) and substitutes every scheme
//! that was introduced by an `add` step with that step's defining query, every scheme
//! introduced by an `extend` step with the step's lower-bound query, and undoes
//! `rename` steps. The result is a query stated purely over the pathway's *source*
//! schema (the paper's GAV query processing by query unfolding).

use crate::error::AutomedError;
use crate::pathway::Pathway;
use crate::transformation::Transformation;
use iql::ast::Expr;
use iql::rewrite;
use std::collections::BTreeMap;

/// Upper bound on unfolding passes, to guard against pathological self-referential
/// view definitions (which would otherwise loop forever).
const MAX_PASSES: usize = 64;

/// Unfold a query posed on `pathway.target` into a query posed on `pathway.source`.
pub fn unfold_along_pathway(query: &Expr, pathway: &Pathway) -> Result<Expr, AutomedError> {
    let mut current = query.clone();
    // Walk the steps backwards: the last step's object is the "most derived".
    for step in pathway.steps().iter().rev() {
        current = unfold_step(&current, step)?;
    }
    Ok(current)
}

/// Apply the unfolding rule for a single (reverse-traversed) step.
fn unfold_step(query: &Expr, step: &Transformation) -> Result<Expr, AutomedError> {
    match step {
        Transformation::Add {
            object, query: def, ..
        } => {
            let mut subs = BTreeMap::new();
            subs.insert(object.scheme.clone(), def.clone());
            Ok(substitute_to_fixpoint(query, &subs)?)
        }
        Transformation::Extend {
            object, query: def, ..
        } => {
            // Use the lower bound of the Range (certain answers); a bare query is used
            // as-is.
            let lower = match def {
                Expr::Range { lower, .. } => (**lower).clone(),
                other => other.clone(),
            };
            let mut subs = BTreeMap::new();
            subs.insert(object.scheme.clone(), lower);
            Ok(substitute_to_fixpoint(query, &subs)?)
        }
        Transformation::Rename { from, to, .. } => {
            // The target schema calls the object `to`; the schema before this step
            // calls it `from`.
            let mut renames = BTreeMap::new();
            renames.insert(to.clone(), from.clone());
            Ok(rewrite::rename_schemes(query, &renames))
        }
        // delete/contract remove objects that no longer exist in the target schema, so
        // a (well-formed) target query cannot reference them; id steps relate two
        // schemas without changing either.
        Transformation::Delete { .. }
        | Transformation::Contract { .. }
        | Transformation::Id { .. } => Ok(query.clone()),
    }
}

/// Substitute repeatedly until no substituted scheme remains (view definitions may be
/// stated in terms of other objects introduced by the same step sequence).
fn substitute_to_fixpoint(
    query: &Expr,
    subs: &BTreeMap<iql::ast::SchemeRef, Expr>,
) -> Result<Expr, AutomedError> {
    let mut current = query.clone();
    for _ in 0..MAX_PASSES {
        let next = rewrite::substitute_schemes(&current, subs);
        if next == current {
            return Ok(current);
        }
        current = next;
    }
    Err(AutomedError::QueryProcessing(format!(
        "view unfolding did not terminate after {MAX_PASSES} passes (self-referential view definition?)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SchemaObject;
    use iql::ast::SchemeRef;
    use iql::{parse, Evaluator, MapExtents};

    fn pathway() -> Pathway {
        let mut p = Pathway::new("pedro", "global");
        p.push(Transformation::add(
            SchemaObject::table("UProtein"),
            parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        ));
        p.push(Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
        ));
        p.push(Transformation::Rename {
            from: SchemeRef::table("UProtein"),
            to: SchemeRef::table("UniversalProtein"),
            provenance: crate::transformation::Provenance::Manual,
        });
        p.push(Transformation::extend_void_any(SchemaObject::column(
            "UniversalProtein",
            "description",
        )));
        p
    }

    #[test]
    fn unfolding_eliminates_global_schemes() {
        let q = parse("count <<UniversalProtein>>").unwrap();
        let unfolded = unfold_along_pathway(&q, &pathway()).unwrap();
        let schemes = rewrite::collect_schemes(&unfolded);
        assert!(schemes.contains(&SchemeRef::table("protein")));
        assert!(!schemes.contains(&SchemeRef::table("UniversalProtein")));
        assert!(!schemes.contains(&SchemeRef::table("UProtein")));
    }

    #[test]
    fn unfolded_query_evaluates_against_the_source() {
        let mut source = MapExtents::new();
        source.insert_keys("protein", vec![1, 2, 3]);
        source.insert_pairs(
            "protein,accession_num",
            vec![(1, "P100"), (2, "P200"), (3, "P300")],
        );

        let q = parse("[x | {s, k, x} <- <<UProtein, accession_num>>; s = 'PEDRO']").unwrap();
        // Drop the rename/extend suffix so UProtein is the target name.
        let mut p = Pathway::new("pedro", "global");
        p.push(pathway().steps()[0].clone());
        p.push(pathway().steps()[1].clone());
        let unfolded = unfold_along_pathway(&q, &p).unwrap();
        let v = Evaluator::new(&source).eval_closed(&unfolded).unwrap();
        assert_eq!(v.expect_bag().unwrap().len(), 3);
    }

    #[test]
    fn extend_unfolds_to_lower_bound() {
        let q = parse("count <<UniversalProtein, description>>").unwrap();
        let unfolded = unfold_along_pathway(&q, &pathway()).unwrap();
        // Range Void Any → lower bound Void → count Void = 0 when evaluated.
        let v = Evaluator::new(iql::eval::NoExtents)
            .eval_closed(&unfolded)
            .unwrap();
        assert_eq!(v, iql::Value::Int(0));
    }

    #[test]
    fn rename_is_undone() {
        let q = parse("[k | {s, k} <- <<UniversalProtein>>]").unwrap();
        let unfolded = unfold_along_pathway(&q, &pathway()).unwrap();
        assert!(!rewrite::collect_schemes(&unfolded)
            .iter()
            .any(|s| s.key().contains("UniversalProtein")));
    }

    #[test]
    fn chained_view_definitions_unfold_transitively() {
        // Second add defined over the first add's object.
        let mut p = Pathway::new("src", "tgt");
        p.push(Transformation::add(
            SchemaObject::table("A"),
            parse("[k | k <- <<base>>]").unwrap(),
        ));
        p.push(Transformation::add(
            SchemaObject::table("B"),
            parse("[k | k <- <<A>>; k > 1]").unwrap(),
        ));
        let q = parse("count <<B>>").unwrap();
        let unfolded = unfold_along_pathway(&q, &p).unwrap();
        let schemes = rewrite::collect_schemes(&unfolded);
        assert_eq!(schemes.len(), 1);
        assert!(schemes.contains(&SchemeRef::table("base")));
    }

    #[test]
    fn self_referential_definition_detected() {
        let mut p = Pathway::new("src", "tgt");
        p.push(Transformation::add(
            SchemaObject::table("Loop"),
            parse("[k | k <- <<Loop>>]").unwrap(),
        ));
        let q = parse("count <<Loop>>").unwrap();
        assert!(matches!(
            unfold_along_pathway(&q, &p),
            Err(AutomedError::QueryProcessing(_))
        ));
    }
}
