//! LAV-style view inversion and rewriting.
//!
//! In a BAV pathway the `delete(o, q)` steps play the role of LAV mappings: they
//! describe an object `o` of the *earlier* schema as a view `q` over the *later*
//! schema. Answering a query stated over the earlier schema therefore requires
//! rewriting it to use the later schema's objects, which in general is "answering
//! queries using views".
//!
//! The view bodies produced by the intersection-schema tool have a restricted, regular
//! shape — a single-generator comprehension whose head is a tuple of provenance-tag
//! literals and pattern variables, e.g.
//!
//! ```text
//! ⟨⟨UProtein, accession_num⟩⟩ = [{'PEDRO', k, x} | {k, x} <- ⟨⟨protein, accession_num⟩⟩]
//! ```
//!
//! Such views are invertible *exactly*: the source object's extent is recovered by
//! pattern-matching the view's extent on the tag,
//!
//! ```text
//! ⟨⟨protein, accession_num⟩⟩ = [{k, x} | {'PEDRO', k, x} <- ⟨⟨UProtein, accession_num⟩⟩]
//! ```
//!
//! [`invert_view`] computes that inverse (this is also what the Intersection Schema
//! Tool uses to auto-generate reverse transformation queries), and [`rewrite_with_views`]
//! applies a set of inverses to a query.

use iql::ast::{Expr, Literal, Pattern, Qualifier, SchemeRef};
use iql::rewrite;
use std::collections::BTreeMap;

/// A view definition: `view` is defined by `body` (a query over some other schema).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// The scheme of the view object.
    pub view: SchemeRef,
    /// The defining query.
    pub body: Expr,
}

impl ViewDef {
    /// Convenience constructor.
    pub fn new(view: SchemeRef, body: Expr) -> Self {
        ViewDef { view, body }
    }
}

/// Attempt to invert a view definition of the restricted shape described in the module
/// documentation.
///
/// Returns the scheme of the (single) base object the view ranges over together with
/// an expression that reconstructs that base object's extent from the view's extent.
/// Returns `None` when the body does not have the invertible shape (in which case the
/// caller falls back to `Range Void Any`, exactly as the paper's tool does).
pub fn invert_view(view: &SchemeRef, body: &Expr) -> Option<(SchemeRef, Expr)> {
    let Expr::Comp { head, qualifiers } = body else {
        return None;
    };
    // Exactly one generator over a scheme, no filters or bindings.
    let [Qualifier::Generator { pattern, source }] = qualifiers.as_slice() else {
        return None;
    };
    let Expr::Scheme(base) = source else {
        return None;
    };
    // The generator pattern must bind plain variables (possibly inside one tuple).
    let generator_vars: Vec<String> = match pattern {
        Pattern::Var(v) => vec![v.clone()],
        Pattern::Tuple(parts) => {
            let mut vars = Vec::new();
            for p in parts {
                match p {
                    Pattern::Var(v) => vars.push(v.clone()),
                    _ => return None,
                }
            }
            vars
        }
        _ => return None,
    };
    // The head must be a tuple (or single expression) of literals and variables, where
    // every generator variable appears at least once.
    let head_items: Vec<&Expr> = match head.as_ref() {
        Expr::Tuple(items) => items.iter().collect(),
        other => vec![other],
    };
    let mut head_pattern_parts = Vec::with_capacity(head_items.len());
    let mut seen_vars = Vec::new();
    for item in &head_items {
        match item {
            Expr::Lit(l) => head_pattern_parts.push(Pattern::Lit(l.clone())),
            Expr::Var(v) if generator_vars.contains(v) => {
                seen_vars.push(v.clone());
                head_pattern_parts.push(Pattern::Var(v.clone()));
            }
            _ => return None,
        }
    }
    if !generator_vars.iter().all(|v| seen_vars.contains(v)) {
        // Information is lost by the view; it cannot be inverted exactly.
        return None;
    }

    // Reconstruction: [ <generator pattern as expr> | <head as pattern> <- <<view>> ].
    let reconstruction_head = if generator_vars.len() == 1 && matches!(pattern, Pattern::Var(_)) {
        Expr::Var(generator_vars[0].clone())
    } else {
        Expr::Tuple(
            generator_vars
                .iter()
                .map(|v| Expr::Var(v.clone()))
                .collect(),
        )
    };
    let reconstruction_pattern = if head_pattern_parts.len() == 1 {
        head_pattern_parts.pop().expect("one element")
    } else {
        Pattern::Tuple(head_pattern_parts)
    };
    let reconstruction = Expr::Comp {
        head: Box::new(reconstruction_head),
        qualifiers: vec![Qualifier::Generator {
            pattern: reconstruction_pattern,
            source: Expr::Scheme(view.clone()),
        }],
    };
    Some((base.clone(), reconstruction))
}

/// Rewrite `query` (stated over base objects) to use the given views instead, where
/// possible: every base scheme for which some view is invertible is replaced by the
/// reconstruction expression. Schemes with no invertible view are left in place; the
/// second component reports them so the caller can decide whether the rewriting is
/// complete.
pub fn rewrite_with_views(query: &Expr, views: &[ViewDef]) -> (Expr, Vec<SchemeRef>) {
    let mut substitutions: BTreeMap<SchemeRef, Expr> = BTreeMap::new();
    for v in views {
        if let Some((base, reconstruction)) = invert_view(&v.view, &v.body) {
            substitutions.entry(base).or_insert(reconstruction);
        }
    }
    let rewritten = rewrite::substitute_schemes(query, &substitutions);
    let unresolved: Vec<SchemeRef> = rewrite::collect_schemes(&rewritten)
        .into_iter()
        .filter(|s| views.iter().all(|v| &v.view != s))
        .collect();
    (rewritten, unresolved)
}

/// Derive the reverse transformation query for an object `base` given the forward
/// query that defines `view` in terms of `base` (and possibly other objects).
///
/// This is the Intersection Schema Tool's auto-generation rule: if the forward query
/// is invertible the exact inverse is returned, otherwise `Range Void Any`.
pub fn reverse_query_or_void_any(view: &SchemeRef, forward: &Expr, base: &SchemeRef) -> Expr {
    match invert_view(view, forward) {
        Some((inverted_base, reconstruction)) if &inverted_base == base => reconstruction,
        _ => Expr::range_void_any(),
    }
}

/// Literal helper used by tests and by the tool to create provenance tags.
pub fn tag(value: &str) -> Expr {
    Expr::Lit(Literal::Str(value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::{parse, Evaluator, MapExtents, Value};

    #[test]
    fn inverts_paper_style_tagging_view() {
        let view = SchemeRef::column("UProtein", "accession_num");
        let body = parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap();
        let (base, reconstruction) = invert_view(&view, &body).unwrap();
        assert_eq!(base, SchemeRef::column("protein", "accession_num"));

        // The reconstruction recovers exactly the PEDRO-tagged pairs.
        let mut m = MapExtents::new();
        m.insert(
            "UProtein,accession_num",
            iql::Bag::from_values(vec![
                Value::tuple(vec![Value::str("PEDRO"), Value::Int(1), Value::str("P100")]),
                Value::tuple(vec![Value::str("gpmDB"), Value::Int(9), Value::str("G900")]),
            ]),
        );
        let v = Evaluator::new(&m).eval_closed(&reconstruction).unwrap();
        assert_eq!(
            v.expect_bag().unwrap().items(),
            &[Value::pair(Value::Int(1), Value::str("P100"))]
        );
    }

    #[test]
    fn inverts_single_variable_view() {
        let view = SchemeRef::table("UProtein");
        let body = parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap();
        let (base, reconstruction) = invert_view(&view, &body).unwrap();
        assert_eq!(base, SchemeRef::table("protein"));
        let printed = iql::pretty::print(&reconstruction);
        assert!(printed.contains("<<UProtein>>"));
        assert!(printed.contains("'PEDRO'"));
    }

    #[test]
    fn non_invertible_views_rejected() {
        let view = SchemeRef::table("V");
        // Join of two schemes — not a single-generator view.
        assert!(invert_view(
            &view,
            &parse("[{k1, k2} | {k1, x} <- <<a>>; {k2, y} <- <<b>>; x = y]").unwrap()
        )
        .is_none());
        // Head drops a generator variable — information lost.
        assert!(invert_view(&view, &parse("[k | {k, x} <- <<a, b>>]").unwrap()).is_none());
        // Head computes an expression.
        assert!(invert_view(&view, &parse("[{k, x + 1} | {k, x} <- <<a, b>>]").unwrap()).is_none());
        // Filtered views are not exactly invertible.
        assert!(invert_view(
            &view,
            &parse("[{k, x} | {k, x} <- <<a, b>>; x > 3]").unwrap()
        )
        .is_none());
    }

    #[test]
    fn reverse_query_falls_back_to_range_void_any() {
        let view = SchemeRef::table("V");
        let base = SchemeRef::table("a");
        let invertible = parse("[{'T', k} | k <- <<a>>]").unwrap();
        assert!(!reverse_query_or_void_any(&view, &invertible, &base).is_range_void_any());
        let complex = parse("[{k1, k2} | {k1, x} <- <<a>>; {k2, y} <- <<b>>; x = y]").unwrap();
        assert!(reverse_query_or_void_any(&view, &complex, &base).is_range_void_any());
        // Invertible but over a different base object than requested.
        assert!(
            reverse_query_or_void_any(&view, &invertible, &SchemeRef::table("b"))
                .is_range_void_any()
        );
    }

    #[test]
    fn rewrite_with_views_reports_unresolved_schemes() {
        let views = vec![ViewDef::new(
            SchemeRef::table("UProtein"),
            parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        )];
        let q = parse("count <<protein>> + count <<peptidehit>>").unwrap();
        let (rewritten, unresolved) = rewrite_with_views(&q, &views);
        let schemes = rewrite::collect_schemes(&rewritten);
        assert!(schemes.contains(&SchemeRef::table("UProtein")));
        assert!(!schemes.contains(&SchemeRef::table("protein")));
        assert_eq!(unresolved, vec![SchemeRef::table("peptidehit")]);
    }
}
