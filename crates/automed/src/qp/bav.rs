//! BAV (Both-As-View) query reformulation along pathways.
//!
//! A BAV pathway mixes GAV-like steps (`add`/`extend`, whose queries define later
//! objects in terms of earlier ones) and LAV-like steps (`delete`/`contract`, whose
//! queries describe earlier objects in terms of later ones). To reformulate a query
//! posed on one end of a pathway onto the other end, we walk the pathway step by step
//! and apply the appropriate rule at each step:
//!
//! * traversing an `add(o, q)` *backwards* (target → source): substitute `o` by `q`;
//! * traversing a `delete(o, q)` *backwards*: the object `o` exists at the source end,
//!   so nothing needs to change — but traversing it *forwards* (source → target),
//!   references to `o` are substituted by `q` (the LAV view read as a reconstruction);
//! * `extend`/`contract` behave like `add`/`delete` but only their `Range` lower bound
//!   is usable, yielding certain answers;
//! * `rename` substitutes the new name by the old one (or vice versa);
//! * `id` never changes a query.
//!
//! Reformulating target→source is exactly [`crate::qp::gav::unfold_along_pathway`];
//! reformulating source→target is the same unfolding applied to the *reversed*
//! pathway (automatic reversal turns every `delete` into an `add`, so the one rule
//! covers both directions). This module packages both directions and reports whether
//! the result is *complete* (every scheme resolved) or only partial.

use crate::error::AutomedError;
use crate::pathway::Pathway;
use crate::qp::gav;
use crate::schema::Schema;
use iql::ast::Expr;
use iql::rewrite;

/// The outcome of a reformulation: the rewritten query plus the schemes that could not
/// be resolved into the destination schema (empty when the reformulation is complete).
#[derive(Debug, Clone, PartialEq)]
pub struct Reformulation {
    /// The reformulated query.
    pub query: Expr,
    /// Schemes remaining in the query that are not objects of the destination schema.
    pub unresolved: Vec<iql::ast::SchemeRef>,
}

impl Reformulation {
    /// Whether every scheme reference was resolved into the destination schema.
    pub fn is_complete(&self) -> bool {
        self.unresolved.is_empty()
    }
}

/// Reformulate a query posed on the pathway's *target* schema into one posed on its
/// *source* schema. `destination` is the source schema, used to check completeness.
pub fn reformulate_to_source(
    query: &Expr,
    pathway: &Pathway,
    destination: &Schema,
) -> Result<Reformulation, AutomedError> {
    let rewritten = gav::unfold_along_pathway(query, pathway)?;
    Ok(check_completeness(rewritten, destination))
}

/// Reformulate a query posed on the pathway's *source* schema into one posed on its
/// *target* schema (uses the automatically reversed pathway).
pub fn reformulate_to_target(
    query: &Expr,
    pathway: &Pathway,
    destination: &Schema,
) -> Result<Reformulation, AutomedError> {
    let rewritten = gav::unfold_along_pathway(query, &pathway.reverse())?;
    Ok(check_completeness(rewritten, destination))
}

fn check_completeness(query: Expr, destination: &Schema) -> Reformulation {
    let unresolved = rewrite::collect_schemes(&query)
        .into_iter()
        .filter(|s| !destination.contains(s))
        .collect();
    Reformulation { query, unresolved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SchemaObject;
    use crate::transformation::Transformation;
    use iql::ast::SchemeRef;
    use iql::{parse, Evaluator, MapExtents};

    /// pedro → I : adds of UProtein objects, deletes of the covered pedro objects,
    /// contract of the uncovered column — the paper's canonical ES → I shape.
    fn pedro_schema() -> Schema {
        Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
                SchemaObject::column("protein", "organism"),
            ],
        )
        .unwrap()
    }

    fn intersection_pathway() -> Pathway {
        let mut p = Pathway::new("pedro", "I");
        p.push(Transformation::add(
            SchemaObject::table("UProtein"),
            parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        ));
        p.push(Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
        ));
        p.push(Transformation::delete(
            SchemaObject::table("protein"),
            parse("[k | {'PEDRO', k} <- <<UProtein>>]").unwrap(),
        ));
        p.push(Transformation::delete(
            SchemaObject::column("protein", "accession_num"),
            parse("[{k, x} | {'PEDRO', k, x} <- <<UProtein, accession_num>>]").unwrap(),
        ));
        p.push(Transformation::contract_void_any(SchemaObject::column(
            "protein", "organism",
        )));
        p
    }

    fn intersection_schema() -> Schema {
        intersection_pathway().apply_to(&pedro_schema()).unwrap()
    }

    #[test]
    fn target_query_reformulates_completely_to_source() {
        let q = parse("[x | {'PEDRO', k, x} <- <<UProtein, accession_num>>]").unwrap();
        let r = reformulate_to_source(&q, &intersection_pathway(), &pedro_schema()).unwrap();
        assert!(r.is_complete(), "unresolved: {:?}", r.unresolved);

        let mut source = MapExtents::new();
        source.insert_keys("protein", vec![1, 2]);
        source.insert_pairs("protein,accession_num", vec![(1, "P100"), (2, "P200")]);
        let v = Evaluator::new(&source).eval_closed(&r.query).unwrap();
        assert_eq!(v.expect_bag().unwrap().len(), 2);
    }

    #[test]
    fn source_query_reformulates_to_target_via_reversal() {
        // A query over pedro's protein table, answered on the intersection schema.
        let q = parse("count <<protein>>").unwrap();
        let r = reformulate_to_target(&q, &intersection_pathway(), &intersection_schema()).unwrap();
        assert!(r.is_complete(), "unresolved: {:?}", r.unresolved);

        let mut target = MapExtents::new();
        target.insert(
            "UProtein",
            iql::Bag::from_values(vec![
                iql::Value::pair(iql::Value::str("PEDRO"), iql::Value::Int(1)),
                iql::Value::pair(iql::Value::str("gpmDB"), iql::Value::Int(7)),
            ]),
        );
        let v = Evaluator::new(&target).eval_closed(&r.query).unwrap();
        // Only the PEDRO-tagged entry reconstructs pedro's protein extent.
        assert_eq!(v, iql::Value::Int(1));
    }

    #[test]
    fn contracted_objects_reformulate_to_empty_lower_bound() {
        // organism was contracted with Range Void Any: a source query over it can only
        // be answered with the empty (certain) lower bound.
        let q = parse("count <<protein, organism>>").unwrap();
        let r = reformulate_to_target(&q, &intersection_pathway(), &intersection_schema()).unwrap();
        assert!(r.is_complete());
        let v = Evaluator::new(iql::eval::NoExtents)
            .eval_closed(&r.query)
            .unwrap();
        assert_eq!(v, iql::Value::Int(0));
    }

    #[test]
    fn incomplete_reformulation_reports_unresolved_schemes() {
        // A target query that references an object the pathway never defined.
        let q = parse("count <<UPeptideHit>>").unwrap();
        let r = reformulate_to_source(&q, &intersection_pathway(), &pedro_schema()).unwrap();
        assert!(!r.is_complete());
        assert_eq!(r.unresolved, vec![SchemeRef::table("UPeptideHit")]);
    }
}
