//! Query processing over integrated (virtual) schemas.
//!
//! The paper's substrate reformulates queries posed on a global schema into queries on
//! the data sources by exploiting the queries carried by the transformation pathways:
//!
//! * the `add`/`extend` steps act as **GAV** view definitions (global object defined
//!   by a query over "earlier" objects) — [`gav`] performs view unfolding;
//! * the `delete`/`contract` steps act as **LAV** view definitions (source object
//!   described by a query over the integrated schema) — [`lav`] performs view
//!   inversion / rewriting for the simple view shapes the tool generates;
//! * a pathway mixes both kinds of step, so walking a pathway and applying the
//!   appropriate rule at each step gives **BAV** reformulation — [`bav`];
//! * [`evaluator`] puts it together: a [`evaluator::VirtualExtents`] provider resolves
//!   global-schema scheme references by evaluating their contributions against the
//!   registered sources (bag-union semantics across sources, as in the paper), so any
//!   IQL query over the global schema can be answered end-to-end.

pub mod bav;
pub mod evaluator;
pub mod gav;
pub mod lav;

use iql::ast::Expr;
use serde::{Deserialize, Serialize};

/// One contribution to the extent of a virtual (integrated-schema) object: an IQL
/// query plus the source schema it is stated over.
///
/// `source = None` means the query is stated over the integrated schema itself (it
/// references other virtual objects), which is how derived concepts such as the
/// `⟨⟨uPeptideHitToProteinHit_mm⟩⟩` join of the case study are defined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contribution {
    /// The data source schema the query ranges over, or `None` for the integrated
    /// schema itself.
    pub source: Option<String>,
    /// The defining query.
    pub query: Expr,
}

impl Contribution {
    /// A contribution stated over a named source schema.
    pub fn from_source(source: impl Into<String>, query: Expr) -> Self {
        Contribution {
            source: Some(source.into()),
            query,
        }
    }

    /// A contribution stated over the integrated schema itself.
    pub fn derived(query: Expr) -> Self {
        Contribution {
            source: None,
            query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::parse;

    #[test]
    fn contribution_constructors() {
        let c = Contribution::from_source("pedro", parse("[k | k <- <<protein>>]").unwrap());
        assert_eq!(c.source.as_deref(), Some("pedro"));
        let d = Contribution::derived(parse("[k | k <- <<uprotein>>]").unwrap());
        assert!(d.source.is_none());
    }
}
