//! Schema objects.

use iql::ast::SchemeRef;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The construct kind of a schema object within its modelling language.
///
/// The reproduction primarily uses the relational modelling language (`Table`,
/// `Column`); `Element` and `Attribute` cover the simple XML-ish tree language defined
/// in the MDR to demonstrate that the machinery is not relational-specific, and
/// `Generic` covers constructs of user-defined languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConstructKind {
    /// A relational table (extent: bag of key values).
    Table,
    /// A relational column (extent: bag of `{key, value}` pairs).
    Column,
    /// An XML-ish element node.
    Element,
    /// An XML-ish attribute.
    Attribute,
    /// A construct of some other modelling language.
    Generic,
}

impl fmt::Display for ConstructKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructKind::Table => write!(f, "table"),
            ConstructKind::Column => write!(f, "column"),
            ConstructKind::Element => write!(f, "element"),
            ConstructKind::Attribute => write!(f, "attribute"),
            ConstructKind::Generic => write!(f, "construct"),
        }
    }
}

/// A schema object: a scheme plus its modelling-language classification.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemaObject {
    /// The scheme identifying the object, e.g. `⟨⟨protein, accession_num⟩⟩`.
    pub scheme: SchemeRef,
    /// The modelling language the object belongs to, e.g. `"sql"`.
    pub language: String,
    /// The construct kind within that language.
    pub construct: ConstructKind,
}

impl SchemaObject {
    /// A relational table object.
    pub fn table(name: impl Into<String>) -> Self {
        SchemaObject {
            scheme: SchemeRef::table(name),
            language: "sql".into(),
            construct: ConstructKind::Table,
        }
    }

    /// A relational column object.
    pub fn column(table: impl Into<String>, column: impl Into<String>) -> Self {
        SchemaObject {
            scheme: SchemeRef::column(table, column),
            language: "sql".into(),
            construct: ConstructKind::Column,
        }
    }

    /// An object of an arbitrary language/construct.
    pub fn generic(
        scheme: SchemeRef,
        language: impl Into<String>,
        construct: ConstructKind,
    ) -> Self {
        SchemaObject {
            scheme,
            language: language.into(),
            construct,
        }
    }

    /// The canonical string key of the object's scheme.
    pub fn key(&self) -> String {
        self.scheme.key()
    }

    /// For a column-like object, the scheme of the table-like object it belongs to.
    pub fn parent_scheme(&self) -> Option<SchemeRef> {
        if self.scheme.parts.len() >= 2 {
            Some(SchemeRef::new(
                self.scheme.parts[..self.scheme.parts.len() - 1]
                    .iter()
                    .cloned(),
            ))
        } else {
            None
        }
    }

    /// A copy of the object with every scheme part prefixed (provenance tagging used
    /// when federating schemas).
    pub fn prefixed(&self, prefix: &str) -> SchemaObject {
        SchemaObject {
            scheme: self.scheme.prefixed(prefix),
            language: self.language.clone(),
            construct: self.construct,
        }
    }

    /// A copy of the object with a different scheme (used by `rename`).
    pub fn renamed(&self, scheme: SchemeRef) -> SchemaObject {
        SchemaObject {
            scheme,
            language: self.language.clone(),
            construct: self.construct,
        }
    }
}

impl fmt::Display for SchemaObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}", self.language, self.construct, self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_language_and_kind() {
        let t = SchemaObject::table("protein");
        assert_eq!(t.construct, ConstructKind::Table);
        assert_eq!(t.language, "sql");
        assert_eq!(t.key(), "protein");
        let c = SchemaObject::column("protein", "accession_num");
        assert_eq!(c.construct, ConstructKind::Column);
        assert_eq!(c.key(), "protein,accession_num");
    }

    #[test]
    fn parent_scheme_of_column() {
        let c = SchemaObject::column("protein", "accession_num");
        assert_eq!(c.parent_scheme(), Some(SchemeRef::table("protein")));
        assert_eq!(SchemaObject::table("protein").parent_scheme(), None);
    }

    #[test]
    fn prefixing_and_renaming() {
        let c = SchemaObject::column("protein", "accession_num");
        let p = c.prefixed("PEDRO");
        assert_eq!(p.scheme.parts, vec!["PEDRO_protein", "PEDRO_accession_num"]);
        let r = c.renamed(SchemeRef::column("uprotein", "accession_num"));
        assert_eq!(r.key(), "uprotein,accession_num");
        assert_eq!(r.construct, ConstructKind::Column);
    }

    #[test]
    fn display_is_informative() {
        let c = SchemaObject::column("protein", "organism");
        let s = c.to_string();
        assert!(s.contains("sql") && s.contains("column") && s.contains("organism"));
    }
}
