//! The Schemas & Transformations Repository (STR).

use crate::error::AutomedError;
use crate::pathway::Pathway;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The repository of all source, intermediate and integrated schemas and of the
/// pathways between them.
///
/// Pathways are stored in the direction they were defined; because every pathway is
/// automatically reversible, [`Repository::pathway_between`] searches the schema graph
/// treating each stored pathway as a bidirectional edge and returns a composed pathway
/// (reversing stored segments as needed).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Repository {
    schemas: BTreeMap<String, Schema>,
    pathways: Vec<Pathway>,
    /// Names of schemas that are data source schemas (produced by wrappers).
    source_schemas: BTreeSet<String>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a schema. Fails if a schema with the same name exists.
    pub fn add_schema(&mut self, schema: Schema) -> Result<(), AutomedError> {
        if self.schemas.contains_key(&schema.name) {
            return Err(AutomedError::DuplicateSchema(schema.name));
        }
        self.schemas.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Register a schema produced by wrapping a data source.
    pub fn add_source_schema(&mut self, schema: Schema) -> Result<(), AutomedError> {
        let name = schema.name.clone();
        self.add_schema(schema)?;
        self.source_schemas.insert(name);
        Ok(())
    }

    /// Register a schema, replacing any existing schema of the same name. Used when an
    /// integration iteration re-derives the global schema.
    pub fn put_schema(&mut self, schema: Schema) {
        self.schemas.insert(schema.name.clone(), schema);
    }

    /// Remove a schema and every pathway that touches it.
    pub fn remove_schema(&mut self, name: &str) -> Result<Schema, AutomedError> {
        let schema = self
            .schemas
            .remove(name)
            .ok_or_else(|| AutomedError::UnknownSchema(name.to_string()))?;
        self.pathways
            .retain(|p| p.source != name && p.target != name);
        self.source_schemas.remove(name);
        Ok(schema)
    }

    /// Look up a schema by name.
    pub fn schema(&self, name: &str) -> Result<&Schema, AutomedError> {
        self.schemas
            .get(name)
            .ok_or_else(|| AutomedError::UnknownSchema(name.to_string()))
    }

    /// Whether a schema with this name is registered.
    pub fn has_schema(&self, name: &str) -> bool {
        self.schemas.contains_key(name)
    }

    /// Iterate over all schemas in name order.
    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.values()
    }

    /// Names of the registered data source schemas.
    pub fn source_schema_names(&self) -> impl Iterator<Item = &str> {
        self.source_schemas.iter().map(String::as_str)
    }

    /// Whether the named schema is a data source schema.
    pub fn is_source_schema(&self, name: &str) -> bool {
        self.source_schemas.contains(name)
    }

    /// Register a pathway. Both endpoints must already be registered; the pathway is
    /// checked by applying it to its source schema and comparing the result with the
    /// registered target schema (objects must match).
    pub fn add_pathway(&mut self, pathway: Pathway) -> Result<(), AutomedError> {
        let source = self.schema(&pathway.source)?.clone();
        let target = self.schema(&pathway.target)?;
        let produced = pathway.apply_to(&source)?;
        if !produced.syntactically_identical(target) {
            return Err(AutomedError::InvalidTransformation {
                detail: format!(
                    "pathway {} -> {} does not produce the registered target schema",
                    pathway.source, pathway.target
                ),
            });
        }
        self.pathways.push(pathway);
        Ok(())
    }

    /// Register a pathway without verifying that it reproduces the registered target
    /// schema. Used for pathways whose target is defined *by* the pathway (the normal
    /// case during integration: the target is registered as the application result).
    pub fn add_pathway_unchecked(&mut self, pathway: Pathway) {
        self.pathways.push(pathway);
    }

    /// Apply a pathway to its (registered) source schema, register the result, and
    /// store the pathway. Returns the produced schema.
    pub fn derive_schema(&mut self, pathway: Pathway) -> Result<Schema, AutomedError> {
        let source = self.schema(&pathway.source)?.clone();
        let produced = pathway.apply_to(&source)?;
        if self.has_schema(&produced.name) {
            return Err(AutomedError::DuplicateSchema(produced.name));
        }
        self.schemas.insert(produced.name.clone(), produced.clone());
        self.pathways.push(pathway);
        Ok(produced)
    }

    /// All stored pathways.
    pub fn pathways(&self) -> &[Pathway] {
        &self.pathways
    }

    /// Pathways that start or end at the named schema.
    pub fn pathways_touching<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Pathway> {
        self.pathways
            .iter()
            .filter(move |p| p.source == name || p.target == name)
    }

    /// Find a (possibly composed, possibly reversed) pathway from `from` to `to` by
    /// breadth-first search over the schema graph. Returns an empty pathway when
    /// `from == to`.
    pub fn pathway_between(&self, from: &str, to: &str) -> Result<Pathway, AutomedError> {
        if !self.has_schema(from) {
            return Err(AutomedError::UnknownSchema(from.to_string()));
        }
        if !self.has_schema(to) {
            return Err(AutomedError::UnknownSchema(to.to_string()));
        }
        if from == to {
            return Ok(Pathway::new(from, to));
        }
        // BFS over schemas; edges are stored pathways (usable in either direction).
        let mut queue = VecDeque::new();
        let mut visited = BTreeSet::new();
        let mut predecessor: BTreeMap<String, Pathway> = BTreeMap::new();
        visited.insert(from.to_string());
        queue.push_back(from.to_string());
        while let Some(current) = queue.pop_front() {
            for p in &self.pathways {
                let step = if p.source == current {
                    Some(p.clone())
                } else if p.target == current {
                    Some(p.reverse())
                } else {
                    None
                };
                let Some(step) = step else { continue };
                let next = step.target.clone();
                if visited.contains(&next) {
                    continue;
                }
                visited.insert(next.clone());
                predecessor.insert(next.clone(), step);
                if next == to {
                    // Reconstruct by walking predecessors backwards.
                    let mut segments = Vec::new();
                    let mut cursor = to.to_string();
                    while cursor != from {
                        let seg = predecessor
                            .get(&cursor)
                            .expect("predecessor recorded during BFS")
                            .clone();
                        cursor = seg.source.clone();
                        segments.push(seg);
                    }
                    segments.reverse();
                    let mut composed = Pathway::new(from, from);
                    for seg in segments {
                        composed = if composed.is_empty() && composed.target == seg.source {
                            seg
                        } else {
                            composed.compose(&seg)?
                        };
                    }
                    return Ok(composed);
                }
                queue.push_back(next);
            }
        }
        Err(AutomedError::NoPathway {
            from: from.to_string(),
            to: to.to_string(),
        })
    }

    /// Number of registered schemas.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Number of registered pathways.
    pub fn pathway_count(&self) -> usize {
        self.pathways.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SchemaObject;
    use crate::transformation::Transformation;
    use iql::ast::SchemeRef;
    use iql::parse;

    fn repo_with_chain() -> Repository {
        // pedro --(add UProtein)--> mid --(add UProtein.accession_num)--> global
        let mut repo = Repository::new();
        let pedro = Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
            ],
        )
        .unwrap();
        repo.add_source_schema(pedro).unwrap();

        let mut p1 = Pathway::new("pedro", "mid");
        p1.push(Transformation::add(
            SchemaObject::table("UProtein"),
            parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        ));
        repo.derive_schema(p1).unwrap();

        let mut p2 = Pathway::new("mid", "global");
        p2.push(Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
        ));
        repo.derive_schema(p2).unwrap();
        repo
    }

    #[test]
    fn derive_schema_registers_result_and_pathway() {
        let repo = repo_with_chain();
        assert_eq!(repo.schema_count(), 3);
        assert_eq!(repo.pathway_count(), 2);
        assert!(repo
            .schema("global")
            .unwrap()
            .contains(&SchemeRef::column("UProtein", "accession_num")));
        assert!(repo.is_source_schema("pedro"));
        assert!(!repo.is_source_schema("global"));
    }

    #[test]
    fn pathway_between_composes_segments() {
        let repo = repo_with_chain();
        let p = repo.pathway_between("pedro", "global").unwrap();
        assert_eq!(p.source, "pedro");
        assert_eq!(p.target, "global");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn pathway_between_uses_automatic_reversal() {
        let repo = repo_with_chain();
        let p = repo.pathway_between("global", "pedro").unwrap();
        assert_eq!(p.source, "global");
        assert_eq!(p.target, "pedro");
        assert_eq!(p.len(), 2);
        assert!(p.steps().iter().all(|t| t.kind() == "delete"));
    }

    #[test]
    fn pathway_between_same_schema_is_empty() {
        let repo = repo_with_chain();
        let p = repo.pathway_between("pedro", "pedro").unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn missing_pathway_reported() {
        let mut repo = repo_with_chain();
        repo.add_schema(Schema::new("island")).unwrap();
        assert!(matches!(
            repo.pathway_between("pedro", "island"),
            Err(AutomedError::NoPathway { .. })
        ));
        assert!(matches!(
            repo.pathway_between("pedro", "nowhere"),
            Err(AutomedError::UnknownSchema(_))
        ));
    }

    #[test]
    fn add_pathway_verifies_target() {
        let mut repo = repo_with_chain();
        // A pathway claiming to go pedro -> global but producing something else.
        let mut bogus = Pathway::new("pedro", "global");
        bogus.push(Transformation::add(
            SchemaObject::table("Wrong"),
            parse("Range Void Any").unwrap(),
        ));
        assert!(matches!(
            repo.add_pathway(bogus),
            Err(AutomedError::InvalidTransformation { .. })
        ));
    }

    #[test]
    fn remove_schema_drops_its_pathways() {
        let mut repo = repo_with_chain();
        repo.remove_schema("mid").unwrap();
        assert_eq!(repo.schema_count(), 2);
        assert_eq!(repo.pathway_count(), 0);
        assert!(matches!(
            repo.pathway_between("pedro", "global"),
            Err(AutomedError::NoPathway { .. })
        ));
    }

    #[test]
    fn duplicate_schema_rejected_put_replaces() {
        let mut repo = repo_with_chain();
        assert!(matches!(
            repo.add_schema(Schema::new("pedro")),
            Err(AutomedError::DuplicateSchema(_))
        ));
        repo.put_schema(Schema::new("global"));
        assert!(repo.schema("global").unwrap().is_empty());
    }
}
