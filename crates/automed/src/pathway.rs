//! Pathways: sequences of primitive transformations between schemas.

use crate::error::AutomedError;
use crate::schema::Schema;
use crate::transformation::{Provenance, Transformation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pathway `S1 → S2`: an ordered sequence of primitive transformations that, applied
/// to schema `S1`, produce schema `S2`.
///
/// A key property (inherited from the paper's substrate) is that pathways are
/// *automatically reversible*: [`Pathway::reverse`] derives `S2 → S1` by reversing the
/// step order and replacing each step by its dual ([`Transformation::reverse`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pathway {
    /// Name of the schema the pathway starts from.
    pub source: String,
    /// Name of the schema the pathway produces.
    pub target: String,
    steps: Vec<Transformation>,
}

impl Pathway {
    /// An empty pathway between two schemas.
    pub fn new(source: impl Into<String>, target: impl Into<String>) -> Self {
        Pathway {
            source: source.into(),
            target: target.into(),
            steps: Vec::new(),
        }
    }

    /// Build a pathway from a vector of steps.
    pub fn with_steps(
        source: impl Into<String>,
        target: impl Into<String>,
        steps: Vec<Transformation>,
    ) -> Self {
        Pathway {
            source: source.into(),
            target: target.into(),
            steps,
        }
    }

    /// Append a step.
    pub fn push(&mut self, step: Transformation) {
        self.steps.push(step);
    }

    /// Append several steps.
    pub fn extend_steps<I: IntoIterator<Item = Transformation>>(&mut self, steps: I) {
        self.steps.extend(steps);
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[Transformation] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the pathway has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The automatically derived reverse pathway `target → source`.
    pub fn reverse(&self) -> Pathway {
        Pathway {
            source: self.target.clone(),
            target: self.source.clone(),
            steps: self
                .steps
                .iter()
                .rev()
                .map(Transformation::reverse)
                .collect(),
        }
    }

    /// Apply the pathway to a schema, producing the target schema (named after
    /// [`Pathway::target`]).
    pub fn apply_to(&self, schema: &Schema) -> Result<Schema, AutomedError> {
        let mut result = schema.renamed_schema(self.target.clone());
        for step in &self.steps {
            step.apply(&mut result)
                .map_err(|e| AutomedError::InvalidTransformation {
                    detail: format!("step `{step}` failed: {e}"),
                })?;
        }
        Ok(result)
    }

    /// Compose this pathway with a following one (`self.target` must equal
    /// `next.source`).
    pub fn compose(&self, next: &Pathway) -> Result<Pathway, AutomedError> {
        if self.target != next.source {
            return Err(AutomedError::InvalidTransformation {
                detail: format!(
                    "cannot compose pathway to `{}` with pathway from `{}`",
                    self.target, next.source
                ),
            });
        }
        let mut steps = self.steps.clone();
        steps.extend(next.steps.iter().cloned());
        Ok(Pathway {
            source: self.source.clone(),
            target: next.target.clone(),
            steps,
        })
    }

    /// Number of manually-defined steps (the paper's raw effort measure).
    pub fn manual_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|t| t.provenance() == Provenance::Manual)
            .count()
    }

    /// Number of *non-trivial* steps (query part not `Range Void Any`, not `id`) — the
    /// effort measure used for the classical-integration counts in the case study.
    pub fn nontrivial_count(&self) -> usize {
        self.steps.iter().filter(|t| !t.is_trivial()).count()
    }

    /// Number of manually-defined, non-trivial steps.
    pub fn manual_nontrivial_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|t| t.provenance() == Provenance::Manual && !t.is_trivial())
            .count()
    }

    /// Iterate over the `add` steps (useful for building GAV view definitions).
    pub fn add_steps(&self) -> impl Iterator<Item = &Transformation> {
        self.steps
            .iter()
            .filter(|t| matches!(t, Transformation::Add { .. }))
    }
}

impl fmt::Display for Pathway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pathway {} -> {} ({} steps):",
            self.source,
            self.target,
            self.len()
        )?;
        for step in &self.steps {
            writeln!(f, "  {step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SchemaObject;
    use iql::ast::SchemeRef;
    use iql::parse;

    fn pedro_schema() -> Schema {
        Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
                SchemaObject::column("protein", "organism"),
            ],
        )
        .unwrap()
    }

    /// A miniature `ES1 → I` pathway in the paper's shape: adds followed by deletes
    /// followed by contracts.
    fn to_intersection() -> Pathway {
        let mut p = Pathway::new("pedro", "I");
        p.push(Transformation::add(
            SchemaObject::table("UProtein"),
            parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        ));
        p.push(Transformation::add(
            SchemaObject::column("UProtein", "accession_num"),
            parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
        ));
        p.push(Transformation::delete(
            SchemaObject::table("protein"),
            parse("[k | {s, k} <- <<UProtein>>; s = 'PEDRO']").unwrap(),
        ));
        p.push(Transformation::delete(
            SchemaObject::column("protein", "accession_num"),
            parse("[{k, x} | {s, k, x} <- <<UProtein, accession_num>>; s = 'PEDRO']").unwrap(),
        ));
        p.push(Transformation::contract_void_any(SchemaObject::column(
            "protein", "organism",
        )));
        p
    }

    #[test]
    fn apply_produces_intersection_schema() {
        let i = to_intersection().apply_to(&pedro_schema()).unwrap();
        assert_eq!(i.name, "I");
        assert_eq!(i.len(), 2);
        assert!(i.contains(&SchemeRef::table("UProtein")));
        assert!(i.contains(&SchemeRef::column("UProtein", "accession_num")));
        assert!(!i.contains(&SchemeRef::table("protein")));
    }

    #[test]
    fn reverse_is_an_involution_and_restores_schema() {
        let p = to_intersection();
        assert_eq!(p.reverse().reverse(), p);

        let i = p.apply_to(&pedro_schema()).unwrap();
        let back = p.reverse().apply_to(&i).unwrap();
        assert_eq!(back.name, "pedro");
        assert!(back.syntactically_identical(&pedro_schema()));
    }

    #[test]
    fn reverse_swaps_endpoints_and_duals() {
        let r = to_intersection().reverse();
        assert_eq!(r.source, "I");
        assert_eq!(r.target, "pedro");
        assert_eq!(r.steps()[0].kind(), "extend"); // was the final contract
        assert_eq!(r.steps().last().unwrap().kind(), "delete"); // was the first add
    }

    #[test]
    fn effort_counts() {
        let p = to_intersection();
        assert_eq!(p.len(), 5);
        assert_eq!(p.manual_count(), 4); // the contract_void_any is tool-generated
        assert_eq!(p.nontrivial_count(), 4);
        assert_eq!(p.manual_nontrivial_count(), 4);
    }

    #[test]
    fn composition_checks_endpoints() {
        let p = to_intersection();
        let mut q = Pathway::new("I", "G");
        q.push(Transformation::add(
            SchemaObject::column("UProtein", "description"),
            parse("Range Void Any").unwrap(),
        ));
        let composed = p.compose(&q).unwrap();
        assert_eq!(composed.source, "pedro");
        assert_eq!(composed.target, "G");
        assert_eq!(composed.len(), 6);
        assert!(p.compose(&Pathway::new("other", "G")).is_err());
    }

    #[test]
    fn apply_failure_reports_offending_step() {
        let mut p = Pathway::new("pedro", "bad");
        p.push(Transformation::contract_void_any(SchemaObject::table(
            "nonexistent",
        )));
        let err = p.apply_to(&pedro_schema()).unwrap_err();
        match err {
            AutomedError::InvalidTransformation { detail } => {
                assert!(detail.contains("nonexistent"))
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn add_steps_iterator() {
        let p = to_intersection();
        assert_eq!(p.add_steps().count(), 2);
    }
}
