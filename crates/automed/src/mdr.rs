//! The Model Definitions Repository (MDR).
//!
//! The MDR records how the constructs of each higher-level modelling language are
//! defined in terms of the HDM. This is what lets a single set of primitive
//! transformations (`add`, `delete`, `rename`, …) operate uniformly over relational,
//! XML-like or other schemas: a transformation is always stated on an *irreducible*
//! construct of its modelling language, and the MDR says what that construct means at
//! the HDM level.
//!
//! Two languages are registered by default:
//!
//! * `sql` — tables (`⟨⟨t⟩⟩`, one HDM node) and columns (`⟨⟨t, c⟩⟩`, a value node plus
//!   a binary edge to the table node);
//! * `xml` — elements (a node) and attributes (a value node plus an edge), showing
//!   that the machinery is not relational-specific.

use crate::error::AutomedError;
use crate::object::{ConstructKind, SchemaObject};
use crate::schema::Schema;
use hdm::{Edge, HdmSchema, Node};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a construct kind is encoded in the HDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HdmEncoding {
    /// The construct becomes a single HDM node named after the scheme's last part
    /// (qualified by its parents).
    NodeOnly,
    /// The construct becomes a value node plus a binary edge from its parent's node to
    /// the value node.
    NodeAndEdge,
}

/// The definition of one construct of a modelling language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstructDefinition {
    /// The construct kind being defined.
    pub kind: ConstructKind,
    /// How it is encoded in the HDM.
    pub encoding: HdmEncoding,
    /// Expected number of scheme parts (1 for top-level constructs, 2 for nested ones).
    pub scheme_arity: usize,
}

/// A modelling-language definition: a set of construct definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LanguageDefinition {
    /// Language name (e.g. `"sql"`).
    pub name: String,
    constructs: BTreeMap<String, ConstructDefinition>,
}

impl LanguageDefinition {
    /// An empty language definition.
    pub fn new(name: impl Into<String>) -> Self {
        LanguageDefinition {
            name: name.into(),
            constructs: BTreeMap::new(),
        }
    }

    /// Define a construct.
    pub fn define(&mut self, name: impl Into<String>, definition: ConstructDefinition) {
        self.constructs.insert(name.into(), definition);
    }

    /// Look up a construct definition by name.
    pub fn construct(&self, name: &str) -> Option<&ConstructDefinition> {
        self.constructs.get(name)
    }

    /// Find the definition matching a construct kind.
    pub fn definition_for(&self, kind: ConstructKind) -> Option<&ConstructDefinition> {
        self.constructs.values().find(|d| d.kind == kind)
    }

    /// Number of constructs defined.
    pub fn construct_count(&self) -> usize {
        self.constructs.len()
    }
}

/// The Model Definitions Repository: named language definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDefinitions {
    languages: BTreeMap<String, LanguageDefinition>,
}

impl Default for ModelDefinitions {
    fn default() -> Self {
        let mut mdr = ModelDefinitions {
            languages: BTreeMap::new(),
        };
        // Relational language.
        let mut sql = LanguageDefinition::new("sql");
        sql.define(
            "table",
            ConstructDefinition {
                kind: ConstructKind::Table,
                encoding: HdmEncoding::NodeOnly,
                scheme_arity: 1,
            },
        );
        sql.define(
            "column",
            ConstructDefinition {
                kind: ConstructKind::Column,
                encoding: HdmEncoding::NodeAndEdge,
                scheme_arity: 2,
            },
        );
        mdr.register(sql);
        // Simple XML-ish tree language.
        let mut xml = LanguageDefinition::new("xml");
        xml.define(
            "element",
            ConstructDefinition {
                kind: ConstructKind::Element,
                encoding: HdmEncoding::NodeOnly,
                scheme_arity: 1,
            },
        );
        xml.define(
            "attribute",
            ConstructDefinition {
                kind: ConstructKind::Attribute,
                encoding: HdmEncoding::NodeAndEdge,
                scheme_arity: 2,
            },
        );
        mdr.register(xml);
        mdr
    }
}

impl ModelDefinitions {
    /// The default MDR with the `sql` and `xml` languages registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a language definition.
    pub fn register(&mut self, language: LanguageDefinition) {
        self.languages.insert(language.name.clone(), language);
    }

    /// Look up a language definition.
    pub fn language(&self, name: &str) -> Option<&LanguageDefinition> {
        self.languages.get(name)
    }

    /// Names of all registered languages.
    pub fn language_names(&self) -> impl Iterator<Item = &str> {
        self.languages.keys().map(String::as_str)
    }

    /// Lower a schema to an HDM schema using the registered language definitions.
    ///
    /// Objects whose language is unknown, or whose construct kind is not defined for
    /// their language, cause an error — mirroring AutoMed's requirement that every
    /// construct be defined in the MDR before it can be transformed.
    pub fn lower_to_hdm(&self, schema: &Schema) -> Result<HdmSchema, AutomedError> {
        let mut hdm = HdmSchema::new(schema.name.clone());
        // Two passes: nodes first so that edges always find their endpoints.
        for object in schema.objects() {
            let def = self.definition(object)?;
            if def.encoding == HdmEncoding::NodeOnly {
                let name = object.scheme.key();
                if !hdm.has_node(&name) {
                    let _ = hdm.add_node(Node::new(name));
                }
            }
        }
        for object in schema.objects() {
            let def = self.definition(object)?;
            if def.encoding == HdmEncoding::NodeAndEdge {
                let parent = object
                    .parent_scheme()
                    .map(|s| s.key())
                    .unwrap_or_else(|| object.scheme.key());
                if !hdm.has_node(&parent) {
                    let _ = hdm.add_node(Node::new(parent.clone()));
                }
                let value_node = format!("{}:value", object.scheme.key());
                if !hdm.has_node(&value_node) {
                    let _ = hdm.add_node(Node::new(value_node.clone()));
                }
                let edge_name = object
                    .scheme
                    .parts
                    .last()
                    .cloned()
                    .unwrap_or_else(|| object.scheme.key());
                let _ = hdm.add_edge(Edge::binary(edge_name, parent, value_node));
            }
        }
        Ok(hdm)
    }

    fn definition(&self, object: &SchemaObject) -> Result<&ConstructDefinition, AutomedError> {
        let lang =
            self.language(&object.language)
                .ok_or_else(|| AutomedError::UnknownConstruct {
                    language: object.language.clone(),
                    construct: object.construct.to_string(),
                })?;
        lang.definition_for(object.construct)
            .ok_or_else(|| AutomedError::UnknownConstruct {
                language: object.language.clone(),
                construct: object.construct.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::ast::SchemeRef;

    #[test]
    fn default_mdr_has_sql_and_xml() {
        let mdr = ModelDefinitions::new();
        assert!(mdr.language("sql").is_some());
        assert!(mdr.language("xml").is_some());
        assert_eq!(mdr.language("sql").unwrap().construct_count(), 2);
        assert_eq!(mdr.language_names().count(), 2);
    }

    #[test]
    fn lowering_a_relational_schema() {
        let mdr = ModelDefinitions::new();
        let schema = Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
            ],
        )
        .unwrap();
        let hdm = mdr.lower_to_hdm(&schema).unwrap();
        assert!(hdm.has_node("protein"));
        assert!(hdm.has_node("protein,accession_num:value"));
        assert!(hdm.has_edge("accession_num(protein,protein,accession_num:value)"));
        assert!(hdm.validate().is_ok());
    }

    #[test]
    fn lowering_an_xml_schema() {
        let mdr = ModelDefinitions::new();
        let schema = Schema::from_objects(
            "doc",
            [
                SchemaObject::generic(
                    SchemeRef::table("experiment"),
                    "xml",
                    ConstructKind::Element,
                ),
                SchemaObject::generic(
                    SchemeRef::column("experiment", "date"),
                    "xml",
                    ConstructKind::Attribute,
                ),
            ],
        )
        .unwrap();
        let hdm = mdr.lower_to_hdm(&schema).unwrap();
        assert!(hdm.has_node("experiment"));
        assert!(hdm.validate().is_ok());
    }

    #[test]
    fn unknown_language_rejected() {
        let mdr = ModelDefinitions::new();
        let schema = Schema::from_objects(
            "s",
            [SchemaObject::generic(
                SchemeRef::table("thing"),
                "owl",
                ConstructKind::Generic,
            )],
        )
        .unwrap();
        assert!(matches!(
            mdr.lower_to_hdm(&schema),
            Err(AutomedError::UnknownConstruct { .. })
        ));
    }

    #[test]
    fn custom_language_registration() {
        let mut mdr = ModelDefinitions::new();
        let mut rdf = LanguageDefinition::new("rdf");
        rdf.define(
            "class",
            ConstructDefinition {
                kind: ConstructKind::Generic,
                encoding: HdmEncoding::NodeOnly,
                scheme_arity: 1,
            },
        );
        mdr.register(rdf);
        assert!(mdr.language("rdf").is_some());
        let schema = Schema::from_objects(
            "onto",
            [SchemaObject::generic(
                SchemeRef::table("Protein"),
                "rdf",
                ConstructKind::Generic,
            )],
        )
        .unwrap();
        assert!(mdr.lower_to_hdm(&schema).is_ok());
    }
}
