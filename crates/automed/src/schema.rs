//! Schemas: named sets of schema objects.

use crate::error::AutomedError;
use crate::object::SchemaObject;
use iql::ast::SchemeRef;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A schema in the repository: a named set of [`SchemaObject`]s keyed by scheme.
///
/// Schemas are *value types*: pathway application produces new schemas rather than
/// mutating shared state, which keeps the repository's history of source, intermediate
/// and integrated schemas intact (as the STR does in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// The schema's name, unique within a repository.
    pub name: String,
    objects: BTreeMap<String, SchemaObject>,
}

impl Schema {
    /// An empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            objects: BTreeMap::new(),
        }
    }

    /// Build a schema from an iterator of objects. Duplicate schemes are rejected.
    pub fn from_objects<I>(name: impl Into<String>, objects: I) -> Result<Self, AutomedError>
    where
        I: IntoIterator<Item = SchemaObject>,
    {
        let mut schema = Schema::new(name);
        for o in objects {
            schema.add_object(o)?;
        }
        Ok(schema)
    }

    /// Add an object; fails if an object with the same scheme is already present.
    pub fn add_object(&mut self, object: SchemaObject) -> Result<(), AutomedError> {
        let key = object.key();
        if self.objects.contains_key(&key) {
            return Err(AutomedError::DuplicateObject {
                schema: self.name.clone(),
                scheme: object.scheme,
            });
        }
        self.objects.insert(key, object);
        Ok(())
    }

    /// Remove an object by scheme; fails if it is not present.
    pub fn remove_object(&mut self, scheme: &SchemeRef) -> Result<SchemaObject, AutomedError> {
        self.objects
            .remove(&scheme.key())
            .ok_or_else(|| AutomedError::UnknownObject {
                schema: self.name.clone(),
                scheme: scheme.clone(),
            })
    }

    /// Rename an object, keeping its language and construct kind.
    pub fn rename_object(&mut self, from: &SchemeRef, to: SchemeRef) -> Result<(), AutomedError> {
        let obj = self.remove_object(from)?;
        self.add_object(obj.renamed(to))
    }

    /// Whether the schema contains an object with this scheme.
    pub fn contains(&self, scheme: &SchemeRef) -> bool {
        self.objects.contains_key(&scheme.key())
    }

    /// Look up an object by scheme.
    pub fn object(&self, scheme: &SchemeRef) -> Option<&SchemaObject> {
        self.objects.get(&scheme.key())
    }

    /// Iterate over objects in scheme order.
    pub fn objects(&self) -> impl Iterator<Item = &SchemaObject> {
        self.objects.values()
    }

    /// All schemes in the schema, in order.
    pub fn schemes(&self) -> impl Iterator<Item = &SchemeRef> {
        self.objects.values().map(|o| &o.scheme)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the schema has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// A copy of this schema under a different name.
    pub fn renamed_schema(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            objects: self.objects.clone(),
        }
    }

    /// A copy with every object's scheme prefixed by `prefix_` (provenance tagging).
    pub fn prefixed(&self, name: impl Into<String>, prefix: &str) -> Schema {
        Schema {
            name: name.into(),
            objects: self
                .objects
                .values()
                .map(|o| {
                    let p = o.prefixed(prefix);
                    (p.key(), p)
                })
                .collect(),
        }
    }

    /// Whether two schemas contain syntactically identical sets of objects (the
    /// precondition for `ident` in the paper). Names may differ.
    pub fn syntactically_identical(&self, other: &Schema) -> bool {
        self.objects == other.objects
    }

    /// The objects present in `self` but not in `other` (by scheme).
    pub fn objects_not_in(&self, other: &Schema) -> Vec<&SchemaObject> {
        self.objects
            .values()
            .filter(|o| !other.objects.contains_key(&o.key()))
            .collect()
    }

    /// Set-union of two schemas' objects under a new name. Objects present in both are
    /// kept once.
    pub fn union(name: impl Into<String>, left: &Schema, right: &Schema) -> Schema {
        let mut objects = left.objects.clone();
        for (k, v) in &right.objects {
            objects.entry(k.clone()).or_insert_with(|| v.clone());
        }
        Schema {
            name: name.into(),
            objects,
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {} ({} objects):", self.name, self.len())?;
        for o in self.objects() {
            writeln!(f, "  {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pedro_fragment() -> Schema {
        Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
                SchemaObject::column("protein", "organism"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn add_remove_rename() {
        let mut s = pedro_fragment();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&SchemeRef::column("protein", "organism")));
        assert!(matches!(
            s.add_object(SchemaObject::table("protein")),
            Err(AutomedError::DuplicateObject { .. })
        ));
        s.rename_object(
            &SchemeRef::column("protein", "organism"),
            SchemeRef::column("protein", "species"),
        )
        .unwrap();
        assert!(s.contains(&SchemeRef::column("protein", "species")));
        assert!(!s.contains(&SchemeRef::column("protein", "organism")));
        s.remove_object(&SchemeRef::column("protein", "species"))
            .unwrap();
        assert_eq!(s.len(), 2);
        assert!(matches!(
            s.remove_object(&SchemeRef::table("nope")),
            Err(AutomedError::UnknownObject { .. })
        ));
    }

    #[test]
    fn syntactic_identity_ignores_schema_name() {
        let a = pedro_fragment();
        let b = a.renamed_schema("copy");
        assert!(a.syntactically_identical(&b));
        let mut c = b.clone();
        c.remove_object(&SchemeRef::table("protein")).unwrap();
        assert!(!a.syntactically_identical(&c));
    }

    #[test]
    fn union_and_difference_of_objects() {
        let a = pedro_fragment();
        let mut b = Schema::new("other");
        b.add_object(SchemaObject::table("peptidehit")).unwrap();
        b.add_object(SchemaObject::column("protein", "accession_num"))
            .unwrap();
        let u = Schema::union("u", &a, &b);
        assert_eq!(u.len(), 4);
        let only_a = a.objects_not_in(&b);
        assert_eq!(only_a.len(), 2);
        let only_b = b.objects_not_in(&a);
        assert_eq!(only_b.len(), 1);
        assert_eq!(only_b[0].key(), "peptidehit");
    }

    #[test]
    fn prefixed_schema_tags_all_objects() {
        let p = pedro_fragment().prefixed("fed_pedro", "PEDRO");
        assert!(p.contains(&SchemeRef::column("PEDRO_protein", "PEDRO_accession_num")));
        assert_eq!(p.len(), 3);
        assert_eq!(p.name, "fed_pedro");
    }

    #[test]
    fn display_lists_objects() {
        let text = pedro_fragment().to_string();
        assert!(text.contains("protein"));
        assert!(text.contains("3 objects"));
    }
}
