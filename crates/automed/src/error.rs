//! Errors for the transformation and integration substrate.

use iql::ast::SchemeRef;
use std::fmt;

/// Errors raised by schema manipulation, pathway application, repository operations
/// and query processing.
#[derive(Debug, Clone, PartialEq)]
pub enum AutomedError {
    /// The schema already contains an object with this scheme.
    DuplicateObject { schema: String, scheme: SchemeRef },
    /// The schema does not contain an object with this scheme.
    UnknownObject { schema: String, scheme: SchemeRef },
    /// A schema with this name already exists in the repository.
    DuplicateSchema(String),
    /// No schema with this name exists in the repository.
    UnknownSchema(String),
    /// No pathway connects the two schemas.
    NoPathway { from: String, to: String },
    /// A transformation could not be applied to the schema it was aimed at.
    InvalidTransformation { detail: String },
    /// Two schemas that were asserted identical (via `ident`) differ.
    NotUnionCompatible {
        left: String,
        right: String,
        detail: String,
    },
    /// Query processing failed.
    QueryProcessing(String),
    /// An IQL evaluation error surfaced during query processing.
    Eval(iql::EvalError),
    /// An IQL parse error (e.g. when loading stored transformation queries).
    Parse(String),
    /// A modelling-language construct was used that the MDR does not define.
    UnknownConstruct { language: String, construct: String },
}

impl fmt::Display for AutomedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomedError::DuplicateObject { schema, scheme } => {
                write!(f, "schema `{schema}` already contains {scheme}")
            }
            AutomedError::UnknownObject { schema, scheme } => {
                write!(f, "schema `{schema}` has no object {scheme}")
            }
            AutomedError::DuplicateSchema(s) => write!(f, "schema `{s}` already registered"),
            AutomedError::UnknownSchema(s) => write!(f, "unknown schema `{s}`"),
            AutomedError::NoPathway { from, to } => {
                write!(f, "no pathway from `{from}` to `{to}`")
            }
            AutomedError::InvalidTransformation { detail } => {
                write!(f, "invalid transformation: {detail}")
            }
            AutomedError::NotUnionCompatible {
                left,
                right,
                detail,
            } => {
                write!(
                    f,
                    "schemas `{left}` and `{right}` are not union-compatible: {detail}"
                )
            }
            AutomedError::QueryProcessing(detail) => write!(f, "query processing: {detail}"),
            AutomedError::Eval(e) => write!(f, "evaluation error: {e}"),
            AutomedError::Parse(e) => write!(f, "IQL parse error: {e}"),
            AutomedError::UnknownConstruct {
                language,
                construct,
            } => {
                write!(
                    f,
                    "modelling language `{language}` has no construct `{construct}`"
                )
            }
        }
    }
}

impl std::error::Error for AutomedError {}

impl From<iql::EvalError> for AutomedError {
    fn from(e: iql::EvalError) -> Self {
        AutomedError::Eval(e)
    }
}

impl From<iql::ParseError> for AutomedError {
    fn from(e: iql::ParseError) -> Self {
        AutomedError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = AutomedError::UnknownObject {
            schema: "pedro".into(),
            scheme: SchemeRef::table("protein"),
        };
        assert!(e.to_string().contains("pedro"));
        assert!(e.to_string().contains("protein"));
    }

    #[test]
    fn conversion_from_eval_error() {
        let e: AutomedError = iql::EvalError::DivisionByZero.into();
        assert!(matches!(e, AutomedError::Eval(_)));
    }
}
