//! # automed — the schema transformation and integration substrate
//!
//! This crate is a from-scratch Rust implementation of the AutoMed-style machinery the
//! paper builds on:
//!
//! * [`object`] / [`schema`] — schema objects identified by *schemes*
//!   (`⟨⟨t⟩⟩`, `⟨⟨t, c⟩⟩`) and schemas as named sets of such objects;
//! * [`mdr`] — the Model Definitions Repository: how the constructs of a higher-level
//!   modelling language (relational, simple XML trees) are defined in terms of the HDM;
//! * [`transformation`] — the primitive schema transformations `add`, `delete`,
//!   `extend`, `contract`, `rename` and `id`, each carrying an IQL query (or a
//!   `Range q_l q_u` bound), plus provenance (manually defined vs tool-generated) and
//!   the paper's *triviality* classification;
//! * [`pathway`] — sequences of primitive transformations between schemas, their
//!   application to schemas, composition, and **automatic reversal**;
//! * [`repository`] — the Schemas & Transformations Repository (STR);
//! * [`wrapper`] — wrapping relational sources into schemas and a registry of source
//!   extents;
//! * [`union_compat`] — the classical union-compatible integration flow of Figure 1;
//! * [`qp`] — query processing: GAV unfolding, LAV view-based rewriting, BAV pathway
//!   reformulation, and an end-to-end evaluator that answers queries posed on virtual
//!   (integrated) schemas against the underlying data sources.
//!
//! The intersection-schema technique itself — the paper's contribution — lives in the
//! `dataspace-core` crate and is built entirely on the public API of this crate.

pub mod error;
pub mod mdr;
pub mod object;
pub mod pathway;
pub mod qp;
pub mod repository;
pub mod schema;
pub mod transformation;
pub mod union_compat;
pub mod wrapper;

pub use error::AutomedError;
pub use object::{ConstructKind, SchemaObject};
pub use pathway::Pathway;
pub use repository::Repository;
pub use schema::Schema;
pub use transformation::{Provenance, Transformation};

/// Re-export of the scheme type shared with IQL.
pub use iql::ast::SchemeRef;
