//! Classical data integration via union-compatible schemas (Figure 1 of the paper).
//!
//! The classical AutoMed workflow transforms each data source schema `DSi` into a
//! union-compatible schema `USi` via a pathway of `add`/`delete`/`extend`/`contract`
//! steps; the `USi` are verified to be syntactically identical, connected pairwise by
//! `ident` transformations, and one of them is chosen for further improvement into the
//! global schema. This module implements that flow; it is the *baseline methodology*
//! the intersection-schema technique is compared against in the case study.

use crate::error::AutomedError;
use crate::pathway::Pathway;
use crate::repository::Repository;
use crate::schema::Schema;
use crate::transformation::{ident, Transformation};

/// The outcome of a classical union-compatible integration.
#[derive(Debug, Clone)]
pub struct UnionCompatIntegration {
    /// The union-compatible schema produced for each source (all syntactically
    /// identical; in source order).
    pub union_schemas: Vec<Schema>,
    /// The `ident` steps injected between consecutive union-compatible schemas.
    pub ident_steps: Vec<Transformation>,
    /// The selected global schema (a renamed copy of one of the union schemas).
    pub global: Schema,
    /// Total number of non-trivial transformations across all source pathways — the
    /// paper's effort measure for the classical methodology.
    pub nontrivial_transformations: usize,
    /// Total number of manually-defined transformations across all source pathways.
    pub manual_transformations: usize,
}

/// One source's input to the classical integration: its schema name (already in the
/// repository) and the transformation steps taking it to the union-compatible schema.
#[derive(Debug, Clone)]
pub struct SourceIntegration {
    /// Name of the (registered) data source schema.
    pub source: String,
    /// Steps of the pathway `DSi → USi`.
    pub steps: Vec<Transformation>,
}

impl SourceIntegration {
    /// Convenience constructor.
    pub fn new(source: impl Into<String>, steps: Vec<Transformation>) -> Self {
        SourceIntegration {
            source: source.into(),
            steps,
        }
    }
}

/// Run the classical union-compatible integration flow.
///
/// For each source, the pathway `DSi → USi` is applied and registered; the resulting
/// union-compatible schemas are checked to be syntactically identical and connected by
/// `ident` steps; the first one is selected and renamed to `global_name`.
pub fn integrate_union_compatible(
    repository: &mut Repository,
    sources: &[SourceIntegration],
    global_name: &str,
) -> Result<UnionCompatIntegration, AutomedError> {
    if sources.is_empty() {
        return Err(AutomedError::InvalidTransformation {
            detail: "union-compatible integration needs at least one source".into(),
        });
    }
    let mut union_schemas = Vec::with_capacity(sources.len());
    let mut nontrivial = 0usize;
    let mut manual = 0usize;

    for (i, source) in sources.iter().enumerate() {
        let us_name = format!("{}_us{}", source.source, i + 1);
        let pathway =
            Pathway::with_steps(source.source.clone(), us_name.clone(), source.steps.clone());
        nontrivial += pathway.nontrivial_count();
        manual += pathway.manual_count();
        let produced = repository.derive_schema(pathway)?;
        union_schemas.push(produced);
    }

    // Verify pairwise union-compatibility and inject ident steps.
    let mut ident_steps = Vec::new();
    for pair in union_schemas.windows(2) {
        let ids = ident(&pair[0], &pair[1])?;
        let mut p = Pathway::new(pair[0].name.clone(), pair[1].name.clone());
        p.extend_steps(ids.iter().cloned());
        repository.add_pathway_unchecked(p);
        ident_steps.extend(ids);
    }

    // Select the first union-compatible schema as the global schema.
    let global = union_schemas[0].renamed_schema(global_name);
    repository.put_schema(global.clone());
    let mut select = Pathway::new(union_schemas[0].name.clone(), global_name.to_string());
    select.extend_steps(
        ident(&union_schemas[0], &global).expect("renamed copy is syntactically identical"),
    );
    repository.add_pathway_unchecked(select);

    Ok(UnionCompatIntegration {
        union_schemas,
        ident_steps,
        global,
        nontrivial_transformations: nontrivial,
        manual_transformations: manual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SchemaObject;
    use iql::ast::SchemeRef;
    use iql::parse;

    fn repository_with_two_sources() -> Repository {
        let mut repo = Repository::new();
        repo.add_source_schema(
            Schema::from_objects(
                "pedro",
                [
                    SchemaObject::table("protein"),
                    SchemaObject::column("protein", "accession_num"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo.add_source_schema(
            Schema::from_objects(
                "gpmdb",
                [
                    SchemaObject::table("proseq"),
                    SchemaObject::column("proseq", "label"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo
    }

    fn pedro_steps() -> Vec<Transformation> {
        vec![
            Transformation::add(
                SchemaObject::table("UProtein"),
                parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
            ),
            Transformation::add(
                SchemaObject::column("UProtein", "accession_num"),
                parse("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]").unwrap(),
            ),
            Transformation::delete(
                SchemaObject::table("protein"),
                parse("[k | {s, k} <- <<UProtein>>; s = 'PEDRO']").unwrap(),
            ),
            Transformation::delete(
                SchemaObject::column("protein", "accession_num"),
                parse("[{k, x} | {s, k, x} <- <<UProtein, accession_num>>; s = 'PEDRO']").unwrap(),
            ),
        ]
    }

    fn gpmdb_steps() -> Vec<Transformation> {
        vec![
            Transformation::add(
                SchemaObject::table("UProtein"),
                parse("[{'gpmDB', k} | k <- <<proseq>>]").unwrap(),
            ),
            Transformation::add(
                SchemaObject::column("UProtein", "accession_num"),
                parse("[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]").unwrap(),
            ),
            Transformation::delete(
                SchemaObject::table("proseq"),
                parse("[k | {s, k} <- <<UProtein>>; s = 'gpmDB']").unwrap(),
            ),
            Transformation::delete(
                SchemaObject::column("proseq", "label"),
                parse("[{k, x} | {s, k, x} <- <<UProtein, accession_num>>; s = 'gpmDB']").unwrap(),
            ),
        ]
    }

    #[test]
    fn full_flow_produces_identical_union_schemas_and_global() {
        let mut repo = repository_with_two_sources();
        let result = integrate_union_compatible(
            &mut repo,
            &[
                SourceIntegration::new("pedro", pedro_steps()),
                SourceIntegration::new("gpmdb", gpmdb_steps()),
            ],
            "GS1",
        )
        .unwrap();
        assert_eq!(result.union_schemas.len(), 2);
        assert!(result.union_schemas[0].syntactically_identical(&result.union_schemas[1]));
        assert_eq!(result.global.name, "GS1");
        assert!(result.global.contains(&SchemeRef::table("UProtein")));
        assert_eq!(result.nontrivial_transformations, 8);
        assert_eq!(result.manual_transformations, 8);
        // Repository now knows a pathway from each source to the global schema.
        assert!(repo.pathway_between("pedro", "GS1").is_ok());
        assert!(repo.pathway_between("gpmdb", "GS1").is_ok());
    }

    #[test]
    fn incompatible_union_schemas_rejected() {
        let mut repo = repository_with_two_sources();
        // gpmdb's steps omit the accession_num column → not union-compatible.
        let bad_gpmdb = vec![
            Transformation::add(
                SchemaObject::table("UProtein"),
                parse("[{'gpmDB', k} | k <- <<proseq>>]").unwrap(),
            ),
            Transformation::delete(
                SchemaObject::table("proseq"),
                parse("[k | {s, k} <- <<UProtein>>; s = 'gpmDB']").unwrap(),
            ),
            Transformation::contract_void_any(SchemaObject::column("proseq", "label")),
        ];
        let err = integrate_union_compatible(
            &mut repo,
            &[
                SourceIntegration::new("pedro", pedro_steps()),
                SourceIntegration::new("gpmdb", bad_gpmdb),
            ],
            "GS1",
        )
        .unwrap_err();
        assert!(matches!(err, AutomedError::NotUnionCompatible { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        let mut repo = Repository::new();
        assert!(integrate_union_compatible(&mut repo, &[], "G").is_err());
    }
}
