//! Wrapping data sources and the registry of source extents.
//!
//! Wrapping is the first step of every integration workflow: each data source is
//! wrapped to produce a *data source schema* held in the repository, and the wrapper
//! remains responsible for answering extent requests against the live source. The
//! [`SourceRegistry`] owns the wrapped (in-memory) databases and hands out
//! [`iql::eval::ExtentProvider`] views scoped to a single source — which is what the
//! query processor needs, since transformation queries are always stated over a
//! specific source schema.

use crate::error::AutomedError;
use crate::object::SchemaObject;
use crate::schema::Schema;
use iql::ast::SchemeRef;
use iql::error::EvalError;
use iql::eval::ExtentProvider;
use iql::value::Bag;
use relational::wrapper::{scheme_objects, RelConstruct};
use relational::{Database, RelSchema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Wrap a relational schema as a repository schema: one object per table and per
/// column, using the abbreviated relational schemes of the paper.
pub fn wrap_relational(schema: &RelSchema) -> Schema {
    let objects = scheme_objects(schema)
        .into_iter()
        .map(|w| match w.construct {
            RelConstruct::Table => SchemaObject::table(w.scheme.parts[0].clone()),
            RelConstruct::Column => {
                SchemaObject::column(w.scheme.parts[0].clone(), w.scheme.parts[1].clone())
            }
        });
    Schema::from_objects(schema.name.clone(), objects)
        .expect("relational schemas cannot contain duplicate schemes")
}

/// Owns the wrapped data sources and answers extent requests per source.
#[derive(Debug, Default)]
pub struct SourceRegistry {
    sources: BTreeMap<String, Database>,
}

impl SourceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a database under its schema name and return its wrapped schema.
    pub fn add_source(&mut self, database: Database) -> Result<Schema, AutomedError> {
        let name = database.name().to_string();
        if self.sources.contains_key(&name) {
            return Err(AutomedError::DuplicateSchema(name));
        }
        let schema = wrap_relational(database.schema());
        self.sources.insert(name, database);
        Ok(schema)
    }

    /// The database registered under a source name.
    pub fn database(&self, source: &str) -> Result<&Database, AutomedError> {
        self.sources
            .get(source)
            .ok_or_else(|| AutomedError::UnknownSchema(source.to_string()))
    }

    /// Mutable access to a registered database (e.g. to load more rows).
    pub fn database_mut(&mut self, source: &str) -> Result<&mut Database, AutomedError> {
        self.sources
            .get_mut(source)
            .ok_or_else(|| AutomedError::UnknownSchema(source.to_string()))
    }

    /// Names of all registered sources, in order.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.keys().map(String::as_str)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The combined data version of every registered source: changes whenever any
    /// source database mutates, so providers layered over the registry can expose
    /// it through [`iql::eval::ExtentProvider::version`] and keep plan caches
    /// honest.
    pub fn data_version(&self) -> u64 {
        self.sources
            .values()
            .fold(0u64, |acc, db| acc.wrapping_add(db.data_version()))
    }

    /// The extent of a scheme within a specific source (shared handle; the
    /// database memoises computed extents).
    pub fn extent(&self, source: &str, scheme: &SchemeRef) -> Result<Arc<Bag>, AutomedError> {
        let db = self.database(source)?;
        Ok(db.extent(scheme)?)
    }

    /// An [`ExtentProvider`] scoped to a single source.
    pub fn provider_for(&self, source: &str) -> Result<ScopedProvider<'_>, AutomedError> {
        let db = self.database(source)?;
        Ok(ScopedProvider { db })
    }
}

/// An extent provider that resolves schemes against one registered source.
#[derive(Debug, Clone, Copy)]
pub struct ScopedProvider<'a> {
    db: &'a Database,
}

impl ExtentProvider for ScopedProvider<'_> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        self.db.extent(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::{parse, Evaluator};
    use relational::schema::{DataType, RelColumn, RelTable};

    fn pedro_db() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("protein", vec![1.into(), "P100".into()]).unwrap();
        db.insert("protein", vec![2.into(), "P200".into()]).unwrap();
        db
    }

    #[test]
    fn wrapping_produces_table_and_column_objects() {
        let schema = wrap_relational(pedro_db().schema());
        assert_eq!(schema.name, "pedro");
        assert_eq!(schema.len(), 3);
        assert!(schema.contains(&SchemeRef::table("protein")));
        assert!(schema.contains(&SchemeRef::column("protein", "accession_num")));
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = SourceRegistry::new();
        let schema = reg.add_source(pedro_db()).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.source_names().collect::<Vec<_>>(), vec!["pedro"]);
        let bag = reg.extent("pedro", &SchemeRef::table("protein")).unwrap();
        assert_eq!(bag.len(), 2);
        assert!(reg.extent("gpmdb", &SchemeRef::table("protein")).is_err());
    }

    #[test]
    fn duplicate_source_rejected() {
        let mut reg = SourceRegistry::new();
        reg.add_source(pedro_db()).unwrap();
        assert!(matches!(
            reg.add_source(pedro_db()),
            Err(AutomedError::DuplicateSchema(_))
        ));
    }

    #[test]
    fn scoped_provider_supports_iql_evaluation() {
        let mut reg = SourceRegistry::new();
        reg.add_source(pedro_db()).unwrap();
        let provider = reg.provider_for("pedro").unwrap();
        let q = parse("[x | {k, x} <- <<protein, accession_num>>; k = 1]").unwrap();
        let v = Evaluator::new(provider).eval_closed(&q).unwrap();
        assert_eq!(v.expect_bag().unwrap().items(), &[iql::Value::str("P100")]);
    }

    #[test]
    fn database_mut_allows_loading_more_rows() {
        let mut reg = SourceRegistry::new();
        reg.add_source(pedro_db()).unwrap();
        reg.database_mut("pedro")
            .unwrap()
            .insert("protein", vec![3.into(), "P300".into()])
            .unwrap();
        assert_eq!(
            reg.extent("pedro", &SchemeRef::table("protein"))
                .unwrap()
                .len(),
            3
        );
    }
}
