//! HDM nodes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of an HDM schema.
///
/// Nodes are identified by name within a schema and represent extensional concepts:
/// their extent is a bag of scalar values. In the encoding of the relational model a
/// table `t` becomes a node `⟨⟨t⟩⟩` whose extent is the bag of primary-key values, and
/// each column `c` becomes an edge between `⟨⟨t⟩⟩` and a node holding the column's
/// values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Node {
    /// The node's name, unique within its schema.
    pub name: String,
}

impl Node {
    /// Create a node with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Node { name: name.into() }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨⟨{}⟩⟩", self.name)
    }
}

impl From<&str> for Node {
    fn from(name: &str) -> Self {
        Node::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_uses_scheme_brackets() {
        assert_eq!(Node::new("protein").to_string(), "⟨⟨protein⟩⟩");
    }

    #[test]
    fn nodes_compare_by_name() {
        assert_eq!(Node::new("a"), Node::from("a"));
        assert!(Node::new("a") < Node::new("b"));
    }
}
