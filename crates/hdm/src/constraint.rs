//! HDM constraints.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A constraint over the extents of HDM schema elements.
///
/// The HDM constraint language is deliberately small; higher-level modelling languages
/// compile their own integrity notions (primary keys, foreign keys, cardinalities)
/// into combinations of these primitives.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// The extent of `sub` is contained (as a set) in the extent of `sup`.
    Inclusion { sub: String, sup: String },
    /// The extents of `left` and `right` are disjoint.
    Exclusion { left: String, right: String },
    /// The extent of `whole` equals the union of the extents of `parts`.
    Union { whole: String, parts: Vec<String> },
    /// Every value of node `node` participates in position `position` of edge `edge`.
    Mandatory {
        edge: String,
        node: String,
        position: usize,
    },
    /// Each value appears at most once in position `position` of edge `edge`.
    Unique { edge: String, position: usize },
    /// The binary edge `edge` is reflexive over its node.
    Reflexive { edge: String },
}

impl Constraint {
    /// A short keyword naming the constraint kind, used in error messages and displays.
    pub fn kind(&self) -> &'static str {
        match self {
            Constraint::Inclusion { .. } => "inclusion",
            Constraint::Exclusion { .. } => "exclusion",
            Constraint::Union { .. } => "union",
            Constraint::Mandatory { .. } => "mandatory",
            Constraint::Unique { .. } => "unique",
            Constraint::Reflexive { .. } => "reflexive",
        }
    }

    /// The names of all schema elements (nodes or edge identities) this constraint
    /// refers to. Used by schema validation to detect dangling constraints.
    pub fn referenced_elements(&self) -> Vec<&str> {
        match self {
            Constraint::Inclusion { sub, sup } => vec![sub, sup],
            Constraint::Exclusion { left, right } => vec![left, right],
            Constraint::Union { whole, parts } => {
                let mut v: Vec<&str> = vec![whole];
                v.extend(parts.iter().map(|s| s.as_str()));
                v
            }
            Constraint::Mandatory { edge, node, .. } => vec![edge, node],
            Constraint::Unique { edge, .. } => vec![edge],
            Constraint::Reflexive { edge } => vec![edge],
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Inclusion { sub, sup } => write!(f, "{sub} ⊆ {sup}"),
            Constraint::Exclusion { left, right } => write!(f, "{left} ∩ {right} = ∅"),
            Constraint::Union { whole, parts } => {
                write!(f, "{whole} = {}", parts.join(" ∪ "))
            }
            Constraint::Mandatory {
                edge,
                node,
                position,
            } => write!(f, "mandatory({node} in {edge}[{position}])"),
            Constraint::Unique { edge, position } => write!(f, "unique({edge}[{position}])"),
            Constraint::Reflexive { edge } => write!(f, "reflexive({edge})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_elements_cover_all_variants() {
        let c = Constraint::Union {
            whole: "protein".into(),
            parts: vec!["pedro_protein".into(), "gpmdb_proseq".into()],
        };
        assert_eq!(
            c.referenced_elements(),
            vec!["protein", "pedro_protein", "gpmdb_proseq"]
        );
        assert_eq!(c.kind(), "union");

        let m = Constraint::Mandatory {
            edge: "accession(protein,string)".into(),
            node: "protein".into(),
            position: 0,
        };
        assert_eq!(m.referenced_elements().len(), 2);
    }

    #[test]
    fn display_formats() {
        let c = Constraint::Inclusion {
            sub: "a".into(),
            sup: "b".into(),
        };
        assert_eq!(c.to_string(), "a ⊆ b");
        let u = Constraint::Unique {
            edge: "e".into(),
            position: 1,
        };
        assert_eq!(u.to_string(), "unique(e[1])");
    }
}
