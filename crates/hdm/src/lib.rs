//! # HDM — the Hypergraph Data Model
//!
//! The Hypergraph Data Model (HDM) is the low-level *common data model* on which the
//! AutoMed-style integration substrate of this workspace is built. Higher-level
//! modelling languages (relational, XML-like trees, …) are defined in terms of the HDM
//! by the Model Definitions Repository in the `automed` crate.
//!
//! An HDM schema is a triple `⟨Nodes, Edges, Constraints⟩`:
//!
//! * a **node** represents a named extensional concept and carries a bag of scalar
//!   values as its extent;
//! * an **edge** is a (possibly named) hyperedge over nodes and other edges and carries
//!   a bag of value tuples as its extent;
//! * a **constraint** restricts the allowable extents (inclusion, exclusion, union,
//!   mandatory and unique participation, reflexivity).
//!
//! The crate also provides [`instance::HdmInstance`], an in-memory store of HDM-level
//! extents used by tests and by the relational wrapper when it lowers a relational
//! database into the HDM.
//!
//! ```
//! use hdm::{HdmSchema, Node, Edge, HdmRef};
//!
//! let mut schema = HdmSchema::new("example");
//! schema.add_node(Node::new("protein")).unwrap();
//! schema.add_node(Node::new("accession")).unwrap();
//! schema
//!     .add_edge(Edge::new(
//!         Some("protein_accession"),
//!         vec![HdmRef::node("protein"), HdmRef::node("accession")],
//!     ))
//!     .unwrap();
//! assert!(schema.validate().is_ok());
//! ```

pub mod constraint;
pub mod edge;
pub mod error;
pub mod instance;
pub mod node;
pub mod schema;
pub mod value;

pub use constraint::Constraint;
pub use edge::{Edge, HdmRef};
pub use error::HdmError;
pub use instance::HdmInstance;
pub use node::Node;
pub use schema::HdmSchema;
pub use value::{HdmTuple, HdmValue};
