//! HDM hyperedges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a participant of a hyperedge: either a node or another edge.
///
/// HDM edges are *nested* hyperedges — an edge may connect not only nodes but also
/// other edges, which is how higher-level constructs such as relational columns over
/// multi-attribute keys are encoded.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HdmRef {
    /// Reference to a node by name.
    Node(String),
    /// Reference to an edge by its identity (see [`Edge::identity`]).
    Edge(String),
}

impl HdmRef {
    /// Reference a node by name.
    pub fn node(name: impl Into<String>) -> Self {
        HdmRef::Node(name.into())
    }

    /// Reference an edge by its identity string.
    pub fn edge(identity: impl Into<String>) -> Self {
        HdmRef::Edge(identity.into())
    }

    /// The referenced name/identity, independent of whether it is a node or an edge.
    pub fn name(&self) -> &str {
        match self {
            HdmRef::Node(n) | HdmRef::Edge(n) => n,
        }
    }
}

impl fmt::Display for HdmRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdmRef::Node(n) => write!(f, "{n}"),
            HdmRef::Edge(e) => write!(f, "edge:{e}"),
        }
    }
}

/// A hyperedge of an HDM schema.
///
/// An edge may be named or anonymous and connects one or more participants (nodes or
/// other edges). Its extent is a bag of tuples whose arity equals the number of
/// participants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Optional edge name. Anonymous edges are identified purely by their participants.
    pub name: Option<String>,
    /// The participants, in order; the extent tuples follow this order.
    pub participants: Vec<HdmRef>,
}

impl Edge {
    /// Create a new edge.
    pub fn new(name: Option<&str>, participants: Vec<HdmRef>) -> Self {
        Edge {
            name: name.map(|s| s.to_string()),
            participants,
        }
    }

    /// Create a named binary edge between two nodes — the most common shape produced
    /// by the relational wrapper (table node ↔ column value node).
    pub fn binary(name: impl Into<String>, from: impl Into<String>, to: impl Into<String>) -> Self {
        Edge {
            name: Some(name.into()),
            participants: vec![HdmRef::Node(from.into()), HdmRef::Node(to.into())],
        }
    }

    /// A canonical identity string for the edge, used as its key within a schema.
    ///
    /// Named edges are identified by `name(p1,…,pn)`; anonymous edges by `_(p1,…,pn)`.
    pub fn identity(&self) -> String {
        let parts: Vec<&str> = self.participants.iter().map(|p| p.name()).collect();
        format!(
            "{}({})",
            self.name.as_deref().unwrap_or("_"),
            parts.join(",")
        )
    }

    /// The arity of the edge (number of participants).
    pub fn arity(&self) -> usize {
        self.participants.len()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨⟨{}⟩⟩", self.identity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_of_named_edge() {
        let e = Edge::binary("accession", "protein", "string");
        assert_eq!(e.identity(), "accession(protein,string)");
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn identity_of_anonymous_edge() {
        let e = Edge::new(None, vec![HdmRef::node("a"), HdmRef::node("b")]);
        assert_eq!(e.identity(), "_(a,b)");
    }

    #[test]
    fn edges_may_reference_edges() {
        let e = Edge::new(
            Some("nested"),
            vec![
                HdmRef::edge("accession(protein,string)"),
                HdmRef::node("score"),
            ],
        );
        assert_eq!(e.participants[0].name(), "accession(protein,string)");
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn display_uses_scheme_brackets() {
        let e = Edge::binary("c", "a", "b");
        assert_eq!(e.to_string(), "⟨⟨c(a,b)⟩⟩");
    }
}
