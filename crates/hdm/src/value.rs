//! Scalar values and tuples carried by HDM extents.
//!
//! HDM extents are bags of flat tuples of scalar values. Richer value structure
//! (nested bags, named records) lives in the IQL layer; at the HDM level every extent
//! row is a [`HdmTuple`] of [`HdmValue`]s.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar value stored in an HDM extent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum HdmValue {
    /// Absent / unknown value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is normalised to `Null` on construction via [`HdmValue::float`].
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl HdmValue {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        HdmValue::Str(s.into())
    }

    /// Build a float value, normalising `NaN` to `Null` so that ordering is total.
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            HdmValue::Null
        } else {
            HdmValue::Float(f)
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, HdmValue::Null)
    }

    /// A short tag describing the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            HdmValue::Null => "null",
            HdmValue::Bool(_) => "bool",
            HdmValue::Int(_) => "int",
            HdmValue::Float(_) => "float",
            HdmValue::Str(_) => "string",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            HdmValue::Null => 0,
            HdmValue::Bool(_) => 1,
            HdmValue::Int(_) => 2,
            HdmValue::Float(_) => 3,
            HdmValue::Str(_) => 4,
        }
    }
}

impl PartialEq for HdmValue {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HdmValue {}

impl PartialOrd for HdmValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HdmValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use HdmValue::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for HdmValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            HdmValue::Null => 0u8.hash(state),
            HdmValue::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            HdmValue::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            HdmValue::Float(f) => {
                // Hash floats through their bit pattern; equal ints/floats may hash
                // differently but hashing is only used for grouping identical rows.
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            HdmValue::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for HdmValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdmValue::Null => write!(f, "null"),
            HdmValue::Bool(b) => write!(f, "{b}"),
            HdmValue::Int(i) => write!(f, "{i}"),
            HdmValue::Float(x) => write!(f, "{x}"),
            HdmValue::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for HdmValue {
    fn from(v: i64) -> Self {
        HdmValue::Int(v)
    }
}

impl From<&str> for HdmValue {
    fn from(v: &str) -> Self {
        HdmValue::Str(v.to_string())
    }
}

impl From<String> for HdmValue {
    fn from(v: String) -> Self {
        HdmValue::Str(v)
    }
}

impl From<bool> for HdmValue {
    fn from(v: bool) -> Self {
        HdmValue::Bool(v)
    }
}

impl From<f64> for HdmValue {
    fn from(v: f64) -> Self {
        HdmValue::float(v)
    }
}

/// A flat tuple of scalar values: one row of an HDM extent.
pub type HdmTuple = Vec<HdmValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_is_normalised_to_null() {
        assert!(HdmValue::float(f64::NAN).is_null());
        assert_eq!(HdmValue::float(1.5), HdmValue::Float(1.5));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(HdmValue::Int(2), HdmValue::Float(2.0));
        assert!(HdmValue::Int(2) < HdmValue::Float(2.5));
        assert!(HdmValue::Float(1.5) < HdmValue::Int(2));
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            HdmValue::str("b"),
            HdmValue::Null,
            HdmValue::Int(3),
            HdmValue::Bool(true),
            HdmValue::Float(0.5),
            HdmValue::str("a"),
        ];
        vals.sort();
        assert_eq!(vals[0], HdmValue::Null);
        assert_eq!(vals.last().unwrap(), &HdmValue::str("b"));
    }

    #[test]
    fn display_round_trips_the_shape() {
        assert_eq!(HdmValue::str("abc").to_string(), "'abc'");
        assert_eq!(HdmValue::Int(7).to_string(), "7");
        assert_eq!(HdmValue::Null.to_string(), "null");
    }

    #[test]
    fn conversions() {
        assert_eq!(HdmValue::from(3i64), HdmValue::Int(3));
        assert_eq!(HdmValue::from("x"), HdmValue::str("x"));
        assert_eq!(HdmValue::from(true), HdmValue::Bool(true));
    }
}
