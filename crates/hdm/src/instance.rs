//! In-memory HDM instances (extents).

use crate::error::HdmError;
use crate::schema::HdmSchema;
use crate::value::{HdmTuple, HdmValue};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An instance of an HDM schema: a bag of tuples per node/edge.
///
/// Node extents hold 1-tuples; edge extents hold tuples whose arity equals the edge's
/// number of participants. Bags are represented as `Vec`s — duplicates are meaningful
/// (the integration layer uses bag-union semantics by default, as in the paper).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HdmInstance {
    extents: BTreeMap<String, Vec<HdmTuple>>,
}

impl HdmInstance {
    /// Create an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a tuple into the extent of the given element (node name or edge identity).
    pub fn insert(&mut self, element: impl Into<String>, tuple: HdmTuple) {
        self.extents.entry(element.into()).or_default().push(tuple);
    }

    /// Insert a scalar into a node extent (wraps it into a 1-tuple).
    pub fn insert_scalar(&mut self, element: impl Into<String>, value: HdmValue) {
        self.insert(element, vec![value]);
    }

    /// The extent of an element; empty if the element has no tuples.
    pub fn extent(&self, element: &str) -> &[HdmTuple] {
        self.extents.get(element).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tuples stored for an element.
    pub fn cardinality(&self, element: &str) -> usize {
        self.extent(element).len()
    }

    /// All populated element names.
    pub fn elements(&self) -> impl Iterator<Item = &str> {
        self.extents.keys().map(String::as_str)
    }

    /// Total number of tuples across all extents.
    pub fn total_tuples(&self) -> usize {
        self.extents.values().map(Vec::len).sum()
    }

    /// Check this instance against a schema: every populated element must exist in the
    /// schema and edge extents must have the correct arity. Node extents must be
    /// 1-tuples.
    pub fn validate_against(&self, schema: &HdmSchema) -> Result<(), HdmError> {
        for (element, tuples) in &self.extents {
            if schema.has_node(element) {
                if let Some(bad) = tuples.iter().find(|t| t.len() != 1) {
                    return Err(HdmError::ArityMismatch {
                        element: element.clone(),
                        expected: 1,
                        found: bad.len(),
                    });
                }
            } else if let Some(edge) = schema.edge(element) {
                let arity = edge.arity();
                if let Some(bad) = tuples.iter().find(|t| t.len() != arity) {
                    return Err(HdmError::ArityMismatch {
                        element: element.clone(),
                        expected: arity,
                        found: bad.len(),
                    });
                }
            } else {
                return Err(HdmError::UnknownNode(element.clone()));
            }
        }
        self.check_constraints(schema)
    }

    fn check_constraints(&self, schema: &HdmSchema) -> Result<(), HdmError> {
        use crate::constraint::Constraint;
        for c in schema.constraints() {
            match c {
                Constraint::Inclusion { sub, sup } => {
                    let sup_set: std::collections::BTreeSet<&HdmTuple> =
                        self.extent(sup).iter().collect();
                    if let Some(missing) = self.extent(sub).iter().find(|t| !sup_set.contains(*t)) {
                        return Err(HdmError::ConstraintViolation {
                            constraint: c.to_string(),
                            detail: format!("tuple {missing:?} of `{sub}` not in `{sup}`"),
                        });
                    }
                }
                Constraint::Exclusion { left, right } => {
                    let right_set: std::collections::BTreeSet<&HdmTuple> =
                        self.extent(right).iter().collect();
                    if let Some(shared) = self.extent(left).iter().find(|t| right_set.contains(*t))
                    {
                        return Err(HdmError::ConstraintViolation {
                            constraint: c.to_string(),
                            detail: format!("tuple {shared:?} appears in both extents"),
                        });
                    }
                }
                Constraint::Unique { edge, position } => {
                    let mut seen = std::collections::BTreeSet::new();
                    for t in self.extent(edge) {
                        if let Some(v) = t.get(*position) {
                            if !seen.insert(v.clone()) {
                                return Err(HdmError::ConstraintViolation {
                                    constraint: c.to_string(),
                                    detail: format!("value {v} repeated at position {position}"),
                                });
                            }
                        }
                    }
                }
                // Union / Mandatory / Reflexive are advisory at the instance level in
                // this implementation: the integration layer materialises unions
                // explicitly through transformation queries.
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::edge::Edge;
    use crate::node::Node;

    fn schema() -> HdmSchema {
        let mut s = HdmSchema::new("s");
        s.add_node(Node::new("protein")).unwrap();
        s.add_node(Node::new("string")).unwrap();
        s.add_edge(Edge::binary("accession", "protein", "string"))
            .unwrap();
        s
    }

    #[test]
    fn extent_round_trip() {
        let mut inst = HdmInstance::new();
        inst.insert_scalar("protein", HdmValue::Int(1));
        inst.insert(
            "accession(protein,string)",
            vec![HdmValue::Int(1), HdmValue::str("P01234")],
        );
        assert_eq!(inst.cardinality("protein"), 1);
        assert_eq!(inst.cardinality("accession(protein,string)"), 1);
        assert_eq!(inst.total_tuples(), 2);
        assert!(inst.validate_against(&schema()).is_ok());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut inst = HdmInstance::new();
        inst.insert("accession(protein,string)", vec![HdmValue::Int(1)]);
        let err = inst.validate_against(&schema()).unwrap_err();
        assert!(matches!(err, HdmError::ArityMismatch { expected: 2, .. }));
    }

    #[test]
    fn unknown_element_detected() {
        let mut inst = HdmInstance::new();
        inst.insert_scalar("nope", HdmValue::Int(1));
        assert!(matches!(
            inst.validate_against(&schema()),
            Err(HdmError::UnknownNode(_))
        ));
    }

    #[test]
    fn duplicates_are_preserved_as_a_bag() {
        let mut inst = HdmInstance::new();
        inst.insert_scalar("protein", HdmValue::Int(1));
        inst.insert_scalar("protein", HdmValue::Int(1));
        assert_eq!(inst.cardinality("protein"), 2);
    }

    #[test]
    fn inclusion_constraint_checked() {
        let mut s = schema();
        s.add_node(Node::new("reviewed_protein")).unwrap();
        s.add_constraint(Constraint::Inclusion {
            sub: "reviewed_protein".into(),
            sup: "protein".into(),
        })
        .unwrap();
        let mut inst = HdmInstance::new();
        inst.insert_scalar("protein", HdmValue::Int(1));
        inst.insert_scalar("reviewed_protein", HdmValue::Int(2));
        assert!(matches!(
            inst.validate_against(&s),
            Err(HdmError::ConstraintViolation { .. })
        ));
        inst.insert_scalar("protein", HdmValue::Int(2));
        assert!(inst.validate_against(&s).is_ok());
    }

    #[test]
    fn unique_constraint_checked() {
        let mut s = schema();
        s.add_constraint(Constraint::Unique {
            edge: "accession(protein,string)".into(),
            position: 0,
        })
        .unwrap();
        let mut inst = HdmInstance::new();
        inst.insert(
            "accession(protein,string)",
            vec![HdmValue::Int(1), HdmValue::str("a")],
        );
        inst.insert(
            "accession(protein,string)",
            vec![HdmValue::Int(1), HdmValue::str("b")],
        );
        assert!(matches!(
            inst.validate_against(&s),
            Err(HdmError::ConstraintViolation { .. })
        ));
    }
}
