//! HDM schemas: named collections of nodes, edges and constraints.

use crate::constraint::Constraint;
use crate::edge::{Edge, HdmRef};
use crate::error::HdmError;
use crate::node::Node;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An HDM schema: a set of nodes, a set of hyperedges over them, and constraints.
///
/// Element collections are kept in `BTreeMap`s so that iteration order (and therefore
/// serialisation, display and derived schema construction) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdmSchema {
    /// Schema name (unique within a repository).
    pub name: String,
    nodes: BTreeMap<String, Node>,
    edges: BTreeMap<String, Edge>,
    constraints: Vec<Constraint>,
}

impl HdmSchema {
    /// Create an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        HdmSchema {
            name: name.into(),
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
            constraints: Vec::new(),
        }
    }

    /// Add a node; fails if a node with the same name exists.
    pub fn add_node(&mut self, node: Node) -> Result<(), HdmError> {
        if self.nodes.contains_key(&node.name) {
            return Err(HdmError::DuplicateNode(node.name));
        }
        self.nodes.insert(node.name.clone(), node);
        Ok(())
    }

    /// Add an edge; all participants must already exist and the identity must be fresh.
    pub fn add_edge(&mut self, edge: Edge) -> Result<(), HdmError> {
        if edge.participants.is_empty() {
            return Err(HdmError::EmptyEdge(edge.identity()));
        }
        for p in &edge.participants {
            match p {
                HdmRef::Node(n) => {
                    if !self.nodes.contains_key(n) {
                        return Err(HdmError::UnknownNode(n.clone()));
                    }
                }
                HdmRef::Edge(e) => {
                    if !self.edges.contains_key(e) {
                        return Err(HdmError::UnknownEdge(e.clone()));
                    }
                }
            }
        }
        let id = edge.identity();
        if self.edges.contains_key(&id) {
            return Err(HdmError::DuplicateEdge(id));
        }
        self.edges.insert(id, edge);
        Ok(())
    }

    /// Add a constraint; referenced elements must exist.
    pub fn add_constraint(&mut self, constraint: Constraint) -> Result<(), HdmError> {
        for el in constraint.referenced_elements() {
            if !self.contains_element(el) {
                return Err(HdmError::DanglingConstraint {
                    constraint: constraint.kind().to_string(),
                    element: el.to_string(),
                });
            }
        }
        self.constraints.push(constraint);
        Ok(())
    }

    /// Remove a node. Fails if any edge still references it.
    pub fn remove_node(&mut self, name: &str) -> Result<Node, HdmError> {
        if let Some(edge) = self.edges.values().find(|e| {
            e.participants
                .iter()
                .any(|p| matches!(p, HdmRef::Node(n) if n == name))
        }) {
            return Err(HdmError::NodeInUse {
                node: name.to_string(),
                edge: edge.identity(),
            });
        }
        self.constraints
            .retain(|c| !c.referenced_elements().contains(&name));
        self.nodes
            .remove(name)
            .ok_or_else(|| HdmError::UnknownNode(name.to_string()))
    }

    /// Remove an edge by identity. Fails if another edge still references it.
    pub fn remove_edge(&mut self, identity: &str) -> Result<Edge, HdmError> {
        if let Some(referrer) = self.edges.values().find(|e| {
            e.identity() != identity
                && e.participants
                    .iter()
                    .any(|p| matches!(p, HdmRef::Edge(x) if x == identity))
        }) {
            return Err(HdmError::EdgeInUse {
                edge: identity.to_string(),
                referrer: referrer.identity(),
            });
        }
        self.constraints
            .retain(|c| !c.referenced_elements().contains(&identity));
        self.edges
            .remove(identity)
            .ok_or_else(|| HdmError::UnknownEdge(identity.to_string()))
    }

    /// Whether a node with the given name exists.
    pub fn has_node(&self, name: &str) -> bool {
        self.nodes.contains_key(name)
    }

    /// Whether an edge with the given identity exists.
    pub fn has_edge(&self, identity: &str) -> bool {
        self.edges.contains_key(identity)
    }

    /// Whether a node or edge with the given name/identity exists.
    pub fn contains_element(&self, name: &str) -> bool {
        self.has_node(name) || self.has_edge(name)
    }

    /// Iterate over nodes in name order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Iterate over edges in identity order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values()
    }

    /// The schema's constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Look up an edge by identity.
    pub fn edge(&self, identity: &str) -> Option<&Edge> {
        self.edges.get(identity)
    }

    /// Number of nodes plus edges.
    pub fn element_count(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// Validate internal consistency: every edge participant and every constraint
    /// reference must resolve to an existing element.
    pub fn validate(&self) -> Result<(), HdmError> {
        for e in self.edges.values() {
            if e.participants.is_empty() {
                return Err(HdmError::EmptyEdge(e.identity()));
            }
            for p in &e.participants {
                match p {
                    HdmRef::Node(n) if !self.has_node(n) => {
                        return Err(HdmError::UnknownNode(n.clone()))
                    }
                    HdmRef::Edge(x) if !self.has_edge(x) => {
                        return Err(HdmError::UnknownEdge(x.clone()))
                    }
                    _ => {}
                }
            }
        }
        for c in &self.constraints {
            for el in c.referenced_elements() {
                if !self.contains_element(el) {
                    return Err(HdmError::DanglingConstraint {
                        constraint: c.kind().to_string(),
                        element: el.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Merge another schema's elements into this one, skipping elements that already
    /// exist. Used when lowering several higher-level constructs onto one HDM graph.
    pub fn absorb(&mut self, other: &HdmSchema) {
        for n in other.nodes.values() {
            self.nodes
                .entry(n.name.clone())
                .or_insert_with(|| n.clone());
        }
        for e in other.edges.values() {
            self.edges.entry(e.identity()).or_insert_with(|| e.clone());
        }
        for c in &other.constraints {
            if !self.constraints.contains(c) {
                self.constraints.push(c.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HdmSchema {
        let mut s = HdmSchema::new("s");
        s.add_node(Node::new("protein")).unwrap();
        s.add_node(Node::new("string")).unwrap();
        s.add_edge(Edge::binary("accession", "protein", "string"))
            .unwrap();
        s
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut s = sample();
        assert_eq!(
            s.add_node(Node::new("protein")),
            Err(HdmError::DuplicateNode("protein".into()))
        );
    }

    #[test]
    fn edge_requires_existing_participants() {
        let mut s = sample();
        let err = s
            .add_edge(Edge::binary("organism", "protein", "missing"))
            .unwrap_err();
        assert_eq!(err, HdmError::UnknownNode("missing".into()));
    }

    #[test]
    fn cannot_remove_node_in_use() {
        let mut s = sample();
        let err = s.remove_node("protein").unwrap_err();
        assert!(matches!(err, HdmError::NodeInUse { .. }));
        s.remove_edge("accession(protein,string)").unwrap();
        assert!(s.remove_node("protein").is_ok());
    }

    #[test]
    fn constraint_references_validated() {
        let mut s = sample();
        assert!(s
            .add_constraint(Constraint::Unique {
                edge: "accession(protein,string)".into(),
                position: 0,
            })
            .is_ok());
        assert!(s
            .add_constraint(Constraint::Inclusion {
                sub: "nope".into(),
                sup: "protein".into(),
            })
            .is_err());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn removing_node_drops_its_constraints() {
        let mut s = sample();
        s.add_node(Node::new("organism")).unwrap();
        s.add_constraint(Constraint::Exclusion {
            left: "organism".into(),
            right: "protein".into(),
        })
        .unwrap();
        s.remove_node("organism").unwrap();
        assert!(s.constraints().is_empty());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn absorb_is_idempotent() {
        let mut a = sample();
        let b = sample();
        let before = a.element_count();
        a.absorb(&b);
        assert_eq!(a.element_count(), before);
    }

    #[test]
    fn nested_edge_allowed() {
        let mut s = sample();
        s.add_node(Node::new("score")).unwrap();
        s.add_edge(Edge::new(
            Some("scored"),
            vec![
                HdmRef::edge("accession(protein,string)"),
                HdmRef::node("score"),
            ],
        ))
        .unwrap();
        assert!(s.validate().is_ok());
        assert_eq!(s.element_count(), 5);
    }
}
