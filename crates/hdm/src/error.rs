//! Error types for HDM schema and instance manipulation.

use std::fmt;

/// Errors raised while building or validating HDM schemas and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdmError {
    /// A node with the same name already exists in the schema.
    DuplicateNode(String),
    /// An edge with the same identity already exists in the schema.
    DuplicateEdge(String),
    /// A referenced node does not exist in the schema.
    UnknownNode(String),
    /// A referenced edge does not exist in the schema.
    UnknownEdge(String),
    /// The node is still referenced by an edge and cannot be removed.
    NodeInUse { node: String, edge: String },
    /// The edge is still referenced by another edge or constraint and cannot be removed.
    EdgeInUse { edge: String, referrer: String },
    /// An edge was declared with fewer than one participant.
    EmptyEdge(String),
    /// A constraint refers to a schema element that does not exist.
    DanglingConstraint { constraint: String, element: String },
    /// An instance extent has tuples of the wrong arity for the edge it populates.
    ArityMismatch {
        element: String,
        expected: usize,
        found: usize,
    },
    /// A constraint is violated by the instance data.
    ConstraintViolation { constraint: String, detail: String },
}

impl fmt::Display for HdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdmError::DuplicateNode(n) => write!(f, "duplicate HDM node `{n}`"),
            HdmError::DuplicateEdge(e) => write!(f, "duplicate HDM edge `{e}`"),
            HdmError::UnknownNode(n) => write!(f, "unknown HDM node `{n}`"),
            HdmError::UnknownEdge(e) => write!(f, "unknown HDM edge `{e}`"),
            HdmError::NodeInUse { node, edge } => {
                write!(f, "node `{node}` is still used by edge `{edge}`")
            }
            HdmError::EdgeInUse { edge, referrer } => {
                write!(f, "edge `{edge}` is still used by `{referrer}`")
            }
            HdmError::EmptyEdge(e) => write!(f, "edge `{e}` has no participants"),
            HdmError::DanglingConstraint {
                constraint,
                element,
            } => {
                write!(
                    f,
                    "constraint `{constraint}` refers to missing element `{element}`"
                )
            }
            HdmError::ArityMismatch {
                element,
                expected,
                found,
            } => write!(
                f,
                "extent of `{element}` has arity {found}, expected {expected}"
            ),
            HdmError::ConstraintViolation { constraint, detail } => {
                write!(f, "constraint `{constraint}` violated: {detail}")
            }
        }
    }
}

impl std::error::Error for HdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HdmError::NodeInUse {
            node: "protein".into(),
            edge: "protein_accession".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("protein"));
        assert!(msg.contains("protein_accession"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            HdmError::UnknownNode("x".into()),
            HdmError::UnknownNode("x".into())
        );
        assert_ne!(
            HdmError::UnknownNode("x".into()),
            HdmError::UnknownEdge("x".into())
        );
    }
}
