//! Integration-effort accounting.
//!
//! The paper's quantitative evaluation is about *integrator effort*: how many
//! transformations had to be manually defined to support a set of priority queries,
//! under the intersection-schema methodology versus the classical up-front one. This
//! module holds the records produced by the workflow ([`IterationEffort`],
//! [`EffortReport`]), the pay-as-you-go curve points ([`PayAsYouGoPoint`]) and the
//! head-to-head comparison ([`MethodologyComparison`]).

use serde::Serialize;

/// Effort spent in one iteration of the integration workflow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct IterationEffort {
    /// Iteration number (0 = the initial federation, which costs nothing).
    pub iteration: usize,
    /// Human-readable label (intersection-schema name, or `"federation"`).
    pub label: String,
    /// Manually-defined transformations in this iteration.
    pub manual_transformations: usize,
    /// Tool-generated transformations in this iteration.
    pub auto_transformations: usize,
    /// Cumulative manually-defined transformations up to and including this iteration.
    pub cumulative_manual: usize,
    /// Size (number of objects) of the global schema after this iteration.
    pub global_schema_size: usize,
}

/// The complete effort history of an integration session.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct EffortReport {
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationEffort>,
}

impl EffortReport {
    /// Total manually-defined transformations across all iterations.
    pub fn total_manual(&self) -> usize {
        self.iterations
            .iter()
            .map(|i| i.manual_transformations)
            .sum()
    }

    /// Total tool-generated transformations across all iterations.
    pub fn total_auto(&self) -> usize {
        self.iterations.iter().map(|i| i.auto_transformations).sum()
    }

    /// Render the report as a fixed-width table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("iter  label                       manual  auto  cumulative  |G|\n");
        for i in &self.iterations {
            out.push_str(&format!(
                "{:<5} {:<27} {:<7} {:<5} {:<11} {}\n",
                i.iteration,
                i.label,
                i.manual_transformations,
                i.auto_transformations,
                i.cumulative_manual,
                i.global_schema_size
            ));
        }
        out.push_str(&format!(
            "total manual = {}, total tool-generated = {}\n",
            self.total_manual(),
            self.total_auto()
        ));
        out
    }
}

/// One point of the pay-as-you-go curve: after a given amount of cumulative manual
/// effort, how many of the priority queries are answerable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PayAsYouGoPoint {
    /// Iteration number.
    pub iteration: usize,
    /// Label of the iteration.
    pub label: String,
    /// Cumulative manually-defined transformations.
    pub cumulative_manual: usize,
    /// Names of the priority queries answerable at this point.
    pub answerable_queries: Vec<String>,
}

impl PayAsYouGoPoint {
    /// Number of answerable queries at this point.
    pub fn answerable_count(&self) -> usize {
        self.answerable_queries.len()
    }
}

/// The head-to-head comparison of the two methodologies for the same query workload —
/// the paper's headline numbers (26 manually-defined transformations for the
/// intersection-schema integration vs 95 non-trivial transformations for the classical
/// iSpider integration).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MethodologyComparison {
    /// Manually-defined transformations under the intersection-schema methodology.
    pub intersection_manual: usize,
    /// Per-iteration breakdown of the intersection-schema effort.
    pub intersection_breakdown: Vec<usize>,
    /// Non-trivial transformations under the classical methodology.
    pub classical_nontrivial: usize,
    /// Per-stage breakdown of the classical effort (e.g. GS1/GS2/GS3 stages).
    pub classical_breakdown: Vec<usize>,
    /// Number of priority queries supported by both integrations.
    pub queries_supported: usize,
}

impl MethodologyComparison {
    /// Effort ratio classical / intersection (how many times more transformations the
    /// classical methodology required).
    pub fn effort_ratio(&self) -> f64 {
        if self.intersection_manual == 0 {
            f64::INFINITY
        } else {
            self.classical_nontrivial as f64 / self.intersection_manual as f64
        }
    }

    /// Render as the summary table printed by the benchmark harness.
    pub fn render(&self) -> String {
        format!(
            "methodology comparison ({} priority queries)\n\
             intersection-schema (query-driven): {} manually-defined transformations {:?}\n\
             classical (up-front):               {} non-trivial transformations {:?}\n\
             effort ratio (classical / intersection): {:.2}x\n",
            self.queries_supported,
            self.intersection_manual,
            self.intersection_breakdown,
            self.classical_nontrivial,
            self.classical_breakdown,
            self.effort_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_report_totals_and_rendering() {
        let report = EffortReport {
            iterations: vec![
                IterationEffort {
                    iteration: 0,
                    label: "federation".into(),
                    manual_transformations: 0,
                    auto_transformations: 0,
                    cumulative_manual: 0,
                    global_schema_size: 40,
                },
                IterationEffort {
                    iteration: 1,
                    label: "I1".into(),
                    manual_transformations: 6,
                    auto_transformations: 11,
                    cumulative_manual: 6,
                    global_schema_size: 38,
                },
            ],
        };
        assert_eq!(report.total_manual(), 6);
        assert_eq!(report.total_auto(), 11);
        let text = report.render();
        assert!(text.contains("federation"));
        assert!(text.contains("total manual = 6"));
    }

    #[test]
    fn comparison_ratio_matches_paper_shape() {
        let cmp = MethodologyComparison {
            intersection_manual: 26,
            intersection_breakdown: vec![6, 1, 1, 15, 0, 3, 0],
            classical_nontrivial: 95,
            classical_breakdown: vec![19 + 35, 41, 0],
            queries_supported: 7,
        };
        assert!((cmp.effort_ratio() - 95.0 / 26.0).abs() < 1e-9);
        let text = cmp.render();
        assert!(text.contains("26"));
        assert!(text.contains("95"));
        assert!(text.contains("3.65"));
    }

    #[test]
    fn zero_effort_ratio_is_infinite() {
        let cmp = MethodologyComparison {
            intersection_manual: 0,
            intersection_breakdown: vec![],
            classical_nontrivial: 10,
            classical_breakdown: vec![10],
            queries_supported: 0,
        };
        assert!(cmp.effort_ratio().is_infinite());
    }

    #[test]
    fn pay_as_you_go_point_counts() {
        let p = PayAsYouGoPoint {
            iteration: 1,
            label: "I1".into(),
            cumulative_manual: 6,
            answerable_queries: vec!["Q1".into(), "Q2".into()],
        };
        assert_eq!(p.answerable_count(), 2);
    }
}
