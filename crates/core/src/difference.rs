//! The schema difference operator `ES − I`.
//!
//! Given an extensional schema `ES` and the pathway `ES → I` that produced an
//! intersection schema from it, `ES − I` removes from `ES` the objects that are
//! semantically equivalent to (covered by) objects of `I`. Operationally (as defined
//! in §2.2 of the paper): retain only those objects of `ES` that were removed in the
//! pathway `ES → I` by a `contract` operation, i.e. drop the ones that were removed by
//! a `delete` operation. The pathway `ES → ES − I` is derived automatically as one
//! `contract(ci, Range Void Any)` per deleted object.

use crate::error::CoreError;
use automed::transformation::Transformation;
use automed::{Pathway, Schema, SchemeRef};

/// The result of computing `ES − I`.
#[derive(Debug, Clone)]
pub struct Difference {
    /// The difference schema: the objects of `ES` not covered by the intersection.
    pub schema: Schema,
    /// The automatically derived pathway `ES → ES − I`.
    pub pathway: Pathway,
    /// The schemes of `ES` that were dropped (covered by the intersection).
    pub dropped: Vec<SchemeRef>,
}

/// Compute `ES − I` from the extensional schema and the pathway `ES → I`.
///
/// The pathway's `delete` steps identify the covered objects; everything else of `ES`
/// is retained.
pub fn difference(es: &Schema, pathway_to_intersection: &Pathway) -> Result<Difference, CoreError> {
    if pathway_to_intersection.source != es.name {
        return Err(CoreError::InvalidSpec(format!(
            "pathway starts at `{}`, not at extensional schema `{}`",
            pathway_to_intersection.source, es.name
        )));
    }
    let deleted: Vec<SchemeRef> = pathway_to_intersection
        .steps()
        .iter()
        .filter_map(|t| match t {
            Transformation::Delete { object, .. } => Some(object.scheme.clone()),
            _ => None,
        })
        .collect();

    let mut result = Schema::new(format!("{}-{}", es.name, pathway_to_intersection.target));
    let mut derived = Pathway::new(es.name.clone(), result.name.clone());
    let mut dropped = Vec::new();
    for object in es.objects() {
        if deleted.contains(&object.scheme) {
            derived.push(Transformation::contract_void_any(object.clone()));
            dropped.push(object.scheme.clone());
        } else {
            result.add_object(object.clone()).map_err(CoreError::from)?;
        }
    }
    Ok(Difference {
        schema: result,
        pathway: derived,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use automed::SchemaObject;
    use iql::parse;

    fn pedro() -> Schema {
        Schema::from_objects(
            "pedro",
            [
                SchemaObject::table("protein"),
                SchemaObject::column("protein", "accession_num"),
                SchemaObject::column("protein", "organism"),
                SchemaObject::table("peptidehit"),
            ],
        )
        .unwrap()
    }

    fn pathway() -> Pathway {
        let mut p = Pathway::new("pedro", "I1");
        p.push(Transformation::add(
            SchemaObject::table("UProtein"),
            parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap(),
        ));
        p.push(Transformation::delete(
            SchemaObject::table("protein"),
            parse("[k | {'PEDRO', k} <- <<UProtein>>]").unwrap(),
        ));
        p.push(Transformation::delete(
            SchemaObject::column("protein", "accession_num"),
            parse("[{k, x} | {'PEDRO', k, x} <- <<UProtein, accession_num>>]").unwrap(),
        ));
        p.push(Transformation::contract_void_any(SchemaObject::column(
            "protein", "organism",
        )));
        p.push(Transformation::contract_void_any(SchemaObject::table(
            "peptidehit",
        )));
        p
    }

    #[test]
    fn difference_keeps_only_uncovered_objects() {
        let d = difference(&pedro(), &pathway()).unwrap();
        assert_eq!(d.schema.len(), 2);
        assert!(d.schema.contains(&SchemeRef::column("protein", "organism")));
        assert!(d.schema.contains(&SchemeRef::table("peptidehit")));
        assert!(!d.schema.contains(&SchemeRef::table("protein")));
        assert_eq!(d.dropped.len(), 2);
    }

    #[test]
    fn derived_pathway_contracts_exactly_the_deleted_objects() {
        let d = difference(&pedro(), &pathway()).unwrap();
        assert_eq!(d.pathway.len(), 2);
        assert!(d.pathway.steps().iter().all(|t| t.kind() == "contract"));
        // Applying the derived pathway to ES yields ES − I.
        let produced = d.pathway.apply_to(&pedro()).unwrap();
        assert!(produced.syntactically_identical(&d.schema));
    }

    #[test]
    fn difference_with_no_deletes_is_identity() {
        let mut p = Pathway::new("pedro", "I_empty");
        p.push(Transformation::add(
            SchemaObject::table("U"),
            parse("[k | k <- <<protein>>]").unwrap(),
        ));
        let d = difference(&pedro(), &p).unwrap();
        assert_eq!(d.schema.len(), pedro().len());
        assert!(d.pathway.is_empty());
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn mismatched_pathway_rejected() {
        let p = Pathway::new("gpmdb", "I1");
        assert!(matches!(
            difference(&pedro(), &p),
            Err(CoreError::InvalidSpec(_))
        ));
    }
}
