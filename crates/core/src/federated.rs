//! Federated schemas.
//!
//! A federated schema `F = S1 ∪ S2 ∪ … ∪ Sn` combines multiple schemas into a single
//! virtual schema *without any schema or data transformation*: every object of every
//! member schema appears in `F`, with its scheme prefixed by the member schema's
//! identifier so that (i) provenance is visible and (ii) objects with the same name in
//! different sources do not clash (both Pedro and PepSeeker have a `proteinhit` table
//! in the case study).
//!
//! Building the federated schema is workflow step 2 and requires **zero mapping
//! effort**; data services (queries) can run against it immediately, which is what
//! makes the overall methodology pay-as-you-go.

use crate::error::CoreError;
use automed::qp::evaluator::ViewDefinitions;
use automed::qp::Contribution;
use automed::{Schema, SchemaObject};
use iql::ast::{Expr, SchemeRef};

/// The result of federating a set of schemas: the federated schema plus the view
/// definitions that make every federated object queryable against its source.
#[derive(Debug, Clone)]
pub struct Federation {
    /// The federated schema (all member objects, prefixed by member name).
    pub schema: Schema,
    /// One identity contribution per federated object, resolving it to the
    /// corresponding object of its source schema.
    pub definitions: ViewDefinitions,
}

impl Federation {
    /// An extent provider answering queries over the federated schema against the
    /// given registry (which must hold every member source under its own name).
    /// The provider is `Sync`: it may be shared across threads, e.g. to serve the
    /// zero-effort data services concurrently right after federating.
    pub fn provider<'a>(
        &'a self,
        registry: &'a automed::wrapper::SourceRegistry,
    ) -> automed::qp::evaluator::VirtualExtents<'a> {
        automed::qp::evaluator::VirtualExtents::new(registry, &self.definitions)
    }
}

/// The prefix applied to an object of schema `member` within the federated schema.
///
/// Prefixes are the member schema's name in upper case, matching the provenance tags
/// used in the paper's transformation queries (`'PEDRO'`, `'gpmDB'`, …).
pub fn member_prefix(member: &str) -> String {
    member.to_uppercase()
}

/// The scheme a member object gets inside the federated schema.
pub fn federated_scheme(member: &str, scheme: &SchemeRef) -> SchemeRef {
    scheme.prefixed(&member_prefix(member))
}

/// Build the federated schema of the given member schemas.
///
/// Each member must have a registered source of extents under its own name for the
/// returned [`ViewDefinitions`] to be answerable; the definitions simply map each
/// prefixed object back to the original object evaluated against that source.
pub fn federate<'a, I>(name: &str, members: I) -> Result<Federation, CoreError>
where
    I: IntoIterator<Item = &'a Schema>,
{
    let mut schema = Schema::new(name);
    let mut definitions = ViewDefinitions::new();
    for member in members {
        for object in member.objects() {
            let fed_scheme = federated_scheme(&member.name, &object.scheme);
            let fed_object = SchemaObject {
                scheme: fed_scheme.clone(),
                language: object.language.clone(),
                construct: object.construct,
            };
            schema.add_object(fed_object).map_err(|e| {
                CoreError::InvalidSpec(format!("federating `{}` into `{name}`: {e}", member.name))
            })?;
            definitions.add_contribution(
                &fed_scheme,
                Contribution::from_source(member.name.clone(), Expr::Scheme(object.scheme.clone())),
            );
        }
    }
    Ok(Federation {
        schema,
        definitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use automed::qp::evaluator::VirtualExtents;
    use automed::wrapper::SourceRegistry;
    use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    use relational::Database;

    fn source(name: &str, table: &str, col: &str, rows: &[(i64, &str)]) -> Database {
        let mut s = RelSchema::new(name);
        s.add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new(col, DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        for (k, v) in rows {
            db.insert(table, vec![(*k).into(), (*v).into()]).unwrap();
        }
        db
    }

    #[test]
    fn federation_prefixes_and_disambiguates() {
        // Both sources have a table named `proteinhit`, as in the case study.
        let mut reg = SourceRegistry::new();
        let pedro = reg
            .add_source(source("pedro", "proteinhit", "db_search", &[(1, "s1")]))
            .unwrap();
        let pepseeker = reg
            .add_source(source(
                "pepseeker",
                "proteinhit",
                "fileparameters",
                &[(9, "f9")],
            ))
            .unwrap();
        let fed = federate("F", [&pedro, &pepseeker]).unwrap();
        assert_eq!(fed.schema.len(), pedro.len() + pepseeker.len());
        assert!(fed.schema.contains(&SchemeRef::table("PEDRO_proteinhit")));
        assert!(fed
            .schema
            .contains(&SchemeRef::table("PEPSEEKER_proteinhit")));
        assert!(!fed.schema.contains(&SchemeRef::table("proteinhit")));
    }

    #[test]
    fn federated_objects_are_immediately_queryable() {
        let mut reg = SourceRegistry::new();
        let pedro = reg
            .add_source(source(
                "pedro",
                "protein",
                "accession_num",
                &[(1, "ACC1"), (2, "ACC2")],
            ))
            .unwrap();
        let gpmdb = reg
            .add_source(source("gpmdb", "proseq", "label", &[(7, "ACC2")]))
            .unwrap();
        let fed = federate("F", [&pedro, &gpmdb]).unwrap();
        let virt = VirtualExtents::new(&reg, &fed.definitions);
        let q = iql::parse("count <<PEDRO_protein>> + count <<GPMDB_proseq>>").unwrap();
        assert_eq!(virt.answer(&q).unwrap(), iql::Value::Int(3));
        // Cross-source query over the *unintegrated* federated schema: possible, but
        // the user has to know both column objects and join manually.
        let manual_join = iql::parse(
            "[x | {k1, x} <- <<PEDRO_protein, PEDRO_accession_num>>; {k2, y} <- <<GPMDB_proseq, GPMDB_label>>; x = y]",
        )
        .unwrap();
        assert_eq!(virt.answer_bag(&manual_join).unwrap().len(), 1);
    }

    #[test]
    fn federation_requires_zero_mapping_effort() {
        let mut reg = SourceRegistry::new();
        let pedro = reg
            .add_source(source("pedro", "protein", "accession_num", &[(1, "ACC1")]))
            .unwrap();
        let fed = federate("F", [&pedro]).unwrap();
        // Every contribution is an identity scheme reference — nothing the integrator
        // had to write by hand.
        for (_, contributions) in fed.definitions.iter() {
            for c in contributions {
                assert!(matches!(c.query, Expr::Scheme(_)));
            }
        }
    }

    #[test]
    fn member_prefix_matches_paper_tags() {
        assert_eq!(member_prefix("pedro"), "PEDRO");
        assert_eq!(
            federated_scheme("gpmdb", &SchemeRef::column("proseq", "label")).key(),
            "GPMDB_proseq,GPMDB_label"
        );
    }
}
