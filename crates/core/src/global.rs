//! Automatic derivation of the global schema.
//!
//! After each iteration the global schema is re-derived as
//!
//! ```text
//! G = I1 ∪ … ∪ Im ∪ (ES1 − I) ∪ (ES2 − I) ∪ ES3 ∪ … ∪ ESn
//! ```
//!
//! (Figure 4 of the paper): every intersection schema contributes its objects, and
//! every extensional schema contributes the objects *not* covered by an intersection.
//! Dropping the covered (semantically redundant) source objects is optional — the
//! paper's tool offers it as a choice — so [`derive_global`] takes a flag and reports
//! exactly which objects were dropped. Source objects keep their federated
//! (provenance-prefixed) schemes so that same-named tables from different sources
//! never clash.

use crate::error::CoreError;
use crate::federated::federated_scheme;
use crate::intersection::IntersectionResult;
use automed::qp::evaluator::ViewDefinitions;
use automed::qp::Contribution;
use automed::{Schema, SchemaObject, SchemeRef};
use iql::ast::Expr;

/// The result of deriving a global schema.
#[derive(Debug, Clone)]
pub struct GlobalDerivation {
    /// The derived global schema.
    pub schema: Schema,
    /// View definitions making every global-schema object queryable.
    pub definitions: ViewDefinitions,
    /// Federated schemes of source objects that were dropped as redundant (empty when
    /// redundancy removal was not requested).
    pub dropped_redundant: Vec<SchemeRef>,
}

/// Derive the global schema from the extensional schemas and the intersection schemas
/// built so far.
pub fn derive_global(
    name: &str,
    members: &[&Schema],
    intersections: &[&IntersectionResult],
    drop_redundant: bool,
) -> Result<GlobalDerivation, CoreError> {
    let mut schema = Schema::new(name);
    let mut definitions = ViewDefinitions::new();
    let mut dropped = Vec::new();

    // Intersection-schema objects come first: they are the integrated concepts.
    for intersection in intersections {
        for object in intersection.schema.objects() {
            if !schema.contains(&object.scheme) {
                schema.add_object(object.clone()).map_err(CoreError::from)?;
            }
        }
        definitions.merge(&intersection.definitions);
    }

    // Extensional-schema objects, prefixed, minus (optionally) the covered ones.
    for member in members {
        for object in member.objects() {
            let covered = intersections.iter().any(|i| {
                i.covered
                    .get(&member.name)
                    .map(|c| c.contains(&object.scheme))
                    .unwrap_or(false)
            });
            let fed_scheme = federated_scheme(&member.name, &object.scheme);
            if covered && drop_redundant {
                dropped.push(fed_scheme);
                continue;
            }
            let fed_object = SchemaObject {
                scheme: fed_scheme.clone(),
                language: object.language.clone(),
                construct: object.construct,
            };
            if !schema.contains(&fed_object.scheme) {
                schema.add_object(fed_object).map_err(CoreError::from)?;
            }
            definitions.add_contribution(
                &fed_scheme,
                Contribution::from_source(member.name.clone(), Expr::Scheme(object.scheme.clone())),
            );
        }
    }

    Ok(GlobalDerivation {
        schema,
        definitions,
        dropped_redundant: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::build_intersection;
    use crate::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
    use automed::Repository;

    fn repository() -> Repository {
        let mut repo = Repository::new();
        repo.add_source_schema(
            Schema::from_objects(
                "pedro",
                [
                    SchemaObject::table("protein"),
                    SchemaObject::column("protein", "accession_num"),
                    SchemaObject::column("protein", "organism"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo.add_source_schema(
            Schema::from_objects(
                "gpmdb",
                [
                    SchemaObject::table("proseq"),
                    SchemaObject::column("proseq", "label"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo.add_source_schema(
            Schema::from_objects(
                "pepseeker",
                [
                    SchemaObject::table("proteinhit"),
                    SchemaObject::column("proteinhit", "proteinid"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo
    }

    fn intersection(repo: &Repository) -> IntersectionResult {
        let spec = IntersectionSpec::new("I1").with_mapping(
            ObjectMapping::table("UProtein")
                .with_contribution(
                    SourceContribution::parsed(
                        "pedro",
                        "[{'PEDRO', k} | k <- <<protein>>]",
                        ["protein"],
                    )
                    .unwrap(),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "gpmdb",
                        "[{'gpmDB', k} | k <- <<proseq>>]",
                        ["proseq"],
                    )
                    .unwrap(),
                ),
        );
        build_intersection(&spec, repo).unwrap()
    }

    #[test]
    fn global_is_union_of_intersection_and_uncovered_objects() {
        let repo = repository();
        let i = intersection(&repo);
        let members: Vec<&Schema> = ["pedro", "gpmdb", "pepseeker"]
            .iter()
            .map(|n| repo.schema(n).unwrap())
            .collect();
        let g = derive_global("G1", &members, &[&i], true).unwrap();
        // Dropped: pedro.protein and gpmdb.proseq (covered).
        assert_eq!(g.dropped_redundant.len(), 2);
        assert!(g.schema.contains(&SchemeRef::table("UProtein")));
        assert!(!g.schema.contains(&SchemeRef::table("PEDRO_protein")));
        assert!(g
            .schema
            .contains(&SchemeRef::column("PEDRO_protein", "PEDRO_accession_num")));
        assert!(g.schema.contains(&SchemeRef::table("PEPSEEKER_proteinhit")));
        // 1 (UProtein) + pedro 2 remaining + gpmdb 1 remaining + pepseeker 2 = 6
        assert_eq!(g.schema.len(), 6);
    }

    #[test]
    fn redundant_objects_kept_when_not_dropping() {
        let repo = repository();
        let i = intersection(&repo);
        let members: Vec<&Schema> = ["pedro", "gpmdb", "pepseeker"]
            .iter()
            .map(|n| repo.schema(n).unwrap())
            .collect();
        let g = derive_global("G1", &members, &[&i], false).unwrap();
        assert!(g.dropped_redundant.is_empty());
        assert!(g.schema.contains(&SchemeRef::table("PEDRO_protein")));
        assert!(g.schema.contains(&SchemeRef::table("UProtein")));
        assert_eq!(g.schema.len(), 8);
    }

    #[test]
    fn definitions_cover_every_global_object() {
        let repo = repository();
        let i = intersection(&repo);
        let members: Vec<&Schema> = ["pedro", "gpmdb", "pepseeker"]
            .iter()
            .map(|n| repo.schema(n).unwrap())
            .collect();
        let g = derive_global("G1", &members, &[&i], true).unwrap();
        for object in g.schema.objects() {
            assert!(
                g.definitions.defines(&object.scheme),
                "{} has no view definition",
                object.scheme
            );
        }
    }

    #[test]
    fn no_intersections_degenerates_to_federated_schema() {
        let repo = repository();
        let members: Vec<&Schema> = ["pedro", "gpmdb"]
            .iter()
            .map(|n| repo.schema(n).unwrap())
            .collect();
        let g = derive_global("G0", &members, &[], true).unwrap();
        assert_eq!(g.schema.len(), 5);
        assert!(g.dropped_redundant.is_empty());
        assert!(g.schema.contains(&SchemeRef::table("PEDRO_protein")));
    }
}
