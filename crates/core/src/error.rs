//! Errors for the intersection-schema integration layer.

use std::fmt;

/// Errors raised while building federated/intersection/global schemas or answering
/// dataspace queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the transformation substrate.
    Automed(automed::AutomedError),
    /// An error bubbled up from a relational source.
    Relational(String),
    /// An IQL parse error (e.g. in a user-supplied mapping or dataspace query).
    Parse(String),
    /// The integration specification is inconsistent (e.g. references an unknown
    /// source or an object the source does not have).
    InvalidSpec(String),
    /// The workflow was driven out of order (e.g. integrating before federating).
    WorkflowOrder(String),
    /// A dataspace query failed to evaluate.
    Query(String),
    /// A prepared query was executed without a binding for one of its `?name`
    /// placeholders.
    UnboundParam(String),
    /// A prepared query was executed with a binding for a name that does not
    /// occur in the query (almost always a typo in the binding set).
    UnknownParam(String),
    /// The durable storage layer failed: the commit log could not be opened,
    /// appended to, compacted, or replayed (carries the I/O or replay detail).
    Storage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Automed(e) => write!(f, "{e}"),
            CoreError::Relational(e) => write!(f, "relational source error: {e}"),
            CoreError::Parse(e) => write!(f, "IQL parse error: {e}"),
            CoreError::InvalidSpec(e) => write!(f, "invalid integration specification: {e}"),
            CoreError::WorkflowOrder(e) => write!(f, "workflow error: {e}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::UnboundParam(p) => {
                write!(f, "no binding for query parameter `?{p}`")
            }
            CoreError::UnknownParam(p) => {
                write!(
                    f,
                    "binding for `?{p}` does not match any parameter of the query"
                )
            }
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<automed::AutomedError> for CoreError {
    fn from(e: automed::AutomedError) -> Self {
        CoreError::Automed(e)
    }
}

impl From<iql::ParseError> for CoreError {
    fn from(e: iql::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

impl From<iql::EvalError> for CoreError {
    fn from(e: iql::EvalError) -> Self {
        CoreError::Query(e.to_string())
    }
}

impl From<relational::RelError> for CoreError {
    fn from(e: relational::RelError) -> Self {
        CoreError::Relational(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = automed::AutomedError::UnknownSchema("x".into()).into();
        assert!(e.to_string().contains("x"));
        let p: CoreError = iql::parse("[").unwrap_err().into();
        assert!(matches!(p, CoreError::Parse(_)));
        let q: CoreError = iql::EvalError::DivisionByZero.into();
        assert!(matches!(q, CoreError::Query(_)));
    }
}
