//! Standing subscriptions: prepared queries maintained incrementally across
//! inserts.
//!
//! A [`Subscription`] is a prepared query + fixed parameter bindings whose
//! result the dataspace keeps current as source rows are inserted through
//! [`crate::dataspace::Dataspace::insert`] /
//! [`crate::dataspace::Dataspace::insert_many`]. Where the query shape allows
//! it, maintenance is **O(delta)**: the new rows' contributions are driven
//! through the retained [`iql::StandingPlan`] (probing its retained hash-join
//! indexes rather than rebuilding them), and the appended result rows are
//! pushed to the subscriber as [`SubscriptionUpdate::Delta`]. Shapes or
//! situations outside the incremental contract fall back to a transparent full
//! re-execution ([`SubscriptionUpdate::Refreshed`]) — semantics never change,
//! only cost. The registry is indexed by the `(source, table)` extents each
//! subscription transitively touches, so an insert only examines the
//! subscriptions it can actually affect.
//!
//! ## When does an insert take the delta path?
//!
//! All of the following must hold (checked per insert, falling back otherwise):
//!
//! 1. the subscription has a standing plan (the query is a comprehension whose
//!    first generator iterates a scheme extent referenced exactly once);
//! 2. the subscription's result is synchronised to the provider version the
//!    insert started from (no missed intermediate changes);
//! 3. among the global schemes the plan touches, **only the lead scheme**
//!    depends on the inserted `(source, table)`;
//! 4. the lead scheme's appended global-extent rows are computable: exactly
//!    one of its contributions depends on the inserted table, that
//!    contribution is the **last** registered (so its delta appends at the
//!    tail of the concatenated global extent), and the contribution query is
//!    itself incrementally evaluable against the source's
//!    [`relational::store::TableDelta`] (identity scheme references — the
//!    federation case — are served verbatim; comprehension contributions go
//!    through the same standing-plan machinery one level down).
//!
//! The differential harness in `tests/subscriptions.rs` locks in that both
//! paths agree with plain re-execution, order and multiplicity included.

use automed::qp::evaluator::VirtualExtents;
use automed::qp::Contribution;
use automed::wrapper::SourceRegistry;
use iql::env::Env;
use iql::eval::{Evaluator, ExtentProvider};
use iql::value::{Bag, Value};
use iql::{EvalError, Params, SchemeRef, StandingPlan};
use relational::store::TableDelta;
use relational::Database;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, Weak};

/// One change notification pushed to a subscriber (see
/// [`Subscription::drain_updates`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionUpdate {
    /// Rows **appended** to the result by O(delta) incremental maintenance.
    /// The full result is the previous result followed by these rows.
    Delta(Bag),
    /// The full result, re-executed from scratch (fallback path, and every
    /// schema change through `federate`/`integrate`). Replaces the previous
    /// result wholesale. Carries a [`Value`] rather than a [`Bag`] because
    /// non-bag-valued queries (aggregates like `count ⟨⟨…⟩⟩`) are subscribable
    /// too — they simply always take this path.
    Refreshed(Value),
}

/// A live subscription handle: the current result plus the queue of updates
/// since the last drain. Clones share the same underlying state; the handle is
/// independent of the dataspace's borrow (it stays usable — serving the last
/// synchronised result — while the dataspace is locked for writing, which is
/// what makes subscriber threads raceable against inserts).
#[derive(Debug, Clone)]
pub struct Subscription {
    state: Arc<SubState>,
}

impl Subscription {
    /// A snapshot of the current (last synchronised) result.
    pub fn result(&self) -> Value {
        self.state.lock().result.clone()
    }

    /// The current result as a bag ([`iql::EvalError::TypeError`] via
    /// `expect_bag` semantics — errors for aggregate-valued queries).
    pub fn result_bag(&self) -> Result<Bag, EvalError> {
        self.result().expect_bag()
    }

    /// Take every update pushed since the last drain, in push order.
    pub fn drain_updates(&self) -> Vec<SubscriptionUpdate> {
        std::mem::take(&mut self.state.lock().updates)
    }

    /// Whether the subscription currently holds a standing plan — i.e. whether
    /// inserts touching only its lead extent are absorbed in O(delta) instead
    /// of re-executing.
    pub fn is_incremental(&self) -> bool {
        self.state.lock().standing.is_some()
    }

    pub(crate) fn from_state(state: Arc<SubState>) -> Self {
        Subscription { state }
    }
}

/// The shared mutable state behind a [`Subscription`].
#[derive(Debug)]
pub(crate) struct SubState {
    /// The prepared expression (shared with the dataspace's parse memo).
    pub(crate) expr: Arc<iql::Expr>,
    /// Parameter bindings fixed at subscribe time.
    pub(crate) params: Params,
    inner: Mutex<SubInner>,
}

#[derive(Debug)]
pub(crate) struct SubInner {
    /// The current result (authoritative while `synced` is current).
    pub(crate) result: Value,
    /// The retained incremental plan, when the shape allows one.
    pub(crate) standing: Option<StandingPlan>,
    /// Provider version `result` is synchronised to; `None` marks the state
    /// stale (the next affecting insert re-executes unconditionally).
    pub(crate) synced: Option<u64>,
    /// Per touched global scheme: the `(source, table)` extents it transitively
    /// depends on; `None` means the dependencies could not be resolved and the
    /// scheme must be treated as affected by **every** insert.
    pub(crate) scheme_deps: BTreeMap<String, Option<BTreeSet<(String, String)>>>,
    /// Updates pushed since the subscriber last drained.
    pub(crate) updates: Vec<SubscriptionUpdate>,
}

impl SubState {
    pub(crate) fn new(expr: Arc<iql::Expr>, params: Params) -> Self {
        SubState {
            expr,
            params,
            inner: Mutex::new(SubInner {
                result: Value::Void,
                standing: None,
                synced: None,
                scheme_deps: BTreeMap::new(),
                updates: Vec::new(),
            }),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, SubInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The union of every touched scheme's dependencies; `None` when any
    /// scheme's dependencies are unresolved (affected by every insert).
    pub(crate) fn flat_deps(inner: &SubInner) -> Option<BTreeSet<(String, String)>> {
        let mut out = BTreeSet::new();
        for deps in inner.scheme_deps.values() {
            out.extend(deps.as_ref()?.iter().cloned());
        }
        Some(out)
    }
}

/// The dataspace's subscription registry: weak entries (a dropped
/// [`Subscription`] handle unsubscribes implicitly; dead entries are pruned
/// lazily) indexed by the `(source, table)` extents each subscription touches.
#[derive(Debug, Default)]
pub(crate) struct SubscriptionRegistry {
    inner: RwLock<RegistryInner>,
    /// Inserts absorbed through O(delta) standing-plan evaluation.
    pub(crate) delta_evals: AtomicU64,
    /// Inserts (or schema changes) handled by transparent re-execution.
    pub(crate) fallback_reexecs: AtomicU64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: u64,
    subs: BTreeMap<u64, Weak<SubState>>,
    /// `(source, table)` → ids of subscriptions depending on that extent.
    by_dep: HashMap<(String, String), BTreeSet<u64>>,
    /// Ids whose dependencies are unresolved: affected by every insert.
    catch_all: BTreeSet<u64>,
}

impl RegistryInner {
    fn drop_id(&mut self, id: u64) {
        self.subs.remove(&id);
        self.catch_all.remove(&id);
        for ids in self.by_dep.values_mut() {
            ids.remove(&id);
        }
        self.by_dep.retain(|_, ids| !ids.is_empty());
    }

    fn index(&mut self, id: u64, deps: Option<&BTreeSet<(String, String)>>) {
        match deps {
            Some(deps) => {
                for dep in deps {
                    self.by_dep.entry(dep.clone()).or_default().insert(id);
                }
            }
            None => {
                self.catch_all.insert(id);
            }
        }
    }
}

impl SubscriptionRegistry {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, RegistryInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, RegistryInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a subscription under its resolved dependencies.
    pub(crate) fn register(
        &self,
        state: &Arc<SubState>,
        deps: Option<&BTreeSet<(String, String)>>,
    ) {
        let mut inner = self.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.insert(id, Arc::downgrade(state));
        inner.index(id, deps);
    }

    /// Live subscriptions an insert into `(source, table)` can affect. Dead
    /// entries encountered on the way are pruned.
    pub(crate) fn affected(&self, source: &str, table: &str) -> Vec<Arc<SubState>> {
        let dep = (source.to_string(), table.to_string());
        let candidates: Vec<u64> = {
            let inner = self.read();
            inner
                .by_dep
                .get(&dep)
                .into_iter()
                .flatten()
                .chain(inner.catch_all.iter())
                .copied()
                .collect()
        };
        self.collect_live(candidates)
    }

    /// Every live subscription (the schema-change refresh path).
    pub(crate) fn all_live(&self) -> Vec<Arc<SubState>> {
        let candidates: Vec<u64> = self.read().subs.keys().copied().collect();
        self.collect_live(candidates)
    }

    fn collect_live(&self, candidates: Vec<u64>) -> Vec<Arc<SubState>> {
        let mut live = Vec::new();
        let mut dead = Vec::new();
        {
            let inner = self.read();
            for id in candidates {
                match inner.subs.get(&id).and_then(Weak::upgrade) {
                    Some(state) => live.push(state),
                    None => dead.push(id),
                }
            }
        }
        if !dead.is_empty() {
            let mut inner = self.write();
            for id in dead {
                inner.drop_id(id);
            }
        }
        live
    }

    /// Re-resolve a subscription's dependency index entries (after a schema
    /// change rewrote its plan). The subscription is matched by pointer.
    pub(crate) fn reindex(&self, state: &Arc<SubState>, deps: Option<&BTreeSet<(String, String)>>) {
        let mut inner = self.write();
        let id = inner
            .subs
            .iter()
            .find(|(_, weak)| weak.upgrade().is_some_and(|s| Arc::ptr_eq(&s, state)))
            .map(|(id, _)| *id);
        if let Some(id) = id {
            let weak = Arc::downgrade(state);
            inner.drop_id(id);
            inner.subs.insert(id, weak);
            inner.index(id, deps);
        }
    }

    /// Number of live subscriptions (pruning dead entries on the way).
    pub(crate) fn live_count(&self) -> usize {
        self.all_live().len()
    }
}

/// A scheme key with the `sql,<construct>,` qualification prefix stripped —
/// the short form [`TableDelta::appended`] and the wrapper conventions use.
pub(crate) fn short_key(scheme: &SchemeRef) -> String {
    match scheme.parts.as_slice() {
        [lang, _construct, rest @ ..] if lang == "sql" && !rest.is_empty() => rest.join(","),
        parts => parts.join(","),
    }
}

/// The table a source-level scheme belongs to (`t` and `t,c` both map to `t`).
fn table_of(scheme: &SchemeRef) -> Option<String> {
    match scheme.parts.as_slice() {
        [table, ..] if table != "sql" => Some(table.clone()),
        [lang, _construct, rest @ ..] if lang == "sql" && !rest.is_empty() => Some(rest[0].clone()),
        _ => None,
    }
}

/// Definitions + registry context for dependency resolution, shared by the
/// subscribe-time and per-insert resolution passes.
pub(crate) struct DepContext<'a> {
    pub(crate) definitions: &'a automed::qp::evaluator::ViewDefinitions,
    pub(crate) registry: &'a SourceRegistry,
}

impl DepContext<'_> {
    /// The `(source, table)` extents a global scheme transitively depends on,
    /// or `None` when resolution hits a reference that neither a contribution's
    /// own source nor the view definitions explain (treat as depending on
    /// everything).
    pub(crate) fn scheme_deps(&self, scheme: &SchemeRef) -> Option<BTreeSet<(String, String)>> {
        self.resolve(std::iter::once((None, scheme.clone())))
    }

    /// The `(source, table)` extents one contribution transitively depends on
    /// (same `None` convention as [`DepContext::scheme_deps`]).
    pub(crate) fn contribution_deps(
        &self,
        contribution: &Contribution,
    ) -> Option<BTreeSet<(String, String)>> {
        self.resolve(
            iql::rewrite::collect_schemes(&contribution.query)
                .into_iter()
                .map(|s| (contribution.source.clone(), s)),
        )
    }

    fn resolve(
        &self,
        roots: impl Iterator<Item = (Option<String>, SchemeRef)>,
    ) -> Option<BTreeSet<(String, String)>> {
        let mut out = BTreeSet::new();
        let mut seen: BTreeSet<(Option<String>, String)> = BTreeSet::new();
        let mut work: Vec<(Option<String>, SchemeRef)> = roots.collect();
        while let Some((ctx, scheme)) = work.pop() {
            if !seen.insert((ctx.clone(), scheme.key())) {
                continue;
            }
            // A source contribution's references resolve in its own source
            // first (mirroring the runtime LayeredProvider rule).
            if let Some(source) = &ctx {
                if let Ok(db) = self.registry.database(source) {
                    if relational::wrapper::covers(db.schema(), &scheme) {
                        out.insert((source.clone(), table_of(&scheme)?));
                        continue;
                    }
                }
            }
            // Otherwise it must be a defined virtual scheme; recurse into its
            // contributions. Anything else is unresolvable.
            let contributions = self.definitions.contributions_for_key(&scheme.key())?;
            for contribution in contributions {
                for referenced in iql::rewrite::collect_schemes(&contribution.query) {
                    work.push((contribution.source.clone(), referenced));
                }
            }
        }
        Some(out)
    }
}

/// Resolves contribution-query schemes at the source database first, then
/// through the dataspace's virtual provider — the same layering
/// `VirtualExtents` applies when evaluating contributions.
struct SourceFirst<'a> {
    db: &'a Database,
    fallback: &'a VirtualExtents<'a>,
}

impl ExtentProvider for SourceFirst<'_> {
    fn extent(&self, scheme: &SchemeRef) -> Result<Arc<Bag>, EvalError> {
        match self.db.extent(scheme) {
            Ok(bag) => Ok(bag),
            Err(_) => self.fallback.extent(scheme),
        }
    }

    fn version(&self) -> u64 {
        self.db.data_version()
    }
}

/// Compute the rows a [`TableDelta`] appends to the extent of one **global**
/// scheme, or `None` when they are not incrementally computable (the caller
/// falls back to re-execution).
///
/// Requirements (the tail-append argument): the global extent is the
/// concatenation of its contributions' bags in registration order, so the
/// delta is a tail append iff exactly one contribution changed and it is the
/// **last** one. That contribution's own delta is then computed either
/// verbatim (an identity scheme reference into the inserted source — the
/// federation case) or by building a contribution-level standing plan over the
/// source and delta-evaluating it (sound when every scheme the contribution
/// touches lives in the source database and only its lead changed).
pub(crate) fn global_scheme_delta(
    ctx: &DepContext<'_>,
    provider: &VirtualExtents<'_>,
    lead: &SchemeRef,
    source: &str,
    delta: &TableDelta,
) -> Option<Vec<Value>> {
    let contributions = ctx.definitions.contributions_for(lead)?;
    let mut affected = Vec::new();
    for (i, contribution) in contributions.iter().enumerate() {
        let depends = match ctx.contribution_deps(contribution) {
            Some(deps) => deps.contains(&(source.to_string(), delta.table.clone())),
            None => true, // unresolved: assume affected
        };
        if depends {
            affected.push(i);
        }
    }
    if affected.len() != 1 || affected[0] != contributions.len() - 1 {
        return None;
    }
    let contribution = &contributions[affected[0]];
    let source_name = contribution.source.as_deref()?;
    let db = ctx.registry.database(source_name).ok()?;
    match &contribution.query {
        // Identity contribution (federation): the global extent mirrors the
        // source extent, so the appended rows carry over verbatim.
        iql::Expr::Scheme(referenced) if relational::wrapper::covers(db.schema(), referenced) => {
            Some(
                delta
                    .appended
                    .get(&short_key(referenced))
                    .cloned()
                    .unwrap_or_default(),
            )
        }
        // Comprehension contribution (integration): one level of the same
        // standing-plan machinery, against the source database.
        iql::Expr::Comp { .. } => {
            let layered = SourceFirst {
                db,
                fallback: provider,
            };
            let ev = Evaluator::new(&layered);
            let plan = ev.standing_plan(&contribution.query, &Env::new()).ok()??;
            let lead_key = short_key(plan.lead_scheme());
            for touched in plan.touched() {
                // Every touched scheme must resolve inside this source (no
                // virtual recursion, whose extents may also have moved), and
                // no non-lead scheme may have changed in this insert.
                if !relational::wrapper::covers(db.schema(), touched) {
                    return None;
                }
                let key = short_key(touched);
                if key != lead_key && delta.appended.contains_key(&key) {
                    return None;
                }
            }
            match delta.appended.get(&lead_key) {
                Some(appended) => {
                    let bag = ev.delta_standing(&plan, appended, &Env::new()).ok()?;
                    Some(bag.items().to_vec())
                }
                // The contribution's lead extent did not change (e.g. an
                // all-null column batch): the contribution appends nothing.
                None => Some(Vec::new()),
            }
        }
        _ => None,
    }
}

impl SubscriptionRegistry {
    /// Cumulative O(delta) maintenance rounds.
    pub(crate) fn delta_eval_count(&self) -> u64 {
        self.delta_evals.load(Ordering::Relaxed)
    }

    /// Cumulative fallback re-execution rounds.
    pub(crate) fn fallback_reexec_count(&self) -> u64 {
        self.fallback_reexecs.load(Ordering::Relaxed)
    }
}
