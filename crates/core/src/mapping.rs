//! Mapping specifications and the per-intersection mappings table.
//!
//! A mapping specification is the machine-readable record of the decisions a data
//! integrator makes in workflow step 4: which new (intersection-schema) objects to
//! create, and for each of them, the IQL query over each participating source that
//! contributes to its extent. The Intersection Schema Tool maintains a *mappings
//! table* per intersection schema showing exactly these correspondences, in both the
//! forward and the reverse direction.

use crate::error::CoreError;
use automed::{ConstructKind, SchemaObject, SchemeRef};
use iql::ast::Expr;
use iql::pretty;
use serde::Serialize;

/// One source's contribution to an intersection-schema object.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceContribution {
    /// The name of the extensional (source) schema the query ranges over.
    pub source: String,
    /// The forward transformation query (extent of the new object contributed by this
    /// source).
    pub query: Expr,
    /// The source schema objects whose semantics are *covered* by this contribution —
    /// these are the objects the pathway will `delete` (they become derivable from the
    /// intersection schema) and that redundancy removal may drop from the global
    /// schema.
    pub covers: Vec<SchemeRef>,
    /// Optional user-supplied reverse query. When absent, the tool derives the reverse
    /// query automatically if the forward query is invertible, falling back to
    /// `Range Void Any` otherwise.
    pub reverse_override: Option<Expr>,
}

impl SourceContribution {
    /// Build a contribution from an already-parsed query.
    pub fn new<I, S>(source: impl Into<String>, query: Expr, covers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SourceContribution {
            source: source.into(),
            query,
            covers: covers
                .into_iter()
                .map(|s| parse_scheme_key(&s.into()))
                .collect(),
            reverse_override: None,
        }
    }

    /// Build a contribution by parsing the forward query from IQL surface syntax.
    ///
    /// `covers` lists the covered source objects as scheme keys (e.g. `"protein"`,
    /// `"protein,accession_num"`).
    pub fn parsed<I, S>(
        source: impl Into<String>,
        query: &str,
        covers: I,
    ) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Ok(SourceContribution::new(source, iql::parse(query)?, covers))
    }

    /// Attach a user-supplied reverse query (overrides automatic generation).
    pub fn with_reverse(mut self, reverse: Expr) -> Self {
        self.reverse_override = Some(reverse);
        self
    }
}

/// The definition of one intersection-schema object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMapping {
    /// The new object to create in the intersection schema.
    pub target: SchemaObject,
    /// Contributions, one per participating source (or derived over the integrated
    /// schema itself when `source` names no registered source).
    pub contributions: Vec<SourceContribution>,
    /// A contribution defined over the current global schema rather than a source
    /// (used for derived concepts such as join tables).
    pub derived_query: Option<Expr>,
}

impl ObjectMapping {
    /// A mapping creating a table-like object.
    pub fn table(name: impl Into<String>) -> Self {
        ObjectMapping {
            target: SchemaObject::table(name),
            contributions: Vec::new(),
            derived_query: None,
        }
    }

    /// A mapping creating a column-like object.
    pub fn column(table: impl Into<String>, column: impl Into<String>) -> Self {
        ObjectMapping {
            target: SchemaObject::column(table, column),
            contributions: Vec::new(),
            derived_query: None,
        }
    }

    /// A mapping creating an object of arbitrary construct kind.
    pub fn object(scheme: SchemeRef, construct: ConstructKind) -> Self {
        ObjectMapping {
            target: SchemaObject::generic(scheme, "sql", construct),
            contributions: Vec::new(),
            derived_query: None,
        }
    }

    /// Add a source contribution (builder style).
    pub fn with_contribution(mut self, contribution: SourceContribution) -> Self {
        self.contributions.push(contribution);
        self
    }

    /// Define the object by a query over the integrated schema itself (builder style).
    pub fn with_derived_query(mut self, query: Expr) -> Self {
        self.derived_query = Some(query);
        self
    }

    /// Parse and set a derived query.
    pub fn with_derived_query_str(self, query: &str) -> Result<Self, CoreError> {
        let parsed = iql::parse(query)?;
        Ok(self.with_derived_query(parsed))
    }

    /// Names of the sources participating in this mapping.
    pub fn sources(&self) -> Vec<&str> {
        self.contributions
            .iter()
            .map(|c| c.source.as_str())
            .collect()
    }

    /// Number of manually-defined transformations this mapping represents: one `add`
    /// per source contribution plus one for a derived query, plus any user-supplied
    /// reverse queries.
    pub fn manual_transformation_count(&self) -> usize {
        self.contributions.len()
            + usize::from(self.derived_query.is_some())
            + self
                .contributions
                .iter()
                .filter(|c| c.reverse_override.is_some())
                .count()
    }
}

/// A complete intersection-schema specification: a named set of object mappings
/// (workflow steps 3–5 for one iteration).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntersectionSpec {
    /// Name of the intersection schema to create (e.g. `"I1"`).
    pub name: String,
    /// The object mappings.
    pub mappings: Vec<ObjectMapping>,
}

impl IntersectionSpec {
    /// An empty specification.
    pub fn new(name: impl Into<String>) -> Self {
        IntersectionSpec {
            name: name.into(),
            mappings: Vec::new(),
        }
    }

    /// Add a mapping (builder style).
    pub fn with_mapping(mut self, mapping: ObjectMapping) -> Self {
        self.mappings.push(mapping);
        self
    }

    /// Add a mapping in place.
    pub fn push(&mut self, mapping: ObjectMapping) {
        self.mappings.push(mapping);
    }

    /// The distinct source schemas participating in this intersection, in first-use
    /// order.
    pub fn participating_sources(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for m in &self.mappings {
            for c in &m.contributions {
                if !out.contains(&c.source) {
                    out.push(c.source.clone());
                }
            }
        }
        out
    }

    /// Total number of manually-defined transformations in this specification — the
    /// paper's per-iteration effort figure.
    pub fn manual_transformation_count(&self) -> usize {
        self.mappings
            .iter()
            .map(ObjectMapping::manual_transformation_count)
            .sum()
    }

    /// Basic consistency checks: non-empty, every mapping has at least one
    /// contribution or a derived query, and no duplicate target objects.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.mappings.is_empty() {
            return Err(CoreError::InvalidSpec(format!(
                "intersection `{}` defines no mappings",
                self.name
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for m in &self.mappings {
            if m.contributions.is_empty() && m.derived_query.is_none() {
                return Err(CoreError::InvalidSpec(format!(
                    "mapping for {} has neither contributions nor a derived query",
                    m.target.scheme
                )));
            }
            if !seen.insert(m.target.key()) {
                return Err(CoreError::InvalidSpec(format!(
                    "duplicate mapping target {}",
                    m.target.scheme
                )));
            }
        }
        Ok(())
    }
}

/// One row of the mappings table the tool displays: an intersection-schema object, one
/// participating source, and the forward/reverse queries relating them.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MappingRow {
    /// The intersection-schema object.
    pub target: String,
    /// The participating source (or `"(derived)"`).
    pub source: String,
    /// The forward query, pretty-printed.
    pub forward: String,
    /// The reverse query, pretty-printed (`Range Void Any` when not derivable).
    pub reverse: String,
    /// Whether the reverse query was generated automatically by the tool.
    pub reverse_auto_generated: bool,
}

/// The mappings table for one intersection schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MappingTable {
    /// The rows, in definition order.
    pub rows: Vec<MappingRow>,
}

impl MappingTable {
    /// Build the table shown to the user from a specification, deriving reverse
    /// queries the same way the pathway builder does.
    pub fn from_spec(spec: &IntersectionSpec) -> MappingTable {
        let mut rows = Vec::new();
        for m in &spec.mappings {
            for c in &m.contributions {
                let (reverse, auto) = match &c.reverse_override {
                    Some(r) => (r.clone(), false),
                    None => {
                        let base = c.covers.first();
                        let derived = base.map(|b| {
                            automed::qp::lav::reverse_query_or_void_any(
                                &m.target.scheme,
                                &c.query,
                                b,
                            )
                        });
                        (derived.unwrap_or_else(Expr::range_void_any), true)
                    }
                };
                rows.push(MappingRow {
                    target: m.target.scheme.to_string(),
                    source: c.source.clone(),
                    forward: pretty::print(&c.query),
                    reverse: pretty::print(&reverse),
                    reverse_auto_generated: auto,
                });
            }
            if let Some(d) = &m.derived_query {
                rows.push(MappingRow {
                    target: m.target.scheme.to_string(),
                    source: "(derived)".into(),
                    forward: pretty::print(d),
                    reverse: pretty::print(&Expr::range_void_any()),
                    reverse_auto_generated: true,
                });
            }
        }
        MappingTable { rows }
    }

    /// Render the table as fixed-width text (what the CLI example prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<38} {:<12} {:<60} {}\n",
            "target object", "source", "forward query", "reverse query"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<38} {:<12} {:<60} {}{}\n",
                row.target,
                row.source,
                truncate(&row.forward, 58),
                truncate(&row.reverse, 48),
                if row.reverse_auto_generated {
                    "  (auto)"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let prefix: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{prefix}…")
    }
}

/// Parse a scheme key like `"protein,accession_num"` into a [`SchemeRef`].
pub fn parse_scheme_key(key: &str) -> SchemeRef {
    SchemeRef::new(key.split(',').map(|p| p.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uprotein_spec() -> IntersectionSpec {
        IntersectionSpec::new("I1")
            .with_mapping(
                ObjectMapping::table("UProtein")
                    .with_contribution(
                        SourceContribution::parsed(
                            "pedro",
                            "[{'PEDRO', k} | k <- <<protein>>]",
                            ["protein"],
                        )
                        .unwrap(),
                    )
                    .with_contribution(
                        SourceContribution::parsed(
                            "gpmdb",
                            "[{'gpmDB', k} | k <- <<proseq>>]",
                            ["proseq"],
                        )
                        .unwrap(),
                    ),
            )
            .with_mapping(
                ObjectMapping::column("UProtein", "accession_num")
                    .with_contribution(
                        SourceContribution::parsed(
                            "pedro",
                            "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                            ["protein,accession_num"],
                        )
                        .unwrap(),
                    )
                    .with_contribution(
                        SourceContribution::parsed(
                            "gpmdb",
                            "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                            ["proseq,label"],
                        )
                        .unwrap(),
                    ),
            )
    }

    #[test]
    fn spec_accounting() {
        let spec = uprotein_spec();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.participating_sources(), vec!["pedro", "gpmdb"]);
        assert_eq!(spec.manual_transformation_count(), 4);
    }

    #[test]
    fn derived_and_reverse_overrides_count_as_manual() {
        let spec = IntersectionSpec::new("I2").with_mapping(
            ObjectMapping::table("uPeptideHitToProteinHit_mm")
                .with_derived_query_str(
                    "[{k1, k2} | {k1, x} <- <<UPeptideHit, dbsearch>>; {k2, y} <- <<UProteinHit, dbsearch>>; x = y]",
                )
                .unwrap(),
        );
        assert_eq!(spec.manual_transformation_count(), 1);
        let with_reverse = IntersectionSpec::new("I3").with_mapping(
            ObjectMapping::table("U").with_contribution(
                SourceContribution::parsed("pedro", "[k | k <- <<protein>>]", ["protein"])
                    .unwrap()
                    .with_reverse(iql::parse("[k | k <- <<U>>]").unwrap()),
            ),
        );
        assert_eq!(with_reverse.manual_transformation_count(), 2);
    }

    #[test]
    fn validation_catches_problems() {
        assert!(IntersectionSpec::new("empty").validate().is_err());
        let no_contrib = IntersectionSpec::new("x").with_mapping(ObjectMapping::table("U"));
        assert!(no_contrib.validate().is_err());
        let dup = IntersectionSpec::new("d")
            .with_mapping(ObjectMapping::table("U").with_contribution(
                SourceContribution::parsed("pedro", "[k | k <- <<protein>>]", ["protein"]).unwrap(),
            ))
            .with_mapping(ObjectMapping::table("U").with_contribution(
                SourceContribution::parsed("gpmdb", "[k | k <- <<proseq>>]", ["proseq"]).unwrap(),
            ));
        assert!(dup.validate().is_err());
    }

    #[test]
    fn mappings_table_derives_reverse_queries() {
        let table = MappingTable::from_spec(&uprotein_spec());
        assert_eq!(table.rows.len(), 4);
        // Forward queries are invertible, so the auto-generated reverse is not Range Void Any.
        assert!(table.rows.iter().all(|r| r.reverse_auto_generated));
        assert!(table
            .rows
            .iter()
            .all(|r| !r.reverse.contains("Range Void Any")));
        let rendered = table.render();
        assert!(rendered.contains("UProtein"));
        assert!(rendered.contains("pedro"));
        assert!(rendered.contains("(auto)"));
    }

    #[test]
    fn scheme_key_parsing() {
        assert_eq!(parse_scheme_key("protein").parts, vec!["protein"]);
        assert_eq!(
            parse_scheme_key("protein, accession_num").parts,
            vec!["protein", "accession_num"]
        );
    }
}
