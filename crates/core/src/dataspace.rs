//! The `Dataspace` facade.
//!
//! A [`Dataspace`] ties together everything an application needs to run the paper's
//! methodology end-to-end: the wrapped data sources, the schemas-and-transformations
//! repository, the current federated and global schemas, the view definitions that
//! make them queryable, and the effort bookkeeping. The typical lifecycle mirrors the
//! workflow of §2.3:
//!
//! 1. [`Dataspace::add_source`] for each data source (wrapping, step 1);
//! 2. [`Dataspace::federate`] — the zero-effort federated schema (step 2), which also
//!    becomes the first global schema;
//! 3. repeatedly [`Dataspace::integrate`] with an [`IntersectionSpec`] (steps 3–5),
//!    each call re-deriving the global schema;
//! 4. [`Dataspace::query`] at any point (step 6 / data services).

use crate::error::CoreError;
use crate::federated::{federate, Federation};
use crate::global::{derive_global, GlobalDerivation};
use crate::intersection::{build_intersection, IntersectionResult};
use crate::mapping::IntersectionSpec;
use crate::metrics::{EffortReport, IterationEffort};
use automed::qp::evaluator::{ExtentMemo, SharedExtentCache, VirtualExtents};
use automed::wrapper::SourceRegistry;
use automed::{Repository, Schema};
use iql::lru::LruMap;
use iql::value::{Bag, Value};
use iql::PlanCache;
use relational::Database;
use std::sync::{Arc, PoisonError, RwLock};

/// Configuration of a dataspace.
#[derive(Debug, Clone)]
pub struct DataspaceConfig {
    /// Whether redundant (covered) source objects are dropped from the global schema
    /// after each iteration — the optional step 5 choice in the paper's workflow.
    pub drop_redundant: bool,
    /// Name given to the federated schema.
    pub federated_name: String,
    /// Prefix for the global schema names (`G0`, `G1`, … per iteration).
    pub global_prefix: String,
    /// Maximum number of query plans the persistent [`PlanCache`] holds; the
    /// least recently used plan is evicted past this bound. The query-text
    /// parse memo (and, inside the plan cache, the histogram side-table) are
    /// sized from this knob too — one capacity for all per-query memos.
    pub plan_cache_capacity: usize,
    /// Maximum number of global-schema extents the shared memo holds; the least
    /// recently used extent is evicted past this bound (and recomputed on next
    /// use — eviction never affects answers).
    pub extent_cache_capacity: usize,
}

impl Default for DataspaceConfig {
    fn default() -> Self {
        DataspaceConfig {
            drop_redundant: true,
            federated_name: "F".into(),
            global_prefix: "G".into(),
            plan_cache_capacity: iql::eval::DEFAULT_PLAN_CAPACITY,
            extent_cache_capacity: automed::qp::evaluator::DEFAULT_EXTENT_CAPACITY,
        }
    }
}

/// The dataspace: sources, repository, current schemas and effort history.
///
/// Query answering keeps caches that persist **across** [`Dataspace::query`] /
/// [`Dataspace::query_all`] calls (each call hands out a fresh [`VirtualExtents`]
/// view, but the views share this state): a scheme-extent memo, so re-running
/// priority queries never recomputes a global extent; an [`iql::PlanCache`], so
/// re-runs skip comprehension planning and hash-index building entirely; and a
/// parse memo for batched re-runs. All are **bounded** — least-recently-used
/// entries are evicted past the capacities set in [`DataspaceConfig`], so a
/// long-lived dataspace serving an unbounded query stream keeps bounded memory
/// (an evicted entry is recomputed on next use, never served stale). The memos
/// invalidate when the schemas change — [`Dataspace::federate`] /
/// [`Dataspace::integrate`] bump an internal generation that clears the extent
/// memo and (folded into the provider's version stamp) retires every cached
/// plan — and when source data mutates (version stamps).
#[derive(Debug)]
pub struct Dataspace {
    registry: SourceRegistry,
    repository: Repository,
    member_names: Vec<String>,
    federation: Option<Federation>,
    intersections: Vec<IntersectionResult>,
    global: Option<GlobalDerivation>,
    effort: EffortReport,
    config: DataspaceConfig,
    /// Scheme-extent memo shared by every provider this dataspace hands out.
    extent_cache: SharedExtentCache,
    /// Plan memo shared by every provider this dataspace hands out.
    plan_cache: Arc<PlanCache>,
    /// Bounded query-text → AST memo (prepared-statement style): pay-as-you-go
    /// workloads re-run the same priority-query set after every iteration, so
    /// re-issued texts — through [`Dataspace::query`], [`Dataspace::query_all`]
    /// and friends — skip the parser. Pure syntax, so entries never go stale.
    parse_cache: RwLock<LruMap<String, Arc<iql::Expr>>>,
    /// Bumped whenever the queryable definitions change; folded into the provider
    /// version so stale plans can never serve.
    generation: u64,
}

impl Default for Dataspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Dataspace {
    /// A dataspace with the default configuration.
    pub fn new() -> Self {
        Dataspace::with_config(DataspaceConfig::default())
    }

    /// A dataspace with a custom configuration.
    pub fn with_config(config: DataspaceConfig) -> Self {
        let extent_cache = Arc::new(ExtentMemo::with_capacity(config.extent_cache_capacity));
        let plan_cache = Arc::new(PlanCache::with_capacity(config.plan_cache_capacity));
        let parse_cache = RwLock::new(LruMap::new(config.plan_cache_capacity));
        Dataspace {
            registry: SourceRegistry::new(),
            repository: Repository::new(),
            member_names: Vec::new(),
            federation: None,
            intersections: Vec::new(),
            global: None,
            effort: EffortReport::default(),
            config,
            extent_cache,
            plan_cache,
            parse_cache,
            generation: 0,
        }
    }

    /// Parse through the bounded parse memo: batch re-runs of the same query
    /// text skip the parser (syntax only — never invalidated by schema changes).
    fn parse_cached(&self, query: &str) -> Result<Arc<iql::Expr>, CoreError> {
        if let Some(expr) = self
            .parse_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(query)
        {
            return Ok(Arc::clone(expr));
        }
        let expr = Arc::new(iql::parse(query)?);
        self.parse_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(query.to_string(), Arc::clone(&expr));
        Ok(expr)
    }

    /// The queryable definitions changed: advance the generation so every cached
    /// plan goes stale (the provider version moves, which also makes the
    /// version-stamped extent memo clear itself) and clear the memo eagerly.
    fn bump_generation(&mut self) {
        self.generation += 1;
        self.extent_cache.clear();
    }

    /// The shared plan cache backing [`Dataspace::query`] (hit/miss counters and the
    /// explicit invalidation hook live on it).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Number of global-schema extents currently memoised across queries.
    pub fn cached_extent_count(&self) -> usize {
        self.extent_cache.len()
    }

    /// Wrap and register a data source (workflow step 1). Must be called before
    /// [`Dataspace::federate`].
    pub fn add_source(&mut self, database: Database) -> Result<&Schema, CoreError> {
        if self.federation.is_some() {
            return Err(CoreError::WorkflowOrder(
                "sources must be added before federating".into(),
            ));
        }
        let schema = self.registry.add_source(database)?;
        let name = schema.name.clone();
        self.repository.add_source_schema(schema)?;
        self.member_names.push(name.clone());
        self.repository.schema(&name).map_err(CoreError::from)
    }

    /// Build the federated schema over all registered sources (workflow step 2). The
    /// federated schema doubles as the first version of the global schema and costs no
    /// manual effort.
    pub fn federate(&mut self) -> Result<&Schema, CoreError> {
        if self.member_names.is_empty() {
            return Err(CoreError::WorkflowOrder("no sources to federate".into()));
        }
        if self.federation.is_some() {
            return Err(CoreError::WorkflowOrder("already federated".into()));
        }
        let members: Vec<&Schema> = self
            .member_names
            .iter()
            .map(|n| self.repository.schema(n))
            .collect::<Result<_, _>>()?;
        let federation = federate(&self.config.federated_name, members)?;
        self.repository.put_schema(federation.schema.clone());
        self.federation = Some(federation);
        self.rederive_global()?;
        self.bump_generation();
        let size = self.global_schema()?.len();
        self.effort.iterations.push(IterationEffort {
            iteration: 0,
            label: "federation".into(),
            manual_transformations: 0,
            auto_transformations: 0,
            cumulative_manual: 0,
            global_schema_size: size,
        });
        self.federated_schema()
    }

    /// Run one iteration of the integration workflow (steps 3–5): build the
    /// intersection schema described by `spec`, register its pathways, and re-derive
    /// the global schema.
    pub fn integrate(&mut self, spec: IntersectionSpec) -> Result<IterationEffort, CoreError> {
        if self.federation.is_none() {
            return Err(CoreError::WorkflowOrder(
                "federate() must be called before integrate()".into(),
            ));
        }
        let result = build_intersection(&spec, &self.repository)?;
        // Register the intersection schema and its pathways in the repository.
        self.repository.put_schema(result.schema.clone());
        for pathway in &result.pathways {
            self.repository.add_pathway_unchecked(pathway.clone());
        }
        self.intersections.push(result);
        self.rederive_global()?;
        self.bump_generation();

        let latest = self.intersections.last().expect("just pushed");
        let cumulative = self.effort.total_manual() + latest.manual_transformations;
        let record = IterationEffort {
            iteration: self.effort.iterations.len(),
            label: spec.name.clone(),
            manual_transformations: latest.manual_transformations,
            auto_transformations: latest.auto_transformations,
            cumulative_manual: cumulative,
            global_schema_size: self.global_schema()?.len(),
        };
        self.effort.iterations.push(record.clone());
        Ok(record)
    }

    fn rederive_global(&mut self) -> Result<(), CoreError> {
        let members: Vec<&Schema> = self
            .member_names
            .iter()
            .map(|n| self.repository.schema(n))
            .collect::<Result<_, _>>()?;
        let intersections: Vec<&IntersectionResult> = self.intersections.iter().collect();
        let name = format!("{}{}", self.config.global_prefix, self.intersections.len());
        let derivation =
            derive_global(&name, &members, &intersections, self.config.drop_redundant)?;
        self.repository.put_schema(derivation.schema.clone());
        self.global = Some(derivation);
        Ok(())
    }

    /// The current federated schema.
    pub fn federated_schema(&self) -> Result<&Schema, CoreError> {
        self.federation
            .as_ref()
            .map(|f| &f.schema)
            .ok_or_else(|| CoreError::WorkflowOrder("not federated yet".into()))
    }

    /// The current global schema.
    pub fn global_schema(&self) -> Result<&Schema, CoreError> {
        self.global
            .as_ref()
            .map(|g| &g.schema)
            .ok_or_else(|| CoreError::WorkflowOrder("no global schema yet".into()))
    }

    /// An extent provider answering queries over the current global schema. All
    /// providers handed out share the dataspace's persistent extent memo and plan
    /// cache, so repeated queries skip both extent computation and planning.
    pub fn provider(&self) -> Result<VirtualExtents<'_>, CoreError> {
        let global = self
            .global
            .as_ref()
            .ok_or_else(|| CoreError::WorkflowOrder("no global schema yet".into()))?;
        Ok(VirtualExtents::new(&self.registry, &global.definitions)
            .with_shared_cache(Arc::clone(&self.extent_cache))
            .with_plan_cache(Arc::clone(&self.plan_cache))
            .with_version_salt(self.generation))
    }

    /// Parse and answer an IQL query over the current global schema, expecting a bag
    /// result. Parsing goes through the same bounded memo as [`Dataspace::query_all`],
    /// so re-issued query texts skip the parser.
    pub fn query(&self, query: &str) -> Result<Bag, CoreError> {
        let expr = self.parse_cached(query)?;
        Ok(self.provider()?.answer_bag(&expr)?)
    }

    /// Answer a batch of independent IQL queries concurrently, returning one
    /// result per query **in input order**.
    ///
    /// This is the pay-as-you-go fast path: the paper's workload re-runs a set of
    /// priority queries after every integration iteration, and those queries are
    /// independent of each other. Each query gets its own provider view, but all
    /// views share the dataspace's persistent extent memo and plan cache, so
    /// concurrent queries touching the same global extents compute them once.
    /// Worker threads come out of the process-wide [`iql::FetchPool`] budget —
    /// batching never oversubscribes the machine, and with no permits available
    /// the batch degrades gracefully to a sequential loop.
    ///
    /// Equivalence with the sequential loop (`queries.iter().map(|q|
    /// ds.query(q))`), per item and in order, is locked in by the differential
    /// test suite.
    ///
    /// ```
    /// use dataspace_core::dataspace::Dataspace;
    /// use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    /// use relational::Database;
    ///
    /// let mut schema = RelSchema::new("pedro");
    /// schema
    ///     .add_table(
    ///         RelTable::new("protein")
    ///             .with_column(RelColumn::new("id", DataType::Int))
    ///             .with_column(RelColumn::new("accession_num", DataType::Text))
    ///             .with_primary_key(["id"]),
    ///     )
    ///     .unwrap();
    /// let mut db = Database::new(schema);
    /// db.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
    /// db.insert("protein", vec![2.into(), "ACC2".into()]).unwrap();
    ///
    /// let mut ds = Dataspace::new();
    /// ds.add_source(db).unwrap();
    /// ds.federate().unwrap();
    ///
    /// let results = ds.query_all(&[
    ///     "[k | k <- <<PEDRO_protein>>]",
    ///     "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>; k = 2]",
    /// ]);
    /// assert_eq!(results.len(), 2);
    /// assert_eq!(results[0].as_ref().unwrap().len(), 2);
    /// assert_eq!(results[1].as_ref().unwrap().len(), 1);
    /// ```
    pub fn query_all(&self, queries: &[&str]) -> Vec<Result<Bag, CoreError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let provider = match self.provider() {
            Ok(p) => p,
            Err(e) => return queries.iter().map(|_| Err(e.clone())).collect(),
        };
        let exprs: Vec<Result<Arc<iql::Expr>, CoreError>> =
            queries.iter().map(|q| self.parse_cached(q)).collect();
        let answer =
            |provider: &VirtualExtents<'_>, expr: &Result<Arc<iql::Expr>, CoreError>| match expr {
                Ok(e) => Ok(provider.answer_bag(e)?),
                Err(e) => Err(e.clone()),
            };
        // Fan out only when the machine can actually run workers alongside the
        // caller; a single-core host answers the whole batch inline (still
        // amortising parse + provider setup over the batch).
        let mut permits = if queries.len() >= 2 && iql::FetchPool::global().capacity() >= 2 {
            iql::FetchPool::global().acquire_up_to(queries.len() - 1)
        } else {
            iql::FetchPool::global().acquire_up_to(0)
        };
        if permits.count() == 0 {
            return exprs.iter().map(|e| answer(&provider, e)).collect();
        }
        let workers = permits.count() + 1; // the calling thread takes a share too
        let chunk = exprs.len().div_ceil(workers);
        // Ceil-division may need fewer chunks than workers: return the surplus
        // permits instead of stranding them for the fan-out.
        permits.truncate(exprs.len().div_ceil(chunk) - 1);
        std::thread::scope(|scope| {
            let mut chunks = exprs.chunks(chunk);
            let caller_share = chunks.next().unwrap_or(&[]);
            let handles: Vec<_> = chunks
                .map(|slice| {
                    scope.spawn(|| {
                        // One provider per worker: all of them share the
                        // dataspace's extent memo and plan cache.
                        let p = match self.provider() {
                            Ok(p) => p,
                            Err(e) => return slice.iter().map(|_| Err(e.clone())).collect(),
                        };
                        slice.iter().map(|e| answer(&p, e)).collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut results: Vec<Result<Bag, CoreError>> =
                caller_share.iter().map(|e| answer(&provider, e)).collect();
            for handle in handles {
                results.extend(handle.join().expect("batched query worker panicked"));
            }
            results
        })
    }

    /// Parse and answer an IQL query over the current global schema, returning any
    /// value (useful for aggregates). Parses through the bounded memo.
    pub fn query_value(&self, query: &str) -> Result<Value, CoreError> {
        let expr = self.parse_cached(query)?;
        Ok(self.provider()?.answer(&expr)?)
    }

    /// Answer an already-parsed query.
    pub fn query_expr(&self, query: &iql::Expr) -> Result<Value, CoreError> {
        Ok(self.provider()?.answer(query)?)
    }

    /// Whether a query can currently be answered (parses, reformulates and evaluates
    /// without error). Used to build pay-as-you-go curves.
    pub fn can_answer(&self, query: &str) -> bool {
        match self.parse_cached(query) {
            Ok(expr) => self
                .provider()
                .map(|p| p.answer(&expr).is_ok())
                .unwrap_or(false),
            Err(_) => false,
        }
    }

    /// Names of the registered member (source) schemas.
    pub fn source_names(&self) -> &[String] {
        &self.member_names
    }

    /// The intersections built so far.
    pub fn intersections(&self) -> &[IntersectionResult] {
        &self.intersections
    }

    /// The effort history.
    pub fn effort_report(&self) -> &EffortReport {
        &self.effort
    }

    /// The schemas-and-transformations repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The source registry.
    pub fn registry(&self) -> &SourceRegistry {
        &self.registry
    }

    /// The federated schemes dropped as redundant in the latest global derivation.
    pub fn dropped_redundant(&self) -> &[iql::ast::SchemeRef] {
        self.global
            .as_ref()
            .map(|g| g.dropped_redundant.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ObjectMapping, SourceContribution};
    use iql::ast::SchemeRef;
    use relational::schema::{DataType, RelColumn, RelSchema, RelTable};

    fn pedro() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::nullable("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert(
            "protein",
            vec![1.into(), "ACC1".into(), "Homo sapiens".into()],
        )
        .unwrap();
        db.insert(
            "protein",
            vec![2.into(), "ACC2".into(), "Mus musculus".into()],
        )
        .unwrap();
        db
    }

    fn gpmdb() -> Database {
        let mut s = RelSchema::new("gpmdb");
        s.add_table(
            RelTable::new("proseq")
                .with_column(RelColumn::new("proseqid", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["proseqid"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("proseq", vec![10.into(), "ACC2".into()]).unwrap();
        db.insert("proseq", vec![11.into(), "ACC3".into()]).unwrap();
        db
    }

    fn uprotein_spec() -> IntersectionSpec {
        IntersectionSpec::new("I1")
            .with_mapping(
                ObjectMapping::table("UProtein")
                    .with_contribution(
                        SourceContribution::parsed(
                            "pedro",
                            "[{'PEDRO', k} | k <- <<protein>>]",
                            ["protein"],
                        )
                        .unwrap(),
                    )
                    .with_contribution(
                        SourceContribution::parsed(
                            "gpmdb",
                            "[{'gpmDB', k} | k <- <<proseq>>]",
                            ["proseq"],
                        )
                        .unwrap(),
                    ),
            )
            .with_mapping(
                ObjectMapping::column("UProtein", "accession_num")
                    .with_contribution(
                        SourceContribution::parsed(
                            "pedro",
                            "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                            ["protein,accession_num"],
                        )
                        .unwrap(),
                    )
                    .with_contribution(
                        SourceContribution::parsed(
                            "gpmdb",
                            "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                            ["proseq,label"],
                        )
                        .unwrap(),
                    ),
            )
    }

    fn dataspace() -> Dataspace {
        let mut ds = Dataspace::new();
        ds.add_source(pedro()).unwrap();
        ds.add_source(gpmdb()).unwrap();
        ds.federate().unwrap();
        ds
    }

    #[test]
    fn workflow_order_enforced() {
        let mut ds = Dataspace::new();
        assert!(ds.federate().is_err());
        assert!(ds.integrate(uprotein_spec()).is_err());
        ds.add_source(pedro()).unwrap();
        ds.federate().unwrap();
        assert!(ds.add_source(gpmdb()).is_err());
        assert!(ds.federate().is_err());
    }

    #[test]
    fn federated_schema_is_queryable_without_effort() {
        let ds = dataspace();
        assert_eq!(ds.effort_report().total_manual(), 0);
        let n = ds.query_value("count <<PEDRO_protein>>").unwrap();
        assert_eq!(n, Value::Int(2));
        assert!(ds.can_answer("count <<GPMDB_proseq, GPMDB_label>>"));
        // Integrated concepts do not exist yet.
        assert!(!ds.can_answer("count <<UProtein>>"));
    }

    #[test]
    fn integration_iteration_produces_queryable_global_schema() {
        let mut ds = dataspace();
        let record = ds.integrate(uprotein_spec()).unwrap();
        assert_eq!(record.manual_transformations, 4);
        assert_eq!(record.cumulative_manual, 4);
        // 2 (pedro) + 2 (gpmdb) = 4 UProtein entries.
        assert_eq!(ds.query_value("count <<UProtein>>").unwrap(), Value::Int(4));
        // Cross-source join through the integrated concept: ACC2 appears in both.
        let shared = ds
            .query(
                "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']",
            )
            .unwrap();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn redundant_objects_dropped_but_uncovered_ones_remain() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let global = ds.global_schema().unwrap();
        assert!(global.contains(&SchemeRef::table("UProtein")));
        assert!(!global.contains(&SchemeRef::table("PEDRO_protein")));
        // organism was not covered, so it remains (prefixed) and stays queryable.
        assert!(global.contains(&SchemeRef::column("PEDRO_protein", "PEDRO_organism")));
        assert_eq!(
            ds.query_value("count <<PEDRO_protein, PEDRO_organism>>")
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(ds.dropped_redundant().len(), 4);
    }

    #[test]
    fn keep_redundant_configuration() {
        let mut ds = Dataspace::with_config(DataspaceConfig {
            drop_redundant: false,
            ..DataspaceConfig::default()
        });
        ds.add_source(pedro()).unwrap();
        ds.add_source(gpmdb()).unwrap();
        ds.federate().unwrap();
        ds.integrate(uprotein_spec()).unwrap();
        let global = ds.global_schema().unwrap();
        assert!(global.contains(&SchemeRef::table("PEDRO_protein")));
        assert!(global.contains(&SchemeRef::table("UProtein")));
        assert!(ds.dropped_redundant().is_empty());
        // Redundant object still answers, and its extent matches the source.
        assert_eq!(
            ds.query_value("count <<PEDRO_protein>>").unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn effort_report_accumulates_over_iterations() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let spec2 = IntersectionSpec::new("I2").with_mapping(
            ObjectMapping::column("UProtein", "organism").with_contribution(
                SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<protein, organism>>]",
                    ["protein,organism"],
                )
                .unwrap(),
            ),
        );
        let record2 = ds.integrate(spec2).unwrap();
        assert_eq!(record2.manual_transformations, 1);
        assert_eq!(record2.cumulative_manual, 5);
        assert_eq!(ds.effort_report().iterations.len(), 3); // federation + 2
        assert_eq!(ds.effort_report().total_manual(), 5);
        assert_eq!(
            ds.query_value("count <<UProtein, organism>>").unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn repository_records_schemas_and_pathways() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let repo = ds.repository();
        assert!(repo.has_schema("pedro"));
        assert!(repo.has_schema("F"));
        assert!(repo.has_schema("I1"));
        assert!(repo.has_schema("G1"));
        // A pathway exists from each source to the intersection schema.
        assert!(repo.pathway_between("pedro", "I1").is_ok());
        assert!(repo.pathway_between("gpmdb", "I1").is_ok());
        // And therefore (via reversal/composition) between the two sources.
        assert!(repo.pathway_between("pedro", "gpmdb").is_ok());
    }

    #[test]
    fn repeated_queries_hit_the_persistent_plan_and_extent_caches() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let q = "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']";
        let first = ds.query(q).unwrap();
        assert!(
            ds.cached_extent_count() > 0,
            "extents memoised across calls"
        );
        let misses = ds.plan_cache().miss_count();
        let hits = ds.plan_cache().hit_count();
        let second = ds.query(q).unwrap();
        assert_eq!(first, second);
        assert!(ds.plan_cache().hit_count() > hits, "re-run hits plan cache");
        assert_eq!(
            ds.plan_cache().miss_count(),
            misses,
            "no replanning on re-run"
        );
    }

    #[test]
    fn integrate_invalidates_caches_so_new_concepts_answer() {
        let mut ds = dataspace();
        assert!(!ds.can_answer("count <<UProtein>>"));
        // Warm the caches on the federated schema...
        assert_eq!(
            ds.query_value("count <<PEDRO_protein>>").unwrap(),
            Value::Int(2)
        );
        let cached = ds.cached_extent_count();
        assert!(cached > 0);
        // ...then integrate: the generation bump clears the extent memo and
        // retires cached plans, and the new concept answers correctly.
        ds.integrate(uprotein_spec()).unwrap();
        assert!(ds.cached_extent_count() < cached || ds.cached_extent_count() == 0);
        assert_eq!(ds.query_value("count <<UProtein>>").unwrap(), Value::Int(4));
        // An uncovered federated object survives redundancy dropping and still
        // answers through the rebuilt caches.
        assert_eq!(
            ds.query_value("count <<PEDRO_protein, PEDRO_organism>>")
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn query_errors_are_reported() {
        let ds = dataspace();
        assert!(matches!(ds.query("[oops"), Err(CoreError::Parse(_))));
        assert!(ds.query("count <<NoSuchThing>>").is_err());
        assert!(!ds.can_answer("count <<NoSuchThing>>"));
    }
}
