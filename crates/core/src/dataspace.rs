//! The `Dataspace` facade.
//!
//! A [`Dataspace`] ties together everything an application needs to run the paper's
//! methodology end-to-end: the wrapped data sources, the schemas-and-transformations
//! repository, the current federated and global schemas, the view definitions that
//! make them queryable, and the effort bookkeeping. The typical lifecycle mirrors the
//! workflow of §2.3:
//!
//! 1. [`Dataspace::add_source`] for each data source (wrapping, step 1);
//! 2. [`Dataspace::federate`] — the zero-effort federated schema (step 2), which also
//!    becomes the first global schema;
//! 3. repeatedly [`Dataspace::integrate`] with an [`IntersectionSpec`] (steps 3–5),
//!    each call re-deriving the global schema;
//! 4. [`Dataspace::prepare`] + [`PreparedQuery::execute`] at any point (step 6 /
//!    data services) — or the [`Dataspace::query`] convenience wrapper for
//!    one-off, placeholder-free texts.

use crate::error::CoreError;
use crate::federated::{federate, Federation};
use crate::global::{derive_global, GlobalDerivation};
use crate::intersection::{build_intersection, IntersectionResult};
use crate::mapping::IntersectionSpec;
use crate::metrics::{EffortReport, IterationEffort};
use crate::subscriptions::{
    global_scheme_delta, DepContext, SubState, Subscription, SubscriptionRegistry,
    SubscriptionUpdate,
};
use automed::qp::evaluator::{ExtentMemo, SharedExtentCache, VirtualExtents};
use automed::wrapper::SourceRegistry;
use automed::{Repository, Schema};
use iql::eval::ExtentProvider;
use iql::lru::LruMap;
use iql::value::{Bag, Value};
use iql::{IndexStore, Params, PlanCache};
use relational::storage::{BatchCommit, StorageEngine};
use relational::store::TableDelta;
use relational::wal::{CommitLog, CompactionReport, LogRecord};
use relational::Database;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError, RwLock};

/// Configuration of a dataspace.
#[derive(Debug, Clone)]
pub struct DataspaceConfig {
    /// Whether redundant (covered) source objects are dropped from the global schema
    /// after each iteration — the optional step 5 choice in the paper's workflow.
    pub drop_redundant: bool,
    /// Name given to the federated schema.
    pub federated_name: String,
    /// Prefix for the global schema names (`G0`, `G1`, … per iteration).
    pub global_prefix: String,
    /// Maximum number of query plans the persistent [`PlanCache`] holds; the
    /// least recently used plan is evicted past this bound. The query-text
    /// parse memo (and, inside the plan cache, the histogram side-table) are
    /// sized from this knob too — one capacity for all per-query memos.
    pub plan_cache_capacity: usize,
    /// Maximum number of global-schema extents the shared memo holds; the least
    /// recently used extent is evicted past this bound (and recomputed on next
    /// use — eviction never affects answers).
    pub extent_cache_capacity: usize,
    /// Byte budget for the extent memo's materialised bags: eviction also
    /// weighs each memoised extent by its estimated resident bytes
    /// ([`iql::value::Bag::approx_bytes`]), so one million-row extent can't
    /// hide behind a generous entry count.
    pub extent_cache_bytes: u64,
    /// Whether residual point-equality filters (`x = ?p` / `x = literal`) in
    /// prepared queries are served by secondary hash indexes from the shared
    /// [`iql::IndexStore`] instead of per-execution extent scans. On by
    /// default; disable for the index-free differential/benchmark leg.
    pub point_lookup_indexes: bool,
    /// Maximum number of point-lookup indexes the shared [`iql::IndexStore`]
    /// holds (LRU eviction past this bound).
    pub index_cache_capacity: usize,
    /// Byte budget for the [`PlanCache`]'s materialised plan state: eviction
    /// weighs each cached plan by its estimated footprint besides counting it.
    pub plan_cache_bytes: u64,
    /// Byte budget for the [`iql::IndexStore`]'s indexes.
    pub index_cache_bytes: u64,
    /// Actual/estimated cardinality divergence factor past which a cached plan
    /// re-optimises on its next execution (see
    /// [`iql::eval::Evaluator::with_reopt_factor`]).
    pub reopt_divergence_factor: f64,
    /// Whether eligible planned comprehensions run on the vectorised columnar
    /// executor (see [`iql::eval::Evaluator::with_columnar`]). On by default;
    /// disable to force every execution onto the row-at-a-time engine — the
    /// differential oracle leg. Either way results are identical; standing
    /// subscriptions always stay on the row path.
    pub columnar: bool,
    /// Whether every append to an attached commit log ([`Dataspace::open`]) is
    /// `fsync`'d before the insert returns. Off by default: the OS page cache
    /// decides when bytes hit disk, so a crash may lose the newest batches but
    /// recovery still replays a consistent prefix (the log's checksummed
    /// framing truncates any torn tail). Turn it on when an acknowledged
    /// insert must survive power loss; `table1_durability` benches the cost.
    pub wal_fsync: bool,
}

impl Default for DataspaceConfig {
    fn default() -> Self {
        DataspaceConfig {
            drop_redundant: true,
            federated_name: "F".into(),
            global_prefix: "G".into(),
            plan_cache_capacity: iql::eval::DEFAULT_PLAN_CAPACITY,
            extent_cache_capacity: automed::qp::evaluator::DEFAULT_EXTENT_CAPACITY,
            extent_cache_bytes: automed::qp::evaluator::DEFAULT_EXTENT_BYTES,
            point_lookup_indexes: true,
            index_cache_capacity: iql::index::DEFAULT_INDEX_CAPACITY,
            plan_cache_bytes: iql::eval::DEFAULT_PLAN_CACHE_BYTES,
            index_cache_bytes: iql::index::DEFAULT_INDEX_BYTES,
            reopt_divergence_factor: iql::eval::DEFAULT_REOPT_FACTOR,
            columnar: true,
            wal_fsync: false,
        }
    }
}

/// The dataspace: sources, repository, current schemas and effort history.
///
/// Query answering keeps caches that persist **across** [`Dataspace::query`] /
/// [`Dataspace::query_all`] calls (each call hands out a fresh [`VirtualExtents`]
/// view, but the views share this state): a scheme-extent memo, so re-running
/// priority queries never recomputes a global extent; an [`iql::PlanCache`], so
/// re-runs skip comprehension planning and hash-index building entirely; and a
/// parse memo for batched re-runs. All are **bounded** — least-recently-used
/// entries are evicted past the capacities set in [`DataspaceConfig`], so a
/// long-lived dataspace serving an unbounded query stream keeps bounded memory
/// (an evicted entry is recomputed on next use, never served stale). The memos
/// invalidate when the schemas change — [`Dataspace::federate`] /
/// [`Dataspace::integrate`] bump an internal generation that clears the extent
/// memo and (folded into the provider's version stamp) retires every cached
/// plan — and when source data mutates (version stamps).
#[derive(Debug)]
pub struct Dataspace {
    registry: SourceRegistry,
    repository: Repository,
    member_names: Vec<String>,
    federation: Option<Federation>,
    intersections: Vec<IntersectionResult>,
    global: Option<GlobalDerivation>,
    effort: EffortReport,
    config: DataspaceConfig,
    /// Scheme-extent memo shared by every provider this dataspace hands out.
    extent_cache: SharedExtentCache,
    /// Plan memo shared by every provider this dataspace hands out.
    plan_cache: Arc<PlanCache>,
    /// Secondary point-lookup indexes shared by every provider this dataspace
    /// hands out (see [`iql::IndexStore`]).
    index_store: Arc<IndexStore>,
    /// Bounded query-text → parsed-query memo: pay-as-you-go workloads re-run
    /// the same priority-query set after every iteration, so re-issued texts —
    /// through [`Dataspace::prepare`], [`Dataspace::query`],
    /// [`Dataspace::query_all`] and friends — skip the parser *and* the
    /// placeholder-set walk. Pure syntax, so entries never go stale.
    parse_cache: RwLock<LruMap<String, ParsedQuery>>,
    /// Bumped whenever the queryable definitions change; folded into the provider
    /// version so stale plans can never serve.
    generation: u64,
    /// Standing subscriptions maintained across [`Dataspace::insert`] /
    /// [`Dataspace::insert_many`] (see [`crate::subscriptions`]).
    subscriptions: SubscriptionRegistry,
    /// Execution-engine counters shared by every provider this dataspace hands
    /// out (columnar completions and row-engine fallbacks; see
    /// [`iql::EngineStats`]).
    engine_stats: Arc<iql::EngineStats>,
    /// The attached durable commit log, if any (see [`Dataspace::open`]):
    /// every committed batch is appended as one [`LogRecord`].
    wal: Option<CommitLog>,
    /// Committed batches appended to the attached log over this dataspace's
    /// lifetime (recovery replays excluded).
    wal_appends: u64,
    /// Batches replayed from the log by [`Dataspace::open`].
    recovery_replays: u64,
}

impl Default for Dataspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Dataspace {
    /// A dataspace with the default configuration.
    pub fn new() -> Self {
        Dataspace::with_config(DataspaceConfig::default())
    }

    /// A dataspace with a custom configuration.
    pub fn with_config(config: DataspaceConfig) -> Self {
        let extent_cache = Arc::new(ExtentMemo::with_capacity_and_bytes(
            config.extent_cache_capacity,
            config.extent_cache_bytes,
        ));
        let plan_cache = Arc::new(PlanCache::with_capacity_and_bytes(
            config.plan_cache_capacity,
            config.plan_cache_bytes,
        ));
        let index_store = Arc::new(IndexStore::with_capacity_and_bytes(
            config.index_cache_capacity,
            config.index_cache_bytes,
        ));
        let parse_cache = RwLock::new(LruMap::new(config.plan_cache_capacity));
        Dataspace {
            registry: SourceRegistry::new(),
            repository: Repository::new(),
            member_names: Vec::new(),
            federation: None,
            intersections: Vec::new(),
            global: None,
            effort: EffortReport::default(),
            config,
            extent_cache,
            plan_cache,
            index_store,
            parse_cache,
            generation: 0,
            subscriptions: SubscriptionRegistry::default(),
            engine_stats: Arc::new(iql::EngineStats::new()),
            wal: None,
            wal_appends: 0,
            recovery_replays: 0,
        }
    }

    /// Parse through the bounded parse memo: batch re-runs of the same query
    /// text skip the parser and the placeholder-set walk (syntax only — never
    /// invalidated by schema changes). Re-preparing a memoised text is three
    /// `Arc` bumps, no allocation or AST traversal.
    fn parse_cached(&self, query: &str) -> Result<ParsedQuery, CoreError> {
        if let Some(parsed) = self
            .parse_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(query)
        {
            return Ok(parsed.clone());
        }
        let expr = Arc::new(iql::parse(query)?);
        let parsed = ParsedQuery {
            text: Arc::from(query),
            params: Arc::new(iql::rewrite::collect_params(&expr)),
            expr,
        };
        self.parse_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(query.to_string(), parsed.clone());
        Ok(parsed)
    }

    /// The queryable definitions changed: advance the generation so every cached
    /// plan goes stale (the provider version moves, which also makes the
    /// version-stamped extent memo clear itself) and clear the memo eagerly.
    fn bump_generation(&mut self) {
        self.generation += 1;
        self.extent_cache.clear();
    }

    /// The shared plan cache backing [`Dataspace::query`] (hit/miss counters and the
    /// explicit invalidation hook live on it).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The shared secondary point-lookup index store backing prepared
    /// point-query execution (hit/miss/build counters and the explicit
    /// invalidation hook live on it).
    pub fn index_store(&self) -> &Arc<IndexStore> {
        &self.index_store
    }

    /// Number of global-schema extents currently memoised across queries.
    pub fn cached_extent_count(&self) -> usize {
        self.extent_cache.len()
    }

    /// Wrap and register a data source (workflow step 1). Must be called before
    /// [`Dataspace::federate`].
    pub fn add_source(&mut self, database: Database) -> Result<&Schema, CoreError> {
        if self.federation.is_some() {
            return Err(CoreError::WorkflowOrder(
                "sources must be added before federating".into(),
            ));
        }
        let schema = self.registry.add_source(database)?;
        let name = schema.name.clone();
        self.repository.add_source_schema(schema)?;
        self.member_names.push(name.clone());
        self.repository.schema(&name).map_err(CoreError::from)
    }

    /// Build the federated schema over all registered sources (workflow step 2). The
    /// federated schema doubles as the first version of the global schema and costs no
    /// manual effort.
    pub fn federate(&mut self) -> Result<&Schema, CoreError> {
        if self.member_names.is_empty() {
            return Err(CoreError::WorkflowOrder("no sources to federate".into()));
        }
        if self.federation.is_some() {
            return Err(CoreError::WorkflowOrder("already federated".into()));
        }
        let members: Vec<&Schema> = self
            .member_names
            .iter()
            .map(|n| self.repository.schema(n))
            .collect::<Result<_, _>>()?;
        let federation = federate(&self.config.federated_name, members)?;
        self.repository.put_schema(federation.schema.clone());
        self.federation = Some(federation);
        self.rederive_global()?;
        self.bump_generation();
        self.refresh_subscriptions();
        let size = self.global_schema()?.len();
        self.effort.iterations.push(IterationEffort {
            iteration: 0,
            label: "federation".into(),
            manual_transformations: 0,
            auto_transformations: 0,
            cumulative_manual: 0,
            global_schema_size: size,
        });
        self.federated_schema()
    }

    /// Run one iteration of the integration workflow (steps 3–5): build the
    /// intersection schema described by `spec`, register its pathways, and re-derive
    /// the global schema.
    pub fn integrate(&mut self, spec: IntersectionSpec) -> Result<IterationEffort, CoreError> {
        if self.federation.is_none() {
            return Err(CoreError::WorkflowOrder(
                "federate() must be called before integrate()".into(),
            ));
        }
        let result = build_intersection(&spec, &self.repository)?;
        // Register the intersection schema and its pathways in the repository.
        self.repository.put_schema(result.schema.clone());
        for pathway in &result.pathways {
            self.repository.add_pathway_unchecked(pathway.clone());
        }
        self.intersections.push(result);
        self.rederive_global()?;
        self.bump_generation();
        self.refresh_subscriptions();

        let latest = self.intersections.last().expect("just pushed");
        let cumulative = self.effort.total_manual() + latest.manual_transformations;
        let record = IterationEffort {
            iteration: self.effort.iterations.len(),
            label: spec.name.clone(),
            manual_transformations: latest.manual_transformations,
            auto_transformations: latest.auto_transformations,
            cumulative_manual: cumulative,
            global_schema_size: self.global_schema()?.len(),
        };
        self.effort.iterations.push(record.clone());
        Ok(record)
    }

    fn rederive_global(&mut self) -> Result<(), CoreError> {
        let members: Vec<&Schema> = self
            .member_names
            .iter()
            .map(|n| self.repository.schema(n))
            .collect::<Result<_, _>>()?;
        let intersections: Vec<&IntersectionResult> = self.intersections.iter().collect();
        let name = format!("{}{}", self.config.global_prefix, self.intersections.len());
        let derivation =
            derive_global(&name, &members, &intersections, self.config.drop_redundant)?;
        self.repository.put_schema(derivation.schema.clone());
        self.global = Some(derivation);
        Ok(())
    }

    /// The current federated schema.
    pub fn federated_schema(&self) -> Result<&Schema, CoreError> {
        self.federation
            .as_ref()
            .map(|f| &f.schema)
            .ok_or_else(|| CoreError::WorkflowOrder("not federated yet".into()))
    }

    /// The current global schema.
    pub fn global_schema(&self) -> Result<&Schema, CoreError> {
        self.global
            .as_ref()
            .map(|g| &g.schema)
            .ok_or_else(|| CoreError::WorkflowOrder("no global schema yet".into()))
    }

    /// An extent provider answering queries over the current global schema. All
    /// providers handed out share the dataspace's persistent extent memo and plan
    /// cache, so repeated queries skip both extent computation and planning.
    pub fn provider(&self) -> Result<VirtualExtents<'_>, CoreError> {
        let global = self
            .global
            .as_ref()
            .ok_or_else(|| CoreError::WorkflowOrder("no global schema yet".into()))?;
        let mut provider = VirtualExtents::new(&self.registry, &global.definitions)
            .with_shared_cache(Arc::clone(&self.extent_cache))
            .with_plan_cache(Arc::clone(&self.plan_cache))
            .with_reopt_factor(self.config.reopt_divergence_factor)
            .with_version_salt(self.generation)
            .with_engine_stats(Arc::clone(&self.engine_stats));
        if !self.config.columnar {
            provider = provider.without_columnar();
        }
        Ok(if self.config.point_lookup_indexes {
            provider.with_index_store(Arc::clone(&self.index_store))
        } else {
            provider.without_index()
        })
    }

    /// Prepare a query for repeated execution: parse it once (through the same
    /// bounded memo every string entry point shares) and record its `?name`
    /// placeholder set. The returned [`PreparedQuery`] executes under
    /// [`Params`] binding sets — **one plan per query shape**: because the
    /// parameterised expression is identical across bindings, every execution
    /// after the first is a [`PlanCache`] hit, where literal-splicing query
    /// text replans per value (and breaks outright on values containing `'`).
    ///
    /// ```
    /// use dataspace_core::dataspace::Dataspace;
    /// use iql::Params;
    /// use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    /// use relational::Database;
    ///
    /// let mut schema = RelSchema::new("pedro");
    /// schema
    ///     .add_table(
    ///         RelTable::new("protein")
    ///             .with_column(RelColumn::new("id", DataType::Int))
    ///             .with_column(RelColumn::new("accession_num", DataType::Text))
    ///             .with_primary_key(["id"]),
    ///     )
    ///     .unwrap();
    /// let mut db = Database::new(schema);
    /// db.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
    /// db.insert("protein", vec![2.into(), "ACC2".into()]).unwrap();
    ///
    /// let mut ds = Dataspace::new();
    /// ds.add_source(db).unwrap();
    /// ds.federate().unwrap();
    ///
    /// let q = ds
    ///     .prepare("[k | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>; x = ?acc]")
    ///     .unwrap();
    /// let hit = q.execute(&Params::new().with("acc", "ACC2")).unwrap();
    /// assert_eq!(hit.len(), 1);
    /// let miss = q.execute(&Params::new().with("acc", "it's-not-there")).unwrap();
    /// assert_eq!(miss.len(), 0); // quotes in values are safe: no text splicing
    /// ```
    pub fn prepare(&self, query: &str) -> Result<PreparedQuery<'_>, CoreError> {
        Ok(PreparedQuery {
            dataspace: self,
            parsed: self.parse_cached(query)?,
        })
    }

    /// Parse and answer an IQL query over the current global schema, expecting a bag
    /// result. A thin convenience wrapper over [`Dataspace::prepare`] +
    /// [`PreparedQuery::execute`] with no parameter bindings; queries that
    /// contain `?name` placeholders must go through [`Dataspace::prepare`].
    pub fn query(&self, query: &str) -> Result<Bag, CoreError> {
        self.prepare(query)?.execute(&Params::new())
    }

    /// Answer a batch of independent IQL queries concurrently, returning one
    /// result per query **in input order**.
    ///
    /// This is the pay-as-you-go fast path: the paper's workload re-runs a set of
    /// priority queries after every integration iteration, and those queries are
    /// independent of each other. Each query gets its own provider view, but all
    /// views share the dataspace's persistent extent memo and plan cache, so
    /// concurrent queries touching the same global extents compute them once.
    /// Worker threads come out of the process-wide [`iql::FetchPool`] budget —
    /// batching never oversubscribes the machine, and with no permits available
    /// the batch degrades gracefully to a sequential loop.
    ///
    /// Equivalence with the sequential loop (`queries.iter().map(|q|
    /// ds.query(q))`), per item and in order, is locked in by the differential
    /// test suite.
    ///
    /// ```
    /// use dataspace_core::dataspace::Dataspace;
    /// use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    /// use relational::Database;
    ///
    /// let mut schema = RelSchema::new("pedro");
    /// schema
    ///     .add_table(
    ///         RelTable::new("protein")
    ///             .with_column(RelColumn::new("id", DataType::Int))
    ///             .with_column(RelColumn::new("accession_num", DataType::Text))
    ///             .with_primary_key(["id"]),
    ///     )
    ///     .unwrap();
    /// let mut db = Database::new(schema);
    /// db.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
    /// db.insert("protein", vec![2.into(), "ACC2".into()]).unwrap();
    ///
    /// let mut ds = Dataspace::new();
    /// ds.add_source(db).unwrap();
    /// ds.federate().unwrap();
    ///
    /// let results = ds.query_all(&[
    ///     "[k | k <- <<PEDRO_protein>>]",
    ///     "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>; k = 2]",
    /// ]);
    /// assert_eq!(results.len(), 2);
    /// assert_eq!(results[0].as_ref().unwrap().len(), 2);
    /// assert_eq!(results[1].as_ref().unwrap().len(), 1);
    /// ```
    pub fn query_all(&self, queries: &[&str]) -> Vec<Result<Bag, CoreError>> {
        // Validate against the empty binding set, so a placeholder-bearing
        // text reports the same typed `UnboundParam` error here as it does
        // through `query` or `execute`.
        let no_params = Params::new();
        let items = queries.iter().map(|q| (*q, &no_params)).collect::<Vec<_>>();
        self.query_all_bound(&items)
    }

    /// Answer a batch of (query text, parameter binding) pairs concurrently,
    /// one result per pair **in input order** — the batched entry point for
    /// workloads whose queries carry bindings (e.g. re-running the case
    /// study's seven parameterised priority queries after an integration
    /// iteration). Rides the same [`iql::FetchPool`] fan-out as
    /// [`Dataspace::query_all`]; per-item preparation or validation errors
    /// surface in that item's slot without failing the batch.
    pub fn query_all_bound(&self, queries: &[(&str, &Params)]) -> Vec<Result<Bag, CoreError>> {
        let items = queries
            .iter()
            .map(
                |(q, params)| -> Result<(Arc<iql::Expr>, Params), CoreError> {
                    let prepared = self.prepare(q)?;
                    prepared.validate(params)?;
                    Ok((prepared.parsed.expr, (*params).clone()))
                },
            )
            .collect();
        self.answer_bound_batch(items)
    }

    /// The shared batch executor behind [`Dataspace::query_all`],
    /// [`Dataspace::query_all_bound`] and [`PreparedQuery::execute_all`]: each
    /// item is an already-parsed expression plus the parameter bindings to
    /// execute it under (or the per-item error to report). Worker threads come
    /// out of the process-wide [`iql::FetchPool`] budget — batching never
    /// oversubscribes the machine, and with no permits available the batch
    /// degrades gracefully to a sequential loop.
    #[allow(clippy::type_complexity)]
    fn answer_bound_batch(
        &self,
        items: Vec<Result<(Arc<iql::Expr>, Params), CoreError>>,
    ) -> Vec<Result<Bag, CoreError>> {
        if items.is_empty() {
            return Vec::new();
        }
        let provider = match self.provider() {
            Ok(p) => p,
            Err(e) => return items.iter().map(|_| Err(e.clone())).collect(),
        };
        type Item = Result<(Arc<iql::Expr>, Params), CoreError>;
        let answer = |provider: &VirtualExtents<'_>, item: &Item| match item {
            Ok((expr, params)) => Ok(provider.answer_bag_with(expr, params)?),
            Err(e) => Err(e.clone()),
        };
        // Fan out only when the machine can actually run workers alongside the
        // caller; a single-core host answers the whole batch inline (still
        // amortising parse + provider setup over the batch).
        let mut permits = if items.len() >= 2 && iql::FetchPool::global().capacity() >= 2 {
            iql::FetchPool::global().acquire_up_to(items.len() - 1)
        } else {
            iql::FetchPool::global().acquire_up_to(0)
        };
        if permits.count() == 0 {
            return items.iter().map(|e| answer(&provider, e)).collect();
        }
        let workers = permits.count() + 1; // the calling thread takes a share too
        let chunk = items.len().div_ceil(workers);
        // Ceil-division may need fewer chunks than workers: return the surplus
        // permits instead of stranding them for the fan-out.
        permits.truncate(items.len().div_ceil(chunk) - 1);
        std::thread::scope(|scope| {
            let mut chunks = items.chunks(chunk);
            let caller_share = chunks.next().unwrap_or(&[]);
            let handles: Vec<_> = chunks
                .map(|slice| {
                    scope.spawn(|| {
                        // One provider per worker: all of them share the
                        // dataspace's extent memo and plan cache.
                        let p = match self.provider() {
                            Ok(p) => p,
                            Err(e) => return slice.iter().map(|_| Err(e.clone())).collect(),
                        };
                        slice.iter().map(|e| answer(&p, e)).collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut results: Vec<Result<Bag, CoreError>> =
                caller_share.iter().map(|e| answer(&provider, e)).collect();
            for handle in handles {
                results.extend(handle.join().expect("batched query worker panicked"));
            }
            results
        })
    }

    /// Parse and answer an IQL query over the current global schema, returning any
    /// value (useful for aggregates). A thin wrapper over [`Dataspace::prepare`] +
    /// [`PreparedQuery::execute_value`] with no parameter bindings.
    pub fn query_value(&self, query: &str) -> Result<Value, CoreError> {
        self.prepare(query)?.execute_value(&Params::new())
    }

    /// Answer an already-parsed query.
    pub fn query_expr(&self, query: &iql::Expr) -> Result<Value, CoreError> {
        Ok(self.provider()?.answer(query)?)
    }

    /// Whether a query can currently be answered (parses, reformulates and evaluates
    /// without error). Used to build pay-as-you-go curves. Queries with `?name`
    /// placeholders need bindings — use [`Dataspace::can_answer_with`].
    pub fn can_answer(&self, query: &str) -> bool {
        self.can_answer_with(query, &Params::new())
    }

    /// Whether a parameterised query can currently be answered under the given
    /// bindings (prepares, validates, reformulates and evaluates without error).
    pub fn can_answer_with(&self, query: &str, params: &Params) -> bool {
        self.prepare(query)
            .and_then(|q| q.execute_value(params))
            .is_ok()
    }

    /// Names of the registered member (source) schemas.
    pub fn source_names(&self) -> &[String] {
        &self.member_names
    }

    /// The intersections built so far.
    pub fn intersections(&self) -> &[IntersectionResult] {
        &self.intersections
    }

    /// The effort history.
    pub fn effort_report(&self) -> &EffortReport {
        &self.effort
    }

    /// The schemas-and-transformations repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The source registry.
    pub fn registry(&self) -> &SourceRegistry {
        &self.registry
    }

    /// The federated schemes dropped as redundant in the latest global derivation.
    pub fn dropped_redundant(&self) -> &[iql::ast::SchemeRef] {
        self.global
            .as_ref()
            .map(|g| g.dropped_redundant.as_slice())
            .unwrap_or(&[])
    }

    /// A point-in-time snapshot of the dataspace's caching and concurrency
    /// machinery — the observability hook for asserting (in tests) and
    /// monitoring (in services) that the pay-as-you-go workload actually hits
    /// its caches: re-executing a prepared query under a *different* binding
    /// must be a plan-cache hit, not a replan.
    pub fn stats(&self) -> DataspaceStats {
        DataspaceStats {
            plan_cache_hits: self.plan_cache.hit_count(),
            plan_cache_misses: self.plan_cache.miss_count(),
            plan_cache_evictions: self.plan_cache.eviction_count(),
            plan_cache_len: self.plan_cache.len(),
            plan_cache_capacity: self.plan_cache.capacity(),
            plan_reopts: self.plan_cache.reopt_count(),
            histogram_refreshes: self.plan_cache.histogram_refresh_count(),
            index_hits: self.index_store.hit_count(),
            index_misses: self.index_store.miss_count(),
            index_builds: self.index_store.build_count(),
            index_refreshes: self.index_store.refresh_count(),
            index_evictions: self.index_store.eviction_count(),
            index_len: self.index_store.len(),
            extent_memo_len: self.extent_cache.len(),
            extent_memo_evictions: self.extent_cache.eviction_count(),
            parse_memo_len: self
                .parse_cache
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            fetch_pool_capacity: iql::FetchPool::global().capacity(),
            subscriptions: self.subscriptions.live_count(),
            delta_evals: self.subscriptions.delta_eval_count(),
            fallback_reexecs: self.subscriptions.fallback_reexec_count(),
            columnar_execs: self.engine_stats.columnar_execs(),
            row_fallbacks: self.engine_stats.row_fallbacks(),
            snapshots_active: self
                .member_names
                .iter()
                .filter_map(|n| self.registry.database(n).ok())
                .map(StorageEngine::snapshots_active)
                .sum(),
            wal_appends: self.wal_appends,
            recovery_replays: self.recovery_replays,
        }
    }

    /// Pin the latest committed MVCC snapshot of every member source for
    /// reading. Holding the returned pins keeps each source's snapshot
    /// reference counted — [`DataspaceStats::snapshots_active`] counts them —
    /// which is how a service layer marks "a request/stream is reading right
    /// now" without holding any dataspace lock across its lifetime. The pins
    /// release on drop.
    pub fn pin_snapshots(&self) -> Vec<relational::Snapshot> {
        self.member_names
            .iter()
            .filter_map(|n| self.registry.database(n).ok())
            .map(StorageEngine::begin_snapshot)
            .collect()
    }

    /// Register a standing subscription on a prepared query: the query is
    /// executed once to seed [`Subscription::result`], and from then on every
    /// [`Dataspace::insert`] / [`Dataspace::insert_many`] that can affect it
    /// keeps the result current — incrementally, by evaluating just the new
    /// rows' contribution against the cached standing plan, whenever the
    /// query's shape and the insert's footprint allow it (see
    /// [`crate::subscriptions`] for the exact conditions), and by transparent
    /// re-execution otherwise.
    ///
    /// The returned handle is independent of the dataspace borrow: it can be
    /// cloned, sent to another thread, and read while the dataspace itself is
    /// behind a lock. Dropping every handle unregisters the subscription (the
    /// registry prunes dead entries lazily).
    pub fn subscribe(
        &self,
        query: &PreparedQuery<'_>,
        params: &Params,
    ) -> Result<Subscription, CoreError> {
        query.validate(params)?;
        let state = Arc::new(SubState::new(
            Arc::clone(&query.parsed.expr),
            params.clone(),
        ));
        self.resync_subscription(&state, false)?;
        let deps = SubState::flat_deps(&state.lock());
        self.subscriptions.register(&state, deps.as_ref());
        Ok(Subscription::from_state(state))
    }

    /// Insert one row into a wrapped source table, keeping every affected
    /// subscription current. Equivalent to a one-row
    /// [`Dataspace::insert_many`].
    pub fn insert(&mut self, source: &str, table: &str, row: Vec<Value>) -> Result<(), CoreError> {
        self.insert_many(source, table, vec![row])
    }

    /// Insert a batch of rows into a wrapped source table (atomically, with
    /// one version bump — see [`Database::insert_many`]), then bring every
    /// affected subscription up to date. Subscriptions whose standing plan is
    /// led by the inserted table's (sole changed) global extent are maintained
    /// incrementally from the appended rows alone; the rest transparently
    /// re-execute. Subscription maintenance never fails the insert itself.
    pub fn insert_many(
        &mut self,
        source: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<(), CoreError> {
        self.apply_batch(source, table, rows, true)
    }

    /// The shared commit path: validate and apply the batch as one storage
    /// commit, append it to the attached commit log (unless this *is* a replay
    /// — `log: false`), and fan the delta out to subscriptions. The pre/post
    /// stamps subscriptions sync on derive from the [`BatchCommit`] — i.e.
    /// from inside the storage engine's critical section — not from a provider
    /// snapshot taken before the write (see [`Dataspace::notify_subscriptions`]).
    fn apply_batch(
        &mut self,
        source: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
        log: bool,
    ) -> Result<(), CoreError> {
        // Clone the raw rows for the log record up front (cheap: values are
        // `Arc`-backed scalars); the commit consumes the originals.
        let logged = (log && self.wal.is_some()).then(|| rows.clone());
        let commit = self
            .registry
            .database_mut(source)?
            .commit_batch(table, rows)?;
        if !commit.appended() {
            // Empty batch: the snapshot did not move, nothing to log, and no
            // subscription may be touched (no update pushed, no
            // delta-eligibility stamp burned).
            return Ok(());
        }
        if let (Some(rows), Some(wal)) = (logged, self.wal.as_mut()) {
            wal.append(&LogRecord {
                snapshot: commit.post_snapshot,
                source: source.to_string(),
                table: table.to_string(),
                rows,
            })
            .map_err(|e| CoreError::Storage(format!("commit-log append failed: {e}")))?;
            self.wal_appends += 1;
        }
        self.notify_subscriptions(source, &commit);
        Ok(())
    }

    /// Attach the durable commit log at `path`, replaying any existing records
    /// first: each logged batch re-runs through the normal validated insert
    /// path ([`Dataspace::insert_many`] semantics — same checks, same extent
    /// and cache maintenance, same subscription fan-out), so after `open`
    /// returns the dataspace answers exactly as the one that wrote the log,
    /// and standing subscriptions registered before the call are re-armed at
    /// the recovered snapshot. From then on every committed batch is appended
    /// to the log (`fsync` per [`DataspaceConfig::wal_fsync`]).
    ///
    /// Call it after registering the same sources (and deriving the same
    /// schemas) as the dataspace that wrote the log — the log records data,
    /// not schema. A torn or corrupt tail (crash mid-append) is truncated
    /// away and reported, never replayed.
    ///
    /// ```
    /// use dataspace_core::dataspace::Dataspace;
    /// use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
    /// use relational::Database;
    ///
    /// let path = std::env::temp_dir().join(format!("dataspace-doc-{}.wal", std::process::id()));
    /// # std::fs::remove_file(&path).ok();
    /// let schema = {
    ///     let mut s = RelSchema::new("pedro");
    ///     s.add_table(
    ///         RelTable::new("protein")
    ///             .with_column(RelColumn::new("id", DataType::Int))
    ///             .with_column(RelColumn::new("accession_num", DataType::Text))
    ///             .with_primary_key(["id"]),
    ///     )
    ///     .unwrap();
    ///     s
    /// };
    ///
    /// // First life: attach an empty log, write through it, then "crash".
    /// let mut ds = Dataspace::new();
    /// ds.add_source(Database::new(schema.clone())).unwrap();
    /// ds.federate().unwrap();
    /// ds.open(&path).unwrap();
    /// ds.insert("pedro", "protein", vec![1.into(), "ACC1".into()]).unwrap();
    /// ds.insert("pedro", "protein", vec![2.into(), "ACC2".into()]).unwrap();
    /// drop(ds);
    ///
    /// // Second life: same source and schemas, then replay the log.
    /// let mut ds = Dataspace::new();
    /// ds.add_source(Database::new(schema)).unwrap();
    /// ds.federate().unwrap();
    /// let report = ds.open(&path).unwrap();
    /// assert_eq!((report.batches_replayed, report.rows_replayed), (2, 2));
    /// let n = ds.query_value("count <<PEDRO_protein>>").unwrap();
    /// assert_eq!(n, iql::Value::Int(2));
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn open(&mut self, path: impl AsRef<Path>) -> Result<RecoveryReport, CoreError> {
        if self.wal.is_some() {
            return Err(CoreError::WorkflowOrder(
                "a commit log is already attached to this dataspace".into(),
            ));
        }
        let recovered = CommitLog::open(path.as_ref(), self.config.wal_fsync)
            .map_err(|e| CoreError::Storage(format!("commit-log open failed: {e}")))?;
        let mut report = RecoveryReport {
            batches_replayed: 0,
            rows_replayed: 0,
            truncated_bytes: recovered.truncated_bytes,
        };
        for record in recovered.records {
            let rows = record.rows.len() as u64;
            self.apply_batch(&record.source, &record.table, record.rows, false)
                .map_err(|e| {
                    CoreError::Storage(format!(
                        "commit-log replay failed for `{}.{}` (was the dataspace \
                         rebuilt with the same sources and schemas?): {e}",
                        record.source, record.table
                    ))
                })?;
            self.recovery_replays += 1;
            report.batches_replayed += 1;
            report.rows_replayed += rows;
        }
        self.wal = Some(recovered.log);
        Ok(report)
    }

    /// Compact the attached commit log: merge its records into one batch per
    /// (source, table) — replaying the compacted log rebuilds the same
    /// dataspace, the file just stops growing with history — and fsync the
    /// result (a durability point even with [`DataspaceConfig::wal_fsync`]
    /// off). Errors if no log is attached.
    pub fn checkpoint(&mut self) -> Result<CompactionReport, CoreError> {
        let Some(wal) = self.wal.as_mut() else {
            return Err(CoreError::WorkflowOrder(
                "no commit log attached; call Dataspace::open first".into(),
            ));
        };
        wal.compact()
            .map_err(|e| CoreError::Storage(format!("commit-log compaction failed: {e}")))
    }

    /// (Re-)execute a subscription's query from scratch and reset its
    /// incremental state: standing plan, synced version stamp and per-scheme
    /// source dependencies. With `push_refresh`, the new result is also pushed
    /// as a [`SubscriptionUpdate::Refreshed`] (initial seeding skips the push:
    /// the first result is a baseline, not an update).
    fn resync_subscription(&self, state: &SubState, push_refresh: bool) -> Result<(), CoreError> {
        let provider = self.provider()?;
        let version = ExtentProvider::version(&provider);
        let standing = provider.standing_plan(&state.expr, &state.params)?;
        let global = self
            .global
            .as_ref()
            .expect("provider() implies a global schema");
        let ctx = DepContext {
            definitions: &global.definitions,
            registry: &self.registry,
        };
        let (result, touched) = match &standing {
            Some(plan) => (
                Value::Bag(provider.execute_standing(plan, &state.params)?),
                plan.touched().clone(),
            ),
            None => (
                provider.answer_with(&state.expr, &state.params)?,
                iql::rewrite::collect_schemes(&state.expr),
            ),
        };
        let scheme_deps = touched
            .iter()
            .map(|s| (s.key(), ctx.scheme_deps(s)))
            .collect();
        let mut inner = state.lock();
        inner.result = result.clone();
        inner.standing = standing;
        inner.synced = Some(version);
        inner.scheme_deps = scheme_deps;
        if push_refresh {
            inner.updates.push(SubscriptionUpdate::Refreshed(result));
        }
        Ok(())
    }

    /// Fan a commit's [`TableDelta`] out to the subscriptions indexed under
    /// `(source, table)`: each either takes the incremental path
    /// ([`Dataspace::apply_insert`]) or falls back to re-execution. A
    /// subscription whose fallback re-execution itself fails is marked stale
    /// (`synced = None`) and retried on the next affecting insert.
    ///
    /// The pre-commit provider stamp subscriptions compare their `synced`
    /// stamp against is **derived from the commit itself**, not read from a
    /// provider before the write: the provider version is the sum of the
    /// source snapshot ids (plus a constant generation salt), and this commit
    /// moved exactly one source by `post_snapshot - pre_snapshot`, so
    /// subtracting that distance from the post-commit provider version
    /// reconstructs the exact pre-commit stamp. A writer that raced its way
    /// between a pre-read and the apply can therefore never make
    /// `synced == pre_version` misjudge delta-eligibility (the old
    /// read-then-apply order could — see the regression test in
    /// `tests/subscriptions.rs`).
    fn notify_subscriptions(&self, source: &str, commit: &BatchCommit) {
        let delta = &commit.delta;
        let live = self.subscriptions.all_live();
        if live.is_empty() {
            return;
        }
        let affected = self.subscriptions.affected(source, &delta.table);
        let Ok(provider) = self.provider() else {
            return;
        };
        let post_version = ExtentProvider::version(&provider);
        let pre_version =
            post_version.wrapping_sub(commit.post_snapshot.wrapping_sub(commit.pre_snapshot));
        let global = self
            .global
            .as_ref()
            .expect("provider() implies a global schema");
        let ctx = DepContext {
            definitions: &global.definitions,
            registry: &self.registry,
        };
        for state in live {
            if !affected.iter().any(|a| Arc::ptr_eq(a, &state)) {
                // The dependency index proves this insert cannot change any
                // extent the query touches: just advance the version stamp so
                // the standing plan survives for the next affecting insert.
                let mut inner = state.lock();
                if inner.synced == Some(pre_version) {
                    inner.synced = Some(post_version);
                }
                continue;
            }
            if !self.apply_insert(
                &provider,
                &ctx,
                &state,
                source,
                delta,
                pre_version,
                post_version,
            ) {
                self.subscriptions
                    .fallback_reexecs
                    .fetch_add(1, Ordering::Relaxed);
                if self.resync_subscription(&state, true).is_err() {
                    state.lock().synced = None;
                }
            }
        }
    }

    /// Try the O(delta) incremental path for one subscription and one insert.
    /// Returns `false` (without mutating the result) when any gate fails and
    /// the caller must fall back to re-execution: the subscription is stale,
    /// has no standing plan, the insert changed a global extent other than the
    /// plan's lead, or the appended rows' contribution to the lead extent
    /// cannot be isolated.
    #[allow(clippy::too_many_arguments)]
    fn apply_insert(
        &self,
        provider: &VirtualExtents<'_>,
        ctx: &DepContext<'_>,
        state: &SubState,
        source: &str,
        delta: &TableDelta,
        pre_version: u64,
        post_version: u64,
    ) -> bool {
        let mut inner = state.lock();
        if inner.synced != Some(pre_version) {
            return false;
        }
        let Some(plan) = &inner.standing else {
            return false;
        };
        let dep = (source.to_string(), delta.table.clone());
        // Which of the query's global schemes can this insert have changed? An
        // unresolved dependency set (`None`) means "assume changed".
        let changed: Vec<&String> = inner
            .scheme_deps
            .iter()
            .filter(|(_, deps)| deps.as_ref().is_none_or(|d| d.contains(&dep)))
            .map(|(k, _)| k)
            .collect();
        if changed.is_empty() {
            // The insert is a proven no-op for this query (e.g. another table
            // of a shared source): just advance the version stamp.
            inner.synced = Some(post_version);
            return true;
        }
        let lead_key = plan.lead_scheme().key();
        if changed.len() != 1 || *changed[0] != lead_key {
            return false;
        }
        let Some(appended) = global_scheme_delta(ctx, provider, plan.lead_scheme(), source, delta)
        else {
            return false;
        };
        let delta_bag = if appended.is_empty() {
            Bag::empty()
        } else {
            let Ok(bag) = provider.delta_standing(plan, &appended, &state.params) else {
                return false;
            };
            bag
        };
        let Value::Bag(result) = &mut inner.result else {
            return false;
        };
        for v in delta_bag.iter() {
            result.push(v.clone());
        }
        inner.synced = Some(post_version);
        if !delta_bag.is_empty() {
            inner.updates.push(SubscriptionUpdate::Delta(delta_bag));
        }
        self.subscriptions
            .delta_evals
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Re-execute every live subscription after a schema change
    /// ([`Dataspace::federate`] / [`Dataspace::integrate`]): the global schema
    /// the query was planned against has been re-derived, so standing plans
    /// and dependency indexes are rebuilt from scratch. A subscription whose
    /// query no longer evaluates is marked stale rather than failing the
    /// schema operation.
    fn refresh_subscriptions(&self) {
        for state in self.subscriptions.all_live() {
            self.subscriptions
                .fallback_reexecs
                .fetch_add(1, Ordering::Relaxed);
            match self.resync_subscription(&state, true) {
                Ok(()) => {
                    let deps = SubState::flat_deps(&state.lock());
                    self.subscriptions.reindex(&state, deps.as_ref());
                }
                Err(_) => state.lock().synced = None,
            }
        }
    }
}

/// A snapshot of the dataspace's cache and pool state (see
/// [`Dataspace::stats`]). Counters are cumulative over the dataspace's
/// lifetime; lengths are current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataspaceStats {
    /// Plan-cache lookups served from a current cached plan.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that found nothing (or only a stale plan).
    pub plan_cache_misses: u64,
    /// Plans evicted from the plan cache for capacity.
    pub plan_cache_evictions: u64,
    /// Plans currently cached.
    pub plan_cache_len: usize,
    /// Maximum number of plans held before LRU eviction.
    pub plan_cache_capacity: usize,
    /// Cached plans re-optimised after observed/estimated cardinality
    /// divergence (the adaptive feedback loop).
    pub plan_reopts: u64,
    /// Stale key histograms refreshed copy-on-write from an appended tail.
    pub histogram_refreshes: u64,
    /// Point-lookup index probes served from a current index.
    pub index_hits: u64,
    /// Point-lookup index probes that found no usable index.
    pub index_misses: u64,
    /// Point-lookup indexes built from a full extent scan.
    pub index_builds: u64,
    /// Stale point-lookup indexes refreshed copy-on-write on insert.
    pub index_refreshes: u64,
    /// Point-lookup indexes evicted for capacity or byte budget.
    pub index_evictions: u64,
    /// Point-lookup indexes currently held.
    pub index_len: usize,
    /// Global-schema extents currently memoised.
    pub extent_memo_len: usize,
    /// Extents evicted from the memo for capacity.
    pub extent_memo_evictions: u64,
    /// Query texts currently held in the parse memo.
    pub parse_memo_len: usize,
    /// Worker budget of the process-wide [`iql::FetchPool`].
    pub fetch_pool_capacity: usize,
    /// Standing subscriptions currently live (with at least one handle).
    pub subscriptions: usize,
    /// Inserts absorbed by a subscription through the O(delta) incremental
    /// path (including proven no-ops that only advanced the version stamp).
    pub delta_evals: u64,
    /// Subscription refreshes that fell back to full re-execution (inserts
    /// outside the incremental gate, and schema changes).
    pub fallback_reexecs: u64,
    /// Planned comprehension executions the vectorised columnar engine
    /// completed (see [`iql::EngineStats::columnar_execs`]). Standing
    /// subscriptions never contribute: delta maintenance stays on the row
    /// engine.
    pub columnar_execs: u64,
    /// Executions that fell back to the row engine while the columnar engine
    /// was enabled — ineligible plans (open or parameter-dependent generator
    /// sources) or aborted columnar runs (see
    /// [`iql::EngineStats::row_fallbacks`]).
    pub row_fallbacks: u64,
    /// Live MVCC [`relational::Snapshot`] pins across every member source
    /// (readers currently holding a pinned snapshot view).
    pub snapshots_active: usize,
    /// Committed batches appended to the attached commit log (0 when no log
    /// is attached; recovery replays are not re-appended and don't count).
    pub wal_appends: u64,
    /// Batches replayed from the commit log by [`Dataspace::open`].
    pub recovery_replays: u64,
}

/// What [`Dataspace::open`] recovered from the commit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whole log records replayed through the insert path.
    pub batches_replayed: u64,
    /// Rows those batches carried.
    pub rows_replayed: u64,
    /// Bytes truncated from a torn or corrupt tail (crash mid-append); 0 for
    /// a cleanly closed log.
    pub truncated_bytes: u64,
}

/// A query parsed and validated once, executable many times under different
/// [`Params`] bindings — the dataspace's prepared-statement API (see
/// [`Dataspace::prepare`]).
///
/// Borrowing the dataspace keeps executions anchored to the caches the plan
/// economy depends on: every [`PreparedQuery::execute`] call answers through a
/// provider sharing the dataspace's extent memo and [`PlanCache`], so the
/// first execution plans (and builds join hash indexes) and every later
/// execution — under *any* binding — reuses that plan. Values bind as runtime
/// values, never as spliced text, so parameter strings containing `'` or `\`
/// round-trip exactly.
///
/// ```
/// use dataspace_core::dataspace::Dataspace;
/// use iql::Params;
/// use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
/// use relational::Database;
///
/// let mut schema = RelSchema::new("pedro");
/// schema
///     .add_table(
///         RelTable::new("protein")
///             .with_column(RelColumn::new("id", DataType::Int))
///             .with_column(RelColumn::new("accession_num", DataType::Text))
///             .with_primary_key(["id"]),
///     )
///     .unwrap();
/// let mut db = Database::new(schema);
/// db.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
/// db.insert("protein", vec![2.into(), "ACC2".into()]).unwrap();
///
/// let mut ds = Dataspace::new();
/// ds.add_source(db).unwrap();
/// ds.federate().unwrap();
///
/// let q = ds
///     .prepare("[k | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>; x = ?acc]")
///     .unwrap();
/// assert_eq!(q.param_names().collect::<Vec<_>>(), vec!["acc"]);
///
/// // One prepared query, many bindings — including a whole batch at once.
/// let bindings: Vec<Params> = ["ACC1", "ACC2", "ACC3"]
///     .iter()
///     .map(|acc| Params::new().with("acc", *acc))
///     .collect();
/// let results = q.execute_all(&bindings);
/// let sizes: Vec<usize> = results.into_iter().map(|r| r.unwrap().len()).collect();
/// assert_eq!(sizes, vec![1, 1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery<'ds> {
    dataspace: &'ds Dataspace,
    parsed: ParsedQuery,
}

/// A memoised parsed query: the text, its AST and its placeholder set, all
/// shared behind `Arc`s so re-preparing a known text allocates nothing.
#[derive(Debug, Clone)]
struct ParsedQuery {
    text: Arc<str>,
    expr: Arc<iql::Expr>,
    params: Arc<BTreeSet<String>>,
}

impl PreparedQuery<'_> {
    /// The query text this prepared query was built from.
    pub fn text(&self) -> &str {
        &self.parsed.text
    }

    /// The parsed expression (shared with the dataspace's parse memo).
    pub fn expr(&self) -> &iql::Expr {
        &self.parsed.expr
    }

    /// The names of the query's `?name` placeholders, in sorted order.
    pub fn param_names(&self) -> impl Iterator<Item = &str> {
        self.parsed.params.iter().map(String::as_str)
    }

    /// Check a binding set against the placeholder set: every placeholder must
    /// be bound ([`CoreError::UnboundParam`] otherwise) and every binding must
    /// name a placeholder ([`CoreError::UnknownParam`] — catching typos before
    /// they silently bind nothing).
    fn validate(&self, params: &Params) -> Result<(), CoreError> {
        for name in self.parsed.params.iter() {
            if params.get(name).is_none() {
                return Err(CoreError::UnboundParam(name.clone()));
            }
        }
        for name in params.names() {
            if !self.parsed.params.contains(name) {
                return Err(CoreError::UnknownParam(name.to_string()));
            }
        }
        Ok(())
    }

    /// Execute under the given bindings, expecting a bag result.
    pub fn execute(&self, params: &Params) -> Result<Bag, CoreError> {
        self.validate(params)?;
        Ok(self
            .dataspace
            .provider()?
            .answer_bag_with(&self.parsed.expr, params)?)
    }

    /// Execute under the given bindings, returning any value (useful for
    /// aggregates like `count`).
    pub fn execute_value(&self, params: &Params) -> Result<Value, CoreError> {
        self.validate(params)?;
        Ok(self
            .dataspace
            .provider()?
            .answer_with(&self.parsed.expr, params)?)
    }

    /// Execute the query once per binding set, concurrently, returning one
    /// result per binding **in input order** — the pay-as-you-go fan-out for
    /// one query shape across many parameter values. All executions share the
    /// dataspace's plan cache (one plan serves the whole batch) and worker
    /// threads come out of the process-wide [`iql::FetchPool`] budget, exactly
    /// like [`Dataspace::query_all`]; a binding that fails validation reports
    /// its error in its own slot without failing the batch.
    pub fn execute_all(&self, bindings: &[Params]) -> Vec<Result<Bag, CoreError>> {
        let items = bindings
            .iter()
            .map(|params| {
                self.validate(params)
                    .map(|()| (Arc::clone(&self.parsed.expr), params.clone()))
            })
            .collect();
        self.dataspace.answer_bound_batch(items)
    }

    /// Register a standing subscription on this query under the given
    /// bindings — a convenience for [`Dataspace::subscribe`].
    pub fn subscribe(&self, params: &Params) -> Result<Subscription, CoreError> {
        self.dataspace.subscribe(self, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ObjectMapping, SourceContribution};
    use iql::ast::SchemeRef;
    use relational::schema::{DataType, RelColumn, RelSchema, RelTable};

    fn pedro() -> Database {
        let mut s = RelSchema::new("pedro");
        s.add_table(
            RelTable::new("protein")
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new("accession_num", DataType::Text))
                .with_column(RelColumn::nullable("organism", DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert(
            "protein",
            vec![1.into(), "ACC1".into(), "Homo sapiens".into()],
        )
        .unwrap();
        db.insert(
            "protein",
            vec![2.into(), "ACC2".into(), "Mus musculus".into()],
        )
        .unwrap();
        db
    }

    fn gpmdb() -> Database {
        let mut s = RelSchema::new("gpmdb");
        s.add_table(
            RelTable::new("proseq")
                .with_column(RelColumn::new("proseqid", DataType::Int))
                .with_column(RelColumn::new("label", DataType::Text))
                .with_primary_key(["proseqid"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert("proseq", vec![10.into(), "ACC2".into()]).unwrap();
        db.insert("proseq", vec![11.into(), "ACC3".into()]).unwrap();
        db
    }

    fn uprotein_spec() -> IntersectionSpec {
        IntersectionSpec::new("I1")
            .with_mapping(
                ObjectMapping::table("UProtein")
                    .with_contribution(
                        SourceContribution::parsed(
                            "pedro",
                            "[{'PEDRO', k} | k <- <<protein>>]",
                            ["protein"],
                        )
                        .unwrap(),
                    )
                    .with_contribution(
                        SourceContribution::parsed(
                            "gpmdb",
                            "[{'gpmDB', k} | k <- <<proseq>>]",
                            ["proseq"],
                        )
                        .unwrap(),
                    ),
            )
            .with_mapping(
                ObjectMapping::column("UProtein", "accession_num")
                    .with_contribution(
                        SourceContribution::parsed(
                            "pedro",
                            "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                            ["protein,accession_num"],
                        )
                        .unwrap(),
                    )
                    .with_contribution(
                        SourceContribution::parsed(
                            "gpmdb",
                            "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                            ["proseq,label"],
                        )
                        .unwrap(),
                    ),
            )
    }

    fn dataspace() -> Dataspace {
        let mut ds = Dataspace::new();
        ds.add_source(pedro()).unwrap();
        ds.add_source(gpmdb()).unwrap();
        ds.federate().unwrap();
        ds
    }

    #[test]
    fn workflow_order_enforced() {
        let mut ds = Dataspace::new();
        assert!(ds.federate().is_err());
        assert!(ds.integrate(uprotein_spec()).is_err());
        ds.add_source(pedro()).unwrap();
        ds.federate().unwrap();
        assert!(ds.add_source(gpmdb()).is_err());
        assert!(ds.federate().is_err());
    }

    #[test]
    fn federated_schema_is_queryable_without_effort() {
        let ds = dataspace();
        assert_eq!(ds.effort_report().total_manual(), 0);
        let n = ds.query_value("count <<PEDRO_protein>>").unwrap();
        assert_eq!(n, Value::Int(2));
        assert!(ds.can_answer("count <<GPMDB_proseq, GPMDB_label>>"));
        // Integrated concepts do not exist yet.
        assert!(!ds.can_answer("count <<UProtein>>"));
    }

    #[test]
    fn integration_iteration_produces_queryable_global_schema() {
        let mut ds = dataspace();
        let record = ds.integrate(uprotein_spec()).unwrap();
        assert_eq!(record.manual_transformations, 4);
        assert_eq!(record.cumulative_manual, 4);
        // 2 (pedro) + 2 (gpmdb) = 4 UProtein entries.
        assert_eq!(ds.query_value("count <<UProtein>>").unwrap(), Value::Int(4));
        // Cross-source join through the integrated concept: ACC2 appears in both.
        let shared = ds
            .query(
                "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']",
            )
            .unwrap();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn redundant_objects_dropped_but_uncovered_ones_remain() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let global = ds.global_schema().unwrap();
        assert!(global.contains(&SchemeRef::table("UProtein")));
        assert!(!global.contains(&SchemeRef::table("PEDRO_protein")));
        // organism was not covered, so it remains (prefixed) and stays queryable.
        assert!(global.contains(&SchemeRef::column("PEDRO_protein", "PEDRO_organism")));
        assert_eq!(
            ds.query_value("count <<PEDRO_protein, PEDRO_organism>>")
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(ds.dropped_redundant().len(), 4);
    }

    #[test]
    fn keep_redundant_configuration() {
        let mut ds = Dataspace::with_config(DataspaceConfig {
            drop_redundant: false,
            ..DataspaceConfig::default()
        });
        ds.add_source(pedro()).unwrap();
        ds.add_source(gpmdb()).unwrap();
        ds.federate().unwrap();
        ds.integrate(uprotein_spec()).unwrap();
        let global = ds.global_schema().unwrap();
        assert!(global.contains(&SchemeRef::table("PEDRO_protein")));
        assert!(global.contains(&SchemeRef::table("UProtein")));
        assert!(ds.dropped_redundant().is_empty());
        // Redundant object still answers, and its extent matches the source.
        assert_eq!(
            ds.query_value("count <<PEDRO_protein>>").unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn effort_report_accumulates_over_iterations() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let spec2 = IntersectionSpec::new("I2").with_mapping(
            ObjectMapping::column("UProtein", "organism").with_contribution(
                SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<protein, organism>>]",
                    ["protein,organism"],
                )
                .unwrap(),
            ),
        );
        let record2 = ds.integrate(spec2).unwrap();
        assert_eq!(record2.manual_transformations, 1);
        assert_eq!(record2.cumulative_manual, 5);
        assert_eq!(ds.effort_report().iterations.len(), 3); // federation + 2
        assert_eq!(ds.effort_report().total_manual(), 5);
        assert_eq!(
            ds.query_value("count <<UProtein, organism>>").unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn repository_records_schemas_and_pathways() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let repo = ds.repository();
        assert!(repo.has_schema("pedro"));
        assert!(repo.has_schema("F"));
        assert!(repo.has_schema("I1"));
        assert!(repo.has_schema("G1"));
        // A pathway exists from each source to the intersection schema.
        assert!(repo.pathway_between("pedro", "I1").is_ok());
        assert!(repo.pathway_between("gpmdb", "I1").is_ok());
        // And therefore (via reversal/composition) between the two sources.
        assert!(repo.pathway_between("pedro", "gpmdb").is_ok());
    }

    #[test]
    fn repeated_queries_hit_the_persistent_plan_and_extent_caches() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let q = "[x | {s1, k1, x} <- <<UProtein, accession_num>>; {s2, k2, y} <- <<UProtein, accession_num>>; x = y; s1 = 'PEDRO'; s2 = 'gpmDB']";
        let first = ds.query(q).unwrap();
        assert!(
            ds.cached_extent_count() > 0,
            "extents memoised across calls"
        );
        let misses = ds.plan_cache().miss_count();
        let hits = ds.plan_cache().hit_count();
        let second = ds.query(q).unwrap();
        assert_eq!(first, second);
        assert!(ds.plan_cache().hit_count() > hits, "re-run hits plan cache");
        assert_eq!(
            ds.plan_cache().miss_count(),
            misses,
            "no replanning on re-run"
        );
    }

    #[test]
    fn integrate_invalidates_caches_so_new_concepts_answer() {
        let mut ds = dataspace();
        assert!(!ds.can_answer("count <<UProtein>>"));
        // Warm the caches on the federated schema...
        assert_eq!(
            ds.query_value("count <<PEDRO_protein>>").unwrap(),
            Value::Int(2)
        );
        let cached = ds.cached_extent_count();
        assert!(cached > 0);
        // ...then integrate: the generation bump clears the extent memo and
        // retires cached plans, and the new concept answers correctly.
        ds.integrate(uprotein_spec()).unwrap();
        assert!(ds.cached_extent_count() < cached || ds.cached_extent_count() == 0);
        assert_eq!(ds.query_value("count <<UProtein>>").unwrap(), Value::Int(4));
        // An uncovered federated object survives redundancy dropping and still
        // answers through the rebuilt caches.
        assert_eq!(
            ds.query_value("count <<PEDRO_protein, PEDRO_organism>>")
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn query_errors_are_reported() {
        let ds = dataspace();
        assert!(matches!(ds.query("[oops"), Err(CoreError::Parse(_))));
        assert!(ds.query("count <<NoSuchThing>>").is_err());
        assert!(!ds.can_answer("count <<NoSuchThing>>"));
    }

    #[test]
    fn subscriptions_absorb_federated_inserts_incrementally() {
        let mut ds = dataspace();
        let q = "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]";
        let sub = ds.prepare(q).unwrap().subscribe(&Params::new()).unwrap();
        assert!(sub.is_incremental());
        assert_eq!(
            sub.result_bag().unwrap(),
            Bag::from_values(vec![Value::str("ACC1"), Value::str("ACC2")])
        );
        assert!(sub.drain_updates().is_empty(), "seeding is not an update");
        let before = ds.stats();
        assert_eq!(before.subscriptions, 1);
        ds.insert(
            "pedro",
            "protein",
            vec![3.into(), "ACC3".into(), "Rattus norvegicus".into()],
        )
        .unwrap();
        let after = ds.stats();
        assert_eq!(after.delta_evals, before.delta_evals + 1);
        assert_eq!(after.fallback_reexecs, before.fallback_reexecs);
        assert_eq!(sub.result_bag().unwrap(), ds.query(q).unwrap());
        assert_eq!(
            sub.drain_updates(),
            vec![SubscriptionUpdate::Delta(Bag::from_values(vec![
                Value::str("ACC3")
            ]))]
        );
    }

    #[test]
    fn parameterised_subscriptions_filter_the_delta() {
        let mut ds = dataspace();
        let sub = ds
            .prepare("[k | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>; x = ?acc]")
            .unwrap()
            .subscribe(&Params::new().with("acc", "ACC9"))
            .unwrap();
        assert!(sub.is_incremental());
        assert!(sub.result_bag().unwrap().is_empty());
        ds.insert(
            "pedro",
            "protein",
            vec![8.into(), "ACC8".into(), "Rat".into()],
        )
        .unwrap();
        ds.insert(
            "pedro",
            "protein",
            vec![9.into(), "ACC9".into(), "Rat".into()],
        )
        .unwrap();
        assert_eq!(
            sub.result_bag().unwrap(),
            Bag::from_values(vec![Value::Int(9)])
        );
        // The non-matching insert was absorbed silently; only the match pushed.
        assert_eq!(
            sub.drain_updates(),
            vec![SubscriptionUpdate::Delta(Bag::from_values(vec![
                Value::Int(9)
            ]))]
        );
        assert_eq!(ds.stats().delta_evals, 2);
    }

    #[test]
    fn inserts_into_the_last_contribution_take_the_delta_path() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let q = "[s | {s, k} <- <<UProtein>>]";
        let sub = ds.prepare(q).unwrap().subscribe(&Params::new()).unwrap();
        assert!(sub.is_incremental());
        let before = ds.stats();
        // gpmdb contributes the *last* (tail) slice of UProtein's extent, so
        // its inserts append at the global tail: O(delta) maintenance.
        ds.insert("gpmdb", "proseq", vec![12.into(), "ACC4".into()])
            .unwrap();
        let after = ds.stats();
        assert_eq!(after.delta_evals, before.delta_evals + 1);
        assert_eq!(after.fallback_reexecs, before.fallback_reexecs);
        assert_eq!(sub.result_bag().unwrap(), ds.query(q).unwrap());
        assert_eq!(
            sub.drain_updates(),
            vec![SubscriptionUpdate::Delta(Bag::from_values(vec![
                Value::str("gpmDB")
            ]))]
        );
    }

    #[test]
    fn inserts_into_an_earlier_contribution_fall_back_to_reexecution() {
        let mut ds = dataspace();
        ds.integrate(uprotein_spec()).unwrap();
        let q = "[s | {s, k} <- <<UProtein>>]";
        let sub = ds.prepare(q).unwrap().subscribe(&Params::new()).unwrap();
        let before = ds.stats();
        // pedro's slice sits *before* gpmdb's in UProtein's extent, so its
        // inserts are mid-bag, not tail appends: transparent re-execution.
        ds.insert(
            "pedro",
            "protein",
            vec![3.into(), "ACC3".into(), "Rattus norvegicus".into()],
        )
        .unwrap();
        let after = ds.stats();
        assert_eq!(after.fallback_reexecs, before.fallback_reexecs + 1);
        assert_eq!(after.delta_evals, before.delta_evals);
        assert_eq!(sub.result_bag().unwrap(), ds.query(q).unwrap());
        let updates = sub.drain_updates();
        assert_eq!(updates.len(), 1);
        assert!(matches!(&updates[0], SubscriptionUpdate::Refreshed(_)));
    }

    #[test]
    fn aggregate_subscriptions_fall_back_transparently() {
        let mut ds = dataspace();
        let sub = ds
            .prepare("count <<PEDRO_protein>>")
            .unwrap()
            .subscribe(&Params::new())
            .unwrap();
        assert!(!sub.is_incremental());
        assert_eq!(sub.result(), Value::Int(2));
        ds.insert(
            "pedro",
            "protein",
            vec![3.into(), "ACC3".into(), "Rattus norvegicus".into()],
        )
        .unwrap();
        assert_eq!(sub.result(), Value::Int(3));
        assert_eq!(
            sub.drain_updates(),
            vec![SubscriptionUpdate::Refreshed(Value::Int(3))]
        );
        assert_eq!(ds.stats().fallback_reexecs, 1);
    }

    #[test]
    fn unrelated_inserts_do_not_desync_the_standing_plan() {
        let mut ds = dataspace();
        let q = "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]";
        let sub = ds.prepare(q).unwrap().subscribe(&Params::new()).unwrap();
        // An insert into a table the query provably does not depend on...
        ds.insert("gpmdb", "proseq", vec![12.into(), "ACC4".into()])
            .unwrap();
        assert!(sub.drain_updates().is_empty());
        // ...must not force the next relevant insert off the O(delta) path.
        let before = ds.stats();
        ds.insert(
            "pedro",
            "protein",
            vec![3.into(), "ACC3".into(), "Rattus norvegicus".into()],
        )
        .unwrap();
        let after = ds.stats();
        assert_eq!(after.delta_evals, before.delta_evals + 1);
        assert_eq!(after.fallback_reexecs, before.fallback_reexecs);
        assert_eq!(sub.result_bag().unwrap(), ds.query(q).unwrap());
    }

    #[test]
    fn dropped_subscription_handles_are_pruned() {
        let mut ds = dataspace();
        let sub = ds
            .prepare("[k | k <- <<PEDRO_protein>>]")
            .unwrap()
            .subscribe(&Params::new())
            .unwrap();
        assert_eq!(ds.stats().subscriptions, 1);
        drop(sub);
        assert_eq!(ds.stats().subscriptions, 0);
        // Inserting after every handle is gone must not maintain (or panic).
        let before = ds.stats();
        ds.insert(
            "pedro",
            "protein",
            vec![3.into(), "ACC3".into(), "Rattus norvegicus".into()],
        )
        .unwrap();
        let after = ds.stats();
        assert_eq!(after.delta_evals, before.delta_evals);
        assert_eq!(after.fallback_reexecs, before.fallback_reexecs);
    }

    #[test]
    fn integrate_refreshes_surviving_subscriptions_and_strands_dropped_ones() {
        let mut ds = dataspace();
        let organism_q = "[x | {k, x} <- <<PEDRO_protein, PEDRO_organism>>]";
        // organism is not covered by the intersection, so its scheme survives
        // integration; accession_num is covered and gets dropped as redundant.
        let survivor = ds
            .prepare(organism_q)
            .unwrap()
            .subscribe(&Params::new())
            .unwrap();
        let stranded = ds
            .prepare("[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]")
            .unwrap()
            .subscribe(&Params::new())
            .unwrap();
        let stranded_before = stranded.result();
        ds.integrate(uprotein_spec()).unwrap();
        // The survivor was re-executed against the new global schema...
        let updates = survivor.drain_updates();
        assert_eq!(updates.len(), 1);
        assert!(matches!(&updates[0], SubscriptionUpdate::Refreshed(_)));
        assert_eq!(
            survivor.result_bag().unwrap(),
            ds.query(organism_q).unwrap()
        );
        // ...and is still maintained on later inserts.
        ds.insert(
            "pedro",
            "protein",
            vec![3.into(), "ACC3".into(), "Rattus norvegicus".into()],
        )
        .unwrap();
        assert_eq!(
            survivor.result_bag().unwrap(),
            ds.query(organism_q).unwrap()
        );
        // The stranded subscription keeps serving its last good result.
        assert_eq!(stranded.result(), stranded_before);
    }
}
