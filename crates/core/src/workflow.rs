//! The iterative, query-driven integration workflow (§2.3).
//!
//! An [`IntegrationSession`] wraps a [`Dataspace`] and drives the six-step workflow:
//!
//! 1. identify the extensional schemas (sources) to integrate;
//! 2. create the federated schema — data services are available immediately;
//! 3. select a pair (or, as in the case study, a group) of extensional schemas;
//! 4. identify the mappings between them and the new intersection schema;
//! 5. generate the intersection schema and re-derive the global schema, optionally
//!    dropping redundant objects;
//! 6. test the new schemas by running queries.
//!
//! The session additionally tracks a prioritised list of *target queries* (the
//! query-driven aspect of the case study): after every iteration it records which of
//! them have become answerable, yielding the pay-as-you-go curve.

use crate::dataspace::Dataspace;
use crate::error::CoreError;
use crate::mapping::IntersectionSpec;
use crate::metrics::{IterationEffort, PayAsYouGoPoint};
use iql::value::Value;
use iql::Params;
use relational::Database;
use serde::Serialize;

/// A named priority query driving the integration: parameterised query text
/// (`?name` placeholders) plus the default bindings the workflow tests it
/// under. One `PriorityQuery` is one query *shape* — the session prepares the
/// text once and can re-execute it under [`PriorityQuery::params`] or any
/// caller-supplied binding set, sharing one cached plan across all of them.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PriorityQuery {
    /// Short name (e.g. `"Q1"`).
    pub name: String,
    /// Human-readable description (the paper's query list in §3).
    pub description: String,
    /// The parameterised IQL text of the query over the (eventual) global
    /// schema; parameters are `?name` placeholders.
    pub iql: String,
    /// The default parameter bindings (the paper's example parameter values);
    /// empty for queries that take no parameters.
    pub params: Params,
    /// Priority rank; lower is more important.
    pub priority: usize,
}

/// The outcome of one workflow iteration.
#[derive(Debug, Clone, Serialize)]
pub struct IterationOutcome {
    /// Effort record for the iteration.
    pub effort: IterationEffort,
    /// Pay-as-you-go point after the iteration.
    pub progress: PayAsYouGoPoint,
    /// Queries that became answerable in this iteration (not answerable before).
    pub newly_answerable: Vec<String>,
}

/// A stateful integration session following the paper's workflow.
#[derive(Debug)]
pub struct IntegrationSession {
    dataspace: Dataspace,
    queries: Vec<PriorityQuery>,
    history: Vec<IterationOutcome>,
}

impl IntegrationSession {
    /// Start a session over an empty dataspace.
    pub fn new() -> Self {
        IntegrationSession {
            dataspace: Dataspace::new(),
            queries: Vec::new(),
            history: Vec::new(),
        }
    }

    /// Start a session over a pre-configured dataspace.
    pub fn with_dataspace(dataspace: Dataspace) -> Self {
        IntegrationSession {
            dataspace,
            queries: Vec::new(),
            history: Vec::new(),
        }
    }

    /// Step 1: register a data source.
    pub fn add_source(&mut self, database: Database) -> Result<(), CoreError> {
        self.dataspace.add_source(database).map(|_| ())
    }

    /// Register the prioritised target queries that drive the integration.
    pub fn set_priority_queries(&mut self, queries: Vec<PriorityQuery>) {
        self.queries = queries;
        self.queries.sort_by_key(|q| q.priority);
    }

    /// The registered priority queries (sorted by priority).
    pub fn priority_queries(&self) -> &[PriorityQuery] {
        &self.queries
    }

    /// Step 2: build the federated schema and record the zero-effort starting point.
    pub fn federate(&mut self) -> Result<IterationOutcome, CoreError> {
        self.dataspace.federate()?;
        let effort = self
            .dataspace
            .effort_report()
            .iterations
            .last()
            .cloned()
            .expect("federate() records an iteration");
        let outcome = self.record_progress(effort, &[]);
        self.history.push(outcome.clone());
        Ok(outcome)
    }

    /// Steps 3–6: run one intersection-schema iteration and test the target queries.
    pub fn iterate(&mut self, spec: IntersectionSpec) -> Result<IterationOutcome, CoreError> {
        let previously_answerable: Vec<String> = self.answerable_queries();
        let effort = self.dataspace.integrate(spec)?;
        let outcome = self.record_progress(effort, &previously_answerable);
        self.history.push(outcome.clone());
        Ok(outcome)
    }

    fn answerable_queries(&self) -> Vec<String> {
        self.queries
            .iter()
            .filter(|q| self.dataspace.can_answer_with(&q.iql, &q.params))
            .map(|q| q.name.clone())
            .collect()
    }

    fn record_progress(
        &self,
        effort: IterationEffort,
        previously_answerable: &[String],
    ) -> IterationOutcome {
        let answerable = self.answerable_queries();
        let newly: Vec<String> = answerable
            .iter()
            .filter(|q| !previously_answerable.contains(q))
            .cloned()
            .collect();
        IterationOutcome {
            progress: PayAsYouGoPoint {
                iteration: effort.iteration,
                label: effort.label.clone(),
                cumulative_manual: effort.cumulative_manual,
                answerable_queries: answerable,
            },
            newly_answerable: newly,
            effort,
        }
    }

    /// Step 6 on demand: run one of the registered priority queries by name,
    /// under its default parameter bindings.
    pub fn run_priority_query(&self, name: &str) -> Result<Value, CoreError> {
        let q = self.find_query(name)?;
        self.dataspace.prepare(&q.iql)?.execute_value(&q.params)
    }

    /// Run a registered priority query under caller-supplied bindings — the
    /// pay-as-you-go re-run with fresh parameters. The prepared text and its
    /// cached plan are shared with every other execution of the same query.
    pub fn run_priority_query_with(&self, name: &str, params: &Params) -> Result<Value, CoreError> {
        let q = self.find_query(name)?;
        self.dataspace.prepare(&q.iql)?.execute_value(params)
    }

    fn find_query(&self, name: &str) -> Result<&PriorityQuery, CoreError> {
        self.queries
            .iter()
            .find(|q| q.name == name)
            .ok_or_else(|| CoreError::Query(format!("no priority query named `{name}`")))
    }

    /// The pay-as-you-go curve recorded so far (one point per completed iteration).
    pub fn pay_as_you_go_curve(&self) -> Vec<PayAsYouGoPoint> {
        self.history.iter().map(|o| o.progress.clone()).collect()
    }

    /// The full iteration history.
    pub fn history(&self) -> &[IterationOutcome] {
        &self.history
    }

    /// The underlying dataspace (read access).
    pub fn dataspace(&self) -> &Dataspace {
        &self.dataspace
    }

    /// Whether all registered priority queries are answerable (each under its
    /// default bindings).
    pub fn all_queries_answerable(&self) -> bool {
        self.queries
            .iter()
            .all(|q| self.dataspace.can_answer_with(&q.iql, &q.params))
    }

    /// Render the pay-as-you-go curve as a fixed-width table.
    pub fn render_curve(&self) -> String {
        let mut out =
            String::from("iter  label                cumulative-manual  answerable-queries\n");
        for p in self.pay_as_you_go_curve() {
            out.push_str(&format!(
                "{:<5} {:<20} {:<18} {}/{} {:?}\n",
                p.iteration,
                p.label,
                p.cumulative_manual,
                p.answerable_count(),
                self.queries.len(),
                p.answerable_queries
            ));
        }
        out
    }
}

impl Default for IntegrationSession {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ObjectMapping, SourceContribution};
    use relational::schema::{DataType, RelColumn, RelSchema, RelTable};

    fn source(name: &str, table: &str, col: &str, rows: &[(i64, &str)]) -> Database {
        let mut s = RelSchema::new(name);
        s.add_table(
            RelTable::new(table)
                .with_column(RelColumn::new("id", DataType::Int))
                .with_column(RelColumn::new(col, DataType::Text))
                .with_primary_key(["id"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        for (k, v) in rows {
            db.insert(table, vec![(*k).into(), (*v).into()]).unwrap();
        }
        db
    }

    fn session() -> IntegrationSession {
        // Keep redundant objects so that federated-schema queries (Q2) stay answerable
        // after the covered source objects are integrated.
        let ds = Dataspace::with_config(crate::dataspace::DataspaceConfig {
            drop_redundant: false,
            ..Default::default()
        });
        let mut s = IntegrationSession::with_dataspace(ds);
        s.add_source(source(
            "pedro",
            "protein",
            "accession_num",
            &[(1, "ACC1"), (2, "ACC2")],
        ))
        .unwrap();
        s.add_source(source("gpmdb", "proseq", "label", &[(9, "ACC2")]))
            .unwrap();
        s.set_priority_queries(vec![
            PriorityQuery {
                name: "Q1".into(),
                description: "protein identifications for an accession number".into(),
                iql: "[{s, k} | {s, k, x} <- <<UProtein, accession_num>>; x = ?accession]".into(),
                params: Params::new().with("accession", "ACC2"),
                priority: 1,
            },
            PriorityQuery {
                name: "Q2".into(),
                description: "all accession values in pedro (federated)".into(),
                iql: "[x | {k, x} <- <<PEDRO_protein, PEDRO_accession_num>>]".into(),
                params: Params::new(),
                priority: 2,
            },
        ]);
        s
    }

    fn spec() -> IntersectionSpec {
        IntersectionSpec::new("I1").with_mapping(
            ObjectMapping::column("UProtein", "accession_num")
                .with_contribution(
                    SourceContribution::parsed(
                        "pedro",
                        "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                        ["protein,accession_num"],
                    )
                    .unwrap(),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "gpmdb",
                        "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                        ["proseq,label"],
                    )
                    .unwrap(),
                ),
        )
    }

    #[test]
    fn federation_supports_some_queries_immediately() {
        let mut s = session();
        let outcome = s.federate().unwrap();
        assert_eq!(outcome.effort.cumulative_manual, 0);
        // Q2 only needs the federated schema; Q1 needs the intersection.
        assert_eq!(outcome.progress.answerable_queries, vec!["Q2".to_string()]);
        assert_eq!(outcome.newly_answerable, vec!["Q2".to_string()]);
        assert!(!s.all_queries_answerable());
    }

    #[test]
    fn iteration_makes_priority_query_answerable() {
        let mut s = session();
        s.federate().unwrap();
        let outcome = s.iterate(spec()).unwrap();
        assert_eq!(outcome.newly_answerable, vec!["Q1".to_string()]);
        assert_eq!(outcome.progress.answerable_count(), 2);
        assert!(s.all_queries_answerable());
        // Running Q1 returns the identifications from both sources for ACC2.
        let v = s.run_priority_query("Q1").unwrap();
        assert_eq!(v.expect_bag().unwrap().len(), 2);
        // The same prepared shape re-executes under a fresh binding.
        let v = s
            .run_priority_query_with("Q1", &Params::new().with("accession", "ACC1"))
            .unwrap();
        assert_eq!(v.expect_bag().unwrap().len(), 1);
    }

    #[test]
    fn curve_is_monotone_in_effort_and_coverage() {
        let mut s = session();
        s.federate().unwrap();
        s.iterate(spec()).unwrap();
        let curve = s.pay_as_you_go_curve();
        assert_eq!(curve.len(), 2);
        assert!(curve[0].cumulative_manual <= curve[1].cumulative_manual);
        assert!(curve[0].answerable_count() <= curve[1].answerable_count());
        let text = s.render_curve();
        assert!(text.contains("federation"));
        assert!(text.contains("I1"));
    }

    #[test]
    fn unknown_priority_query_reported() {
        let s = session();
        assert!(matches!(
            s.run_priority_query("Q99"),
            Err(CoreError::Query(_))
        ));
    }
}
