//! A headless equivalent of the graphical Intersection Schema Tool (Figure 5).
//!
//! The GUI in the paper presents three panels: the source schemas on the left (object
//! selection), the transformation queries at the bottom (forward, then reverse), and
//! the current global schema on the right. This module reproduces the *interaction
//! contract* of that tool without a GUI:
//!
//! * select objects from two (or more) source schemas;
//! * name the new intersection-schema object; if exactly one object is selected from a
//!   source, a default forward query (the identity over that object, tagged with the
//!   source name) is generated automatically, which the user may edit;
//! * reverse queries are generated automatically where the forward query is
//!   invertible, defaulting to `Range Void Any` otherwise, and may be overridden;
//! * the accumulated decisions are turned into an [`IntersectionSpec`] and a
//!   [`MappingTable`] that mirrors the bottom panel of the GUI.

use crate::error::CoreError;
use crate::mapping::{
    parse_scheme_key, IntersectionSpec, MappingTable, ObjectMapping, SourceContribution,
};
use automed::{ConstructKind, Repository, SchemeRef};
use iql::ast::{Expr, Literal, Pattern, Qualifier};

/// One pending mapping being edited in the tool.
#[derive(Debug, Clone)]
struct PendingMapping {
    target_key: String,
    construct: ConstructKind,
    contributions: Vec<SourceContribution>,
    derived_query: Option<Expr>,
}

/// The headless Intersection Schema Tool.
#[derive(Debug)]
pub struct IntersectionSchemaTool<'a> {
    repository: &'a Repository,
    intersection_name: String,
    pending: Vec<PendingMapping>,
}

impl<'a> IntersectionSchemaTool<'a> {
    /// Open the tool for a new intersection schema over the given repository.
    pub fn new(repository: &'a Repository, intersection_name: impl Into<String>) -> Self {
        IntersectionSchemaTool {
            repository,
            intersection_name: intersection_name.into(),
            pending: Vec::new(),
        }
    }

    /// The objects of a source schema, as shown in the tool's left panel.
    pub fn source_objects(&self, source: &str) -> Result<Vec<SchemeRef>, CoreError> {
        Ok(self.repository.schema(source)?.schemes().cloned().collect())
    }

    /// Begin a new intersection-schema object. `target_key` is the scheme key of the
    /// new object (e.g. `"UProtein"` or `"UProtein,accession_num"`).
    pub fn new_object(&mut self, target_key: &str, construct: ConstructKind) -> &mut Self {
        self.pending.push(PendingMapping {
            target_key: target_key.to_string(),
            construct,
            contributions: Vec::new(),
            derived_query: None,
        });
        self
    }

    /// Select a single object from a source for the current target: the tool generates
    /// the default forward query — the identity over the selected object, tagged with
    /// the source's (upper-cased) name — which the user may later edit with
    /// [`IntersectionSchemaTool::edit_forward_query`].
    pub fn select_object(
        &mut self,
        source: &str,
        object_key: &str,
    ) -> Result<&mut Self, CoreError> {
        let scheme = parse_scheme_key(object_key);
        let source_schema = self.repository.schema(source)?;
        if !source_schema.contains(&scheme) {
            return Err(CoreError::InvalidSpec(format!(
                "source `{source}` has no object {scheme}"
            )));
        }
        let query = default_forward_query(source, &scheme);
        let current = self.current_mapping_mut()?;
        current.contributions.push(SourceContribution::new(
            source,
            query,
            [object_key.to_string()],
        ));
        Ok(self)
    }

    /// Replace the forward query of the current target's contribution from `source`.
    pub fn edit_forward_query(
        &mut self,
        source: &str,
        query: &str,
    ) -> Result<&mut Self, CoreError> {
        let parsed = iql::parse(query)?;
        let current = self.current_mapping_mut()?;
        let contribution = current
            .contributions
            .iter_mut()
            .rev()
            .find(|c| c.source == source)
            .ok_or_else(|| {
                CoreError::InvalidSpec(format!("no contribution from `{source}` to edit"))
            })?;
        contribution.query = parsed;
        Ok(self)
    }

    /// Supply a reverse query for the current target's contribution from `source`
    /// (overriding automatic generation).
    pub fn edit_reverse_query(
        &mut self,
        source: &str,
        query: &str,
    ) -> Result<&mut Self, CoreError> {
        let parsed = iql::parse(query)?;
        let current = self.current_mapping_mut()?;
        let contribution = current
            .contributions
            .iter_mut()
            .rev()
            .find(|c| c.source == source)
            .ok_or_else(|| {
                CoreError::InvalidSpec(format!("no contribution from `{source}` to edit"))
            })?;
        contribution.reverse_override = Some(parsed);
        Ok(self)
    }

    /// Define the current target by a query over the global schema (derived concept).
    pub fn define_derived(&mut self, query: &str) -> Result<&mut Self, CoreError> {
        let parsed = iql::parse(query)?;
        self.current_mapping_mut()?.derived_query = Some(parsed);
        Ok(self)
    }

    /// The mappings table as the tool's bottom panel would show it.
    pub fn mapping_table(&self) -> Result<MappingTable, CoreError> {
        Ok(MappingTable::from_spec(&self.build_spec()?))
    }

    /// Finish editing and produce the intersection specification (the user pressing
    /// "create intersection schema" in the GUI).
    pub fn finish(&self) -> Result<IntersectionSpec, CoreError> {
        let spec = self.build_spec()?;
        spec.validate()?;
        Ok(spec)
    }

    fn build_spec(&self) -> Result<IntersectionSpec, CoreError> {
        let mut spec = IntersectionSpec::new(self.intersection_name.clone());
        for pending in &self.pending {
            let mut mapping =
                ObjectMapping::object(parse_scheme_key(&pending.target_key), pending.construct);
            for c in &pending.contributions {
                mapping = mapping.with_contribution(c.clone());
            }
            if let Some(d) = &pending.derived_query {
                mapping = mapping.with_derived_query(d.clone());
            }
            spec.push(mapping);
        }
        Ok(spec)
    }

    fn current_mapping_mut(&mut self) -> Result<&mut PendingMapping, CoreError> {
        self.pending.last_mut().ok_or_else(|| {
            CoreError::WorkflowOrder("call new_object() before selecting objects".into())
        })
    }
}

/// The default forward query generated when a single object is selected: the identity
/// over the object, tagged with the source's provenance prefix.
///
/// For a table-like scheme `⟨⟨t⟩⟩` the default is `[{ 'SRC', k } | k <- ⟨⟨t⟩⟩]`; for a
/// column-like scheme `⟨⟨t, c⟩⟩` it is `[{ 'SRC', k, x } | {k, x} <- ⟨⟨t, c⟩⟩]`.
pub fn default_forward_query(source: &str, scheme: &SchemeRef) -> Expr {
    let tag = Expr::Lit(Literal::Str(crate::federated::member_prefix(source)));
    if scheme.parts.len() <= 1 {
        Expr::Comp {
            head: Box::new(Expr::Tuple(vec![tag, Expr::var("k")])),
            qualifiers: vec![Qualifier::Generator {
                pattern: Pattern::Var("k".into()),
                source: Expr::Scheme(scheme.clone()),
            }],
        }
    } else {
        Expr::Comp {
            head: Box::new(Expr::Tuple(vec![tag, Expr::var("k"), Expr::var("x")])),
            qualifiers: vec![Qualifier::Generator {
                pattern: Pattern::Tuple(vec![Pattern::Var("k".into()), Pattern::Var("x".into())]),
                source: Expr::Scheme(scheme.clone()),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automed::{Schema, SchemaObject};

    fn repository() -> Repository {
        let mut repo = Repository::new();
        repo.add_source_schema(
            Schema::from_objects(
                "pedro",
                [
                    SchemaObject::table("proteinhit"),
                    SchemaObject::column("proteinhit", "db_search"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo.add_source_schema(
            Schema::from_objects(
                "pepseeker",
                [
                    SchemaObject::table("proteinhit"),
                    SchemaObject::column("proteinhit", "fileparameters"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        repo
    }

    #[test]
    fn figure5_interaction_reproduced() {
        // The paper's §2.4 example: proteinhit.db_search (Pedro) and
        // proteinhit.fileparameters (PepSeeker) are semantically equivalent and become
        // UProteinHit.dbsearch in the intersection schema.
        let repo = repository();
        let mut tool = IntersectionSchemaTool::new(&repo, "I_proteinhit");
        tool.new_object("UProteinHit,dbsearch", ConstructKind::Column);
        tool.select_object("pedro", "proteinhit,db_search").unwrap();
        tool.select_object("pepseeker", "proteinhit,fileparameters")
            .unwrap();

        let table = tool.mapping_table().unwrap();
        assert_eq!(table.rows.len(), 2);
        assert!(table.rows[0].forward.contains("'PEDRO'"));
        assert!(table.rows[1].forward.contains("'PEPSEEKER'"));
        // Default forward queries are invertible, so reverse queries are generated.
        assert!(table.rows.iter().all(|r| r.reverse_auto_generated));

        let spec = tool.finish().unwrap();
        assert_eq!(spec.mappings.len(), 1);
        assert_eq!(spec.manual_transformation_count(), 2);
        assert_eq!(spec.participating_sources(), vec!["pedro", "pepseeker"]);
    }

    #[test]
    fn left_panel_lists_source_objects() {
        let repo = repository();
        let tool = IntersectionSchemaTool::new(&repo, "I");
        let objs = tool.source_objects("pedro").unwrap();
        assert_eq!(objs.len(), 2);
        assert!(tool.source_objects("nonexistent").is_err());
    }

    #[test]
    fn forward_query_can_be_edited() {
        let repo = repository();
        let mut tool = IntersectionSchemaTool::new(&repo, "I");
        tool.new_object("UProteinHit", ConstructKind::Table);
        tool.select_object("pedro", "proteinhit").unwrap();
        tool.edit_forward_query("pedro", "[{'PEDRO', k} | k <- <<proteinhit>>; k > 0]")
            .unwrap();
        let spec = tool.finish().unwrap();
        let q = &spec.mappings[0].contributions[0].query;
        assert!(iql::pretty::print(q).contains("k > 0"));
    }

    #[test]
    fn reverse_override_counts_as_manual() {
        let repo = repository();
        let mut tool = IntersectionSchemaTool::new(&repo, "I");
        tool.new_object("UProteinHit", ConstructKind::Table);
        tool.select_object("pepseeker", "proteinhit").unwrap();
        tool.edit_reverse_query("pepseeker", "[k | {'PEPSEEKER', k} <- <<UProteinHit>>]")
            .unwrap();
        let spec = tool.finish().unwrap();
        assert_eq!(spec.manual_transformation_count(), 2);
    }

    #[test]
    fn selecting_unknown_object_or_without_target_fails() {
        let repo = repository();
        let mut tool = IntersectionSchemaTool::new(&repo, "I");
        assert!(matches!(
            tool.select_object("pedro", "proteinhit"),
            Err(CoreError::WorkflowOrder(_))
        ));
        tool.new_object("U", ConstructKind::Table);
        assert!(matches!(
            tool.select_object("pedro", "nonexistent"),
            Err(CoreError::InvalidSpec(_))
        ));
    }

    #[test]
    fn derived_objects_supported() {
        let repo = repository();
        let mut tool = IntersectionSchemaTool::new(&repo, "I");
        tool.new_object("uPeptideHitToProteinHit_mm", ConstructKind::Table);
        tool.define_derived(
            "[{k1, k2} | {k1, x} <- <<UPeptideHit, dbsearch>>; {k2, y} <- <<UProteinHit, dbsearch>>; x = y]",
        )
        .unwrap();
        let spec = tool.finish().unwrap();
        assert!(spec.mappings[0].derived_query.is_some());
        assert_eq!(spec.manual_transformation_count(), 1);
    }

    #[test]
    fn default_query_shapes() {
        let table_q = default_forward_query("pedro", &SchemeRef::table("proteinhit"));
        assert_eq!(
            iql::pretty::print(&table_q),
            "[{'PEDRO', k} | k <- <<proteinhit>>]"
        );
        let col_q = default_forward_query(
            "pepseeker",
            &SchemeRef::column("proteinhit", "fileparameters"),
        );
        assert_eq!(
            iql::pretty::print(&col_q),
            "[{'PEPSEEKER', k, x} | {k, x} <- <<proteinhit, fileparameters>>]"
        );
    }
}
