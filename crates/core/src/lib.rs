//! # dataspace-core — Intersection Schemas as a Dataspace Integration Technique
//!
//! This crate implements the paper's contribution: an incremental, pay-as-you-go data
//! integration technique in which the semantic overlap between extensional schemas is
//! captured as an **intersection schema** specified through bidirectional schema
//! transformations, and a **global schema** is re-derived automatically after every
//! iteration:
//!
//! ```text
//! G = I1 ∪ … ∪ Im ∪ (ES1 − I) ∪ (ES2 − I) ∪ ES3 ∪ … ∪ ESn
//! ```
//!
//! The crate builds entirely on the `automed` substrate (schemas, transformations,
//! pathways, BAV query processing) and exposes:
//!
//! * [`federated`] — federated schemas: the zero-effort union of all source schemas,
//!   with provenance prefixes, queryable immediately (workflow step 2);
//! * [`mapping`] — mapping specifications and the per-intersection mappings table
//!   maintained by the Intersection Schema Tool (workflow step 4);
//! * [`intersection`] — construction of intersection schemas: the
//!   `add* ; delete* ; contract*` pathways from each extensional schema, automatic
//!   reverse-query generation, `ident` injection (workflow step 5);
//! * [`difference`] — the `ES − I` schema difference operator;
//! * [`global`] — automatic global schema derivation with optional redundancy removal;
//! * [`workflow`] — the six-step iterative integration workflow of §2.3;
//! * [`tool`] — a headless equivalent of the graphical Intersection Schema Tool
//!   (Figure 5);
//! * [`metrics`] — integration-effort accounting (manual vs tool-generated,
//!   non-trivial transformation counts, pay-as-you-go curves);
//! * [`dataspace`] — the [`dataspace::Dataspace`] facade tying sources, repository,
//!   view definitions and query answering together.
//!
//! ## Query answering at scale
//!
//! A [`dataspace::Dataspace`] is built for the paper's pay-as-you-go workload:
//! many small priority queries re-issued after every integration iteration.
//! The primary entry point is the prepared-statement API —
//! [`dataspace::Dataspace::prepare`] parses and validates a query once, and
//! the returned [`dataspace::PreparedQuery`] executes it under any number of
//! [`iql::Params`] bindings ([`dataspace::PreparedQuery::execute`], or
//! [`dataspace::PreparedQuery::execute_all`] for a concurrent batch of
//! bindings). Because `?name` placeholders keep the expression identical
//! across bindings, one query shape costs **one** plan: every execution after
//! the first is a plan-cache hit, and parameter values bind as runtime values
//! rather than spliced text (a `'` in an accession cannot break the parse).
//! [`dataspace::Dataspace::query`] / [`dataspace::Dataspace::query_all`]
//! remain as thin wrappers for placeholder-free texts, fanning batches out on
//! the process-wide [`iql::FetchPool`] thread budget. Every query (prepared,
//! batched or not) shares three bounded, LRU-evicted memos that persist across
//! calls: a global-extent memo, an [`iql::PlanCache`] of built comprehension
//! plans (with per-extent join-key histograms for the join-order cost model),
//! and a parse memo for re-issued texts. All of them invalidate automatically
//! when sources mutate or the schemas change, so answers are always current;
//! [`dataspace::Dataspace::stats`] exposes the hit/miss/eviction counters.
//!
//! ## Quick example
//!
//! ```
//! use dataspace_core::dataspace::Dataspace;
//! use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
//! use relational::schema::{RelSchema, RelTable, RelColumn, DataType};
//! use relational::Database;
//!
//! // Two tiny sources that both describe proteins.
//! let mut pedro_schema = RelSchema::new("pedro");
//! pedro_schema.add_table(
//!     RelTable::new("protein")
//!         .with_column(RelColumn::new("id", DataType::Int))
//!         .with_column(RelColumn::new("accession_num", DataType::Text))
//!         .with_primary_key(["id"]),
//! ).unwrap();
//! let mut pedro = Database::new(pedro_schema);
//! pedro.insert("protein", vec![1.into(), "ACC1".into()]).unwrap();
//!
//! let mut gpmdb_schema = RelSchema::new("gpmdb");
//! gpmdb_schema.add_table(
//!     RelTable::new("proseq")
//!         .with_column(RelColumn::new("proseqid", DataType::Int))
//!         .with_column(RelColumn::new("label", DataType::Text))
//!         .with_primary_key(["proseqid"]),
//! ).unwrap();
//! let mut gpmdb = Database::new(gpmdb_schema);
//! gpmdb.insert("proseq", vec![7.into(), "ACC1".into()]).unwrap();
//!
//! // Build the dataspace: wrap, federate, then one intersection-schema iteration.
//! let mut ds = Dataspace::new();
//! ds.add_source(pedro).unwrap();
//! ds.add_source(gpmdb).unwrap();
//! ds.federate().unwrap();
//!
//! let spec = IntersectionSpec::new("I_protein")
//!     .with_mapping(
//!         ObjectMapping::table("UProtein")
//!             .with_contribution(SourceContribution::parsed(
//!                 "pedro", "[{'PEDRO', k} | k <- <<protein>>]", ["protein"]).unwrap())
//!             .with_contribution(SourceContribution::parsed(
//!                 "gpmdb", "[{'gpmDB', k} | k <- <<proseq>>]", ["proseq"]).unwrap()),
//!     );
//! ds.integrate(spec).unwrap();
//!
//! // The global schema now answers queries spanning both sources.
//! let n = ds.query_value("count <<UProtein>>").unwrap();
//! assert_eq!(n, iql::Value::Int(2));
//! ```

pub mod dataspace;
pub mod difference;
pub mod error;
pub mod federated;
pub mod global;
pub mod intersection;
pub mod mapping;
pub mod metrics;
pub mod subscriptions;
pub mod tool;
pub mod workflow;

pub use dataspace::{Dataspace, DataspaceStats, PreparedQuery};
pub use error::CoreError;
pub use mapping::{IntersectionSpec, ObjectMapping, SourceContribution};
pub use metrics::{EffortReport, IterationEffort, MethodologyComparison};
pub use subscriptions::{Subscription, SubscriptionUpdate};
