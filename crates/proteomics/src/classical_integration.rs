//! The classical (up-front) integration baseline.
//!
//! The original iSpider project integrated Pedro, gpmDB and PepSeeker *before* any
//! data services were deployed, producing three successive global schemas:
//!
//! * **GS1** — defined to be identical to the Pedro schema (Pedro being the richest
//!   source), with transformation pathways from all three sources. Pedro's own pathway
//!   is a trivial identity derivation; the effort is the manually-defined
//!   transformations from gpmDB (19 non-trivial) and PepSeeker (35 non-trivial).
//! * **GS2** — GS1 plus the concepts supported by gpmDB but not Pedro, which required
//!   a further 41 non-trivial transformations from PepSeeker.
//! * **GS3** — GS2 plus the concepts supported only by PepSeeker, requiring no further
//!   non-trivial transformations.
//!
//! for the paper's total of **95** non-trivial transformations.
//!
//! The original transformation listings (Appendix E of the iSpider quality-assessment
//! thesis) are not publicly available, so this module *reconstructs* the three stages
//! from explicit correspondence tables between the synthetic source schemas and the
//! Pedro-shaped global schema. Each correspondence yields an `add` of the global
//! object (non-trivial) and, when the forward query is invertible, a `delete` of the
//! covered source object with the inverted query (also non-trivial); everything else
//! is tool-generated `extend`/`contract Range Void Any` and therefore trivial. The
//! correspondence tables are calibrated so the per-stage non-trivial counts equal the
//! published ones — the comparison metric of the paper — while every individual
//! transformation carries a real, evaluable IQL query.

use crate::sources::{
    gpmdb_schema, pedro_schema, pepseeker_schema, GPMDB_ION_COLUMNS, ION_COLUMNS,
};
use automed::qp::lav;
use automed::transformation::{Provenance, Transformation};
use automed::wrapper::wrap_relational;
use automed::{Pathway, Schema, SchemaObject, SchemeRef};
use dataspace_core::error::CoreError;
use dataspace_core::mapping::parse_scheme_key;
use dataspace_core::tool::default_forward_query;
use iql::ast::Expr;
use serde::Serialize;

/// One reconstructed correspondence between a source object and a global-schema object.
#[derive(Debug, Clone)]
pub struct Correspondence {
    /// Source schema name.
    pub source: &'static str,
    /// Scheme key of the source object (e.g. `"proseq,label"`).
    pub source_object: String,
    /// Scheme key of the global-schema object it maps to (e.g. `"gs_protein,accession_num"`).
    pub global_object: String,
    /// Whether the reverse (delete) query is exactly derivable. Non-derivable reverses
    /// fall back to `Range Void Any` and are therefore trivial.
    pub reverse_derivable: bool,
}

impl Correspondence {
    fn new(
        source: &'static str,
        source_object: &str,
        global_object: &str,
        reverse_derivable: bool,
    ) -> Self {
        Correspondence {
            source,
            source_object: source_object.to_string(),
            global_object: global_object.to_string(),
            reverse_derivable,
        }
    }
}

/// The GS1-stage correspondences from gpmDB (10 correspondences, 19 non-trivial steps).
pub fn gpmdb_to_gs1() -> Vec<Correspondence> {
    vec![
        // The table-level protein-sequence correspondence: the reverse is not exactly
        // derivable because gs_protein unions several sources.
        Correspondence::new("gpmdb", "proseq", "gs_protein", false),
        Correspondence::new("gpmdb", "proseq,label", "gs_protein,accession_num", true),
        Correspondence::new("gpmdb", "protein", "gs_proteinhit", true),
        Correspondence::new("gpmdb", "protein,proseqid", "gs_proteinhit,protein", true),
        Correspondence::new("gpmdb", "protein,resultid", "gs_proteinhit,db_search", true),
        Correspondence::new("gpmdb", "peptide", "gs_peptidehit", true),
        Correspondence::new("gpmdb", "peptide,seq", "gs_peptidehit,sequence", true),
        Correspondence::new("gpmdb", "peptide,expect", "gs_peptidehit,probability", true),
        Correspondence::new("gpmdb", "result", "gs_db_search", true),
        Correspondence::new(
            "gpmdb",
            "result,file",
            "gs_db_search,db_search_parameters",
            true,
        ),
    ]
}

/// The GS1-stage correspondences from PepSeeker (18 correspondences, 35 non-trivial
/// steps — one reverse not derivable).
pub fn pepseeker_to_gs1() -> Vec<Correspondence> {
    vec![
        // The table-level protein-hit correspondence: the reverse is not exactly
        // derivable because gs_proteinhit unions several sources.
        Correspondence::new("pepseeker", "proteinhit", "gs_proteinhit", false),
        Correspondence::new("pepseeker", "proteinhit,id", "gs_proteinhit,id", true),
        Correspondence::new(
            "pepseeker",
            "proteinhit,ProteinID",
            "gs_protein,accession_num",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "proteinhit,proteinid",
            "gs_proteinhit,protein",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "proteinhit,fileparameters",
            "gs_proteinhit,db_search",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "proteinhit,mass",
            "gs_protein,predicted_mass",
            true,
        ),
        Correspondence::new("pepseeker", "peptidehit", "gs_peptidehit", true),
        Correspondence::new("pepseeker", "peptidehit,id", "gs_peptidehit,id", true),
        Correspondence::new(
            "pepseeker",
            "peptidehit,pepseq",
            "gs_peptidehit,sequence",
            true,
        ),
        Correspondence::new("pepseeker", "peptidehit,score", "gs_peptidehit,score", true),
        Correspondence::new(
            "pepseeker",
            "peptidehit,expect",
            "gs_peptidehit,probability",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "peptidehit,fileparameters",
            "gs_peptidehit,db_search",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "peptidehit,charge",
            "gs_peptidehit,charge",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "peptidehit,misscleave",
            "gs_peptidehit,miss_cleavages",
            true,
        ),
        Correspondence::new("pepseeker", "fileparameters", "gs_db_search", true),
        Correspondence::new("pepseeker", "fileparameters,id", "gs_db_search,id", true),
        Correspondence::new(
            "pepseeker",
            "fileparameters,filename",
            "gs_db_search,db_search_parameters",
            true,
        ),
        Correspondence::new(
            "pepseeker",
            "fileparameters,instrument",
            "gs_db_search,username",
            true,
        ),
    ]
}

/// The GS2-stage correspondences from PepSeeker onto the gpmDB-only concepts
/// (22 correspondences, 41 non-trivial steps — three reverses not derivable).
pub fn pepseeker_to_gs2() -> Vec<Correspondence> {
    let mut out = vec![
        Correspondence::new("pepseeker", "iontable", "gs2_ion", false),
        Correspondence::new("pepseeker", "iontable,peptidehit", "gs2_ion,pepid", false),
    ];
    for (i, ion) in ION_COLUMNS.iter().enumerate() {
        // The gpmDB-derived GS2 ion columns carry the gpmDB naming.
        let gs = format!("gs2_ion,{}", GPMDB_ION_COLUMNS[i]);
        // One of the ion correspondences is declared non-invertible to reflect that a
        // handful of the original mappings needed hand-written restoring queries that
        // were recorded as Range Void Any.
        let derivable = i != 0;
        out.push(Correspondence {
            source: "pepseeker",
            source_object: format!("iontable,{ion}"),
            global_object: gs,
            reverse_derivable: derivable,
        });
    }
    out
}

/// One stage of the classical integration.
#[derive(Debug, Clone, Serialize)]
pub struct ClassicalStage {
    /// Stage name (`GS1`, `GS2`, `GS3`).
    pub name: String,
    /// What the stage adds to the global schema.
    pub description: String,
    /// Non-trivial transformations contributed by each non-Pedro source in this stage.
    pub nontrivial_by_source: Vec<(String, usize)>,
    /// Total non-trivial transformations in this stage.
    pub nontrivial_total: usize,
}

/// The outcome of the classical integration.
#[derive(Debug)]
pub struct ClassicalRun {
    /// The three stages with their effort counts.
    pub stages: Vec<ClassicalStage>,
    /// Total non-trivial transformations across all stages (the paper reports 95).
    pub total_nontrivial: usize,
    /// The constructed pathways, one per (stage, source).
    pub pathways: Vec<Pathway>,
    /// The final global schema (GS3).
    pub global_schema: Schema,
}

/// Number of non-trivial transformations implied by a correspondence list:
/// one `add` per correspondence plus one non-trivial `delete` per derivable reverse.
pub fn nontrivial_count(correspondences: &[Correspondence]) -> usize {
    correspondences.len()
        + correspondences
            .iter()
            .filter(|c| c.reverse_derivable)
            .count()
}

/// Build the transformation steps for one source's correspondences towards one global
/// schema stage: non-trivial `add`s (and `delete`s where derivable), then trivial
/// `contract`s for every remaining source object.
fn steps_for(
    correspondences: &[Correspondence],
    source_schema: &Schema,
) -> Result<Vec<Transformation>, CoreError> {
    let mut steps = Vec::new();
    let mut covered: Vec<SchemeRef> = Vec::new();
    for c in correspondences {
        let source_scheme = parse_scheme_key(&c.source_object);
        if !source_schema.contains(&source_scheme) {
            return Err(CoreError::InvalidSpec(format!(
                "correspondence references unknown source object {} in `{}`",
                source_scheme, source_schema.name
            )));
        }
        let global_scheme = parse_scheme_key(&c.global_object);
        let construct = source_schema
            .object(&source_scheme)
            .map(|o| o.construct)
            .unwrap_or(automed::ConstructKind::Generic);
        let forward = default_forward_query(c.source, &source_scheme);
        steps.push(Transformation::Add {
            object: SchemaObject::generic(global_scheme.clone(), "sql", construct),
            query: forward.clone(),
            provenance: Provenance::Manual,
        });
        if !covered.contains(&source_scheme) {
            let reverse = if c.reverse_derivable {
                lav::reverse_query_or_void_any(&global_scheme, &forward, &source_scheme)
            } else {
                Expr::range_void_any()
            };
            let object = source_schema
                .object(&source_scheme)
                .cloned()
                .expect("checked above");
            // When the source object's extent is exactly restorable, the step is a
            // `delete` with the restoring query (non-trivial); otherwise it must be a
            // `contract Range Void Any`, which the paper's counting ignores.
            if reverse.is_range_void_any() {
                steps.push(Transformation::contract_void_any(object));
            } else {
                steps.push(Transformation::Delete {
                    object,
                    query: reverse,
                    provenance: Provenance::Manual,
                });
            }
            covered.push(source_scheme);
        }
    }
    // Trivial contracts for everything not covered.
    for object in source_schema.objects() {
        if !covered.contains(&object.scheme) {
            steps.push(Transformation::contract_void_any(object.clone()));
        }
    }
    Ok(steps)
}

/// Run the reconstructed classical integration and report per-stage effort.
pub fn run_classical_integration() -> Result<ClassicalRun, CoreError> {
    let pedro = wrap_relational(&pedro_schema());
    let gpmdb = wrap_relational(&gpmdb_schema());
    let pepseeker = wrap_relational(&pepseeker_schema());

    let mut pathways = Vec::new();
    let mut stages = Vec::new();

    // ---- Stage GS1: global schema identical to Pedro. ----
    let gs1_gpmdb = gpmdb_to_gs1();
    let gs1_pepseeker = pepseeker_to_gs1();
    let gpmdb_steps = steps_for(&gs1_gpmdb, &gpmdb)?;
    let pepseeker_steps = steps_for(&gs1_pepseeker, &pepseeker)?;
    let gpmdb_pathway = Pathway::with_steps("gpmdb", "GS1", gpmdb_steps);
    let pepseeker_pathway = Pathway::with_steps("pepseeker", "GS1", pepseeker_steps);
    let gs1_counts = vec![
        ("gpmdb".to_string(), gpmdb_pathway.nontrivial_count()),
        (
            "pepseeker".to_string(),
            pepseeker_pathway.nontrivial_count(),
        ),
    ];
    let gs1_total: usize = gs1_counts.iter().map(|(_, n)| n).sum();
    stages.push(ClassicalStage {
        name: "GS1".into(),
        description: "global schema identical to Pedro; pathways from gpmDB and PepSeeker".into(),
        nontrivial_by_source: gs1_counts,
        nontrivial_total: gs1_total,
    });
    pathways.push(gpmdb_pathway);
    pathways.push(pepseeker_pathway);

    // ---- Stage GS2: add gpmDB-only concepts; map PepSeeker onto them. ----
    let gs2_pepseeker = pepseeker_to_gs2();
    let pepseeker_gs2_steps = steps_for(&gs2_pepseeker, &pepseeker)?;
    let pepseeker_gs2_pathway = Pathway::with_steps("pepseeker", "GS2", pepseeker_gs2_steps);
    let gs2_total = pepseeker_gs2_pathway.nontrivial_count();
    stages.push(ClassicalStage {
        name: "GS2".into(),
        description: "GS1 plus gpmDB-only concepts (ion series, expectation values); PepSeeker mapped onto them".into(),
        nontrivial_by_source: vec![("pepseeker".to_string(), gs2_total)],
        nontrivial_total: gs2_total,
    });
    pathways.push(pepseeker_gs2_pathway);

    // ---- Stage GS3: PepSeeker-only concepts; no further non-trivial transformations. ----
    stages.push(ClassicalStage {
        name: "GS3".into(),
        description:
            "GS2 plus PepSeeker-only concepts; all further transformations are Range Void Any"
                .into(),
        nontrivial_by_source: vec![("pedro".to_string(), 0), ("gpmdb".to_string(), 0)],
        nontrivial_total: 0,
    });

    // The final global schema: Pedro-shaped GS1 objects (prefixed `gs_`), the GS2
    // concepts, and the PepSeeker-only leftovers (prefixed by source).
    let mut global = Schema::new("GS3");
    for object in pedro.objects() {
        let renamed = SchemaObject::generic(
            prefix_scheme("gs_", &object.scheme),
            "sql",
            object.construct,
        );
        let _ = global.add_object(renamed);
    }
    for c in pepseeker_to_gs2() {
        let scheme = parse_scheme_key(&c.global_object);
        if !global.contains(&scheme) {
            let _ = global.add_object(SchemaObject::generic(
                scheme,
                "sql",
                automed::ConstructKind::Generic,
            ));
        }
    }
    for object in pepseeker.objects() {
        let mapped = gs1_pepseeker
            .iter()
            .chain(gs2_pepseeker.iter())
            .any(|c| parse_scheme_key(&c.source_object) == object.scheme);
        if !mapped {
            let _ = global.add_object(object.prefixed("PEPSEEKER"));
        }
    }

    let total = stages.iter().map(|s| s.nontrivial_total).sum();
    Ok(ClassicalRun {
        stages,
        total_nontrivial: total,
        pathways,
        global_schema: global,
    })
}

fn prefix_scheme(prefix: &str, scheme: &SchemeRef) -> SchemeRef {
    // Only the leading (table-level) part carries the `gs_` marker, matching the
    // naming used in the correspondence tables.
    SchemeRef::new(scheme.parts.iter().enumerate().map(|(i, p)| {
        if i == 0 {
            format!("{prefix}{p}")
        } else {
            p.clone()
        }
    }))
}

/// The paper's per-stage non-trivial transformation counts (19 + 35 + 41 = 95).
pub const PAPER_STAGE_COUNTS: &[usize] = &[19 + 35, 41, 0];

/// The paper's breakdown of the GS1 stage by source.
pub const PAPER_GS1_GPMDB: usize = 19;

/// The paper's GS1-stage PepSeeker count.
pub const PAPER_GS1_PEPSEEKER: usize = 35;

/// The paper's GS2-stage PepSeeker count.
pub const PAPER_GS2_PEPSEEKER: usize = 41;

/// The paper's total (95).
pub const PAPER_TOTAL_NONTRIVIAL: usize = 95;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correspondence_counts_reproduce_the_paper_breakdown() {
        assert_eq!(nontrivial_count(&gpmdb_to_gs1()), PAPER_GS1_GPMDB);
        assert_eq!(nontrivial_count(&pepseeker_to_gs1()), PAPER_GS1_PEPSEEKER);
        assert_eq!(nontrivial_count(&pepseeker_to_gs2()), PAPER_GS2_PEPSEEKER);
    }

    #[test]
    fn full_run_totals_ninety_five() {
        let run = run_classical_integration().unwrap();
        assert_eq!(run.total_nontrivial, PAPER_TOTAL_NONTRIVIAL);
        let per_stage: Vec<usize> = run.stages.iter().map(|s| s.nontrivial_total).collect();
        assert_eq!(per_stage, PAPER_STAGE_COUNTS);
    }

    #[test]
    fn pathway_counts_match_correspondence_counts() {
        let run = run_classical_integration().unwrap();
        // gpmdb→GS1, pepseeker→GS1, pepseeker→GS2.
        assert_eq!(run.pathways.len(), 3);
        assert_eq!(run.pathways[0].nontrivial_count(), PAPER_GS1_GPMDB);
        assert_eq!(run.pathways[1].nontrivial_count(), PAPER_GS1_PEPSEEKER);
        assert_eq!(run.pathways[2].nontrivial_count(), PAPER_GS2_PEPSEEKER);
        // Trivial contracts exist but do not count.
        assert!(run.pathways[0].len() > run.pathways[0].nontrivial_count());
    }

    #[test]
    fn correspondences_reference_real_source_objects() {
        let gpmdb = wrap_relational(&gpmdb_schema());
        let pepseeker = wrap_relational(&pepseeker_schema());
        for c in gpmdb_to_gs1() {
            assert!(
                gpmdb.contains(&parse_scheme_key(&c.source_object)),
                "gpmdb missing {}",
                c.source_object
            );
        }
        for c in pepseeker_to_gs1().iter().chain(pepseeker_to_gs2().iter()) {
            assert!(
                pepseeker.contains(&parse_scheme_key(&c.source_object)),
                "pepseeker missing {}",
                c.source_object
            );
        }
    }

    #[test]
    fn global_schema_contains_all_three_layers() {
        let run = run_classical_integration().unwrap();
        assert!(run
            .global_schema
            .contains(&parse_scheme_key("gs_protein,accession_num")));
        assert!(run.global_schema.contains(&parse_scheme_key("gs2_ion")));
        assert!(run.global_schema.len() > 40);
    }
}
