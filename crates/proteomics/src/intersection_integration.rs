//! The query-driven, intersection-schema integration of the case study (§3).
//!
//! One integration iteration is performed for every priority query that needs concepts
//! not yet in the global schema. The manually-defined transformations per iteration
//! reproduce the paper's counts:
//!
//! | driven by | new concepts | manual transformations |
//! |-----------|--------------|------------------------|
//! | Q1        | `UProtein`, `UProtein.accession_num` (3 sources each) | 6 |
//! | Q2        | `UProtein.description` (Pedro) | 1 |
//! | Q3        | `UProtein.organism` (Pedro) | 1 |
//! | Q4        | `UProteinHit.protein`, `UPeptideHit`, `UPeptideHit.sequence`, `UPeptideHit.score`, `UProteinHit.dbsearch`, `UPeptideHit.dbsearch`, `uPeptideHitToProteinHit_mm` | 15 |
//! | Q5        | — | 0 |
//! | Q6        | `UPeptideHit.probability` (3 sources) | 3 |
//! | Q7        | — | 0 |
//!
//! for a total of **26** manually-defined transformations.

use dataspace_core::error::CoreError;
use dataspace_core::mapping::{IntersectionSpec, ObjectMapping, SourceContribution};

/// Iteration 1 (driven by Q1): the universal protein concept and its accession number.
/// 6 manually-defined transformations.
pub fn iteration_q1() -> IntersectionSpec {
    IntersectionSpec::new("I1_protein")
        .with_mapping(
            ObjectMapping::table("UProtein")
                .with_contribution(
                    SourceContribution::parsed(
                        "pedro",
                        "[{'PEDRO', k} | k <- <<protein>>]",
                        ["protein"],
                    )
                    .expect("valid IQL"),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "gpmdb",
                        "[{'gpmDB', k} | k <- <<proseq>>]",
                        ["proseq"],
                    )
                    .expect("valid IQL"),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "pepseeker",
                        "[{'pepSeeker', x} | {k, x} <- <<proteinhit, ProteinID>>]",
                        Vec::<String>::new(),
                    )
                    .expect("valid IQL"),
                ),
        )
        .with_mapping(
            ObjectMapping::column("UProtein", "accession_num")
                .with_contribution(
                    SourceContribution::parsed(
                        "pedro",
                        "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]",
                        ["protein,accession_num"],
                    )
                    .expect("valid IQL"),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "gpmdb",
                        "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]",
                        ["proseq,label"],
                    )
                    .expect("valid IQL"),
                )
                .with_contribution(
                    SourceContribution::parsed(
                        "pepseeker",
                        "[{'pepSeeker', x, x} | {k, x} <- <<proteinhit, ProteinID>>]",
                        Vec::<String>::new(),
                    )
                    .expect("valid IQL"),
                ),
        )
}

/// Iteration 2 (driven by Q2): protein descriptions, available only from Pedro.
/// 1 manually-defined transformation.
pub fn iteration_q2() -> IntersectionSpec {
    IntersectionSpec::new("I2_description").with_mapping(
        ObjectMapping::column("UProtein", "description").with_contribution(
            SourceContribution::parsed(
                "pedro",
                "[{'PEDRO', k, x} | {k, x} <- <<protein, description>>]",
                ["protein,description"],
            )
            .expect("valid IQL"),
        ),
    )
}

/// Iteration 3 (driven by Q3): organisms, available only from Pedro.
/// 1 manually-defined transformation.
pub fn iteration_q3() -> IntersectionSpec {
    IntersectionSpec::new("I3_organism").with_mapping(
        ObjectMapping::column("UProtein", "organism").with_contribution(
            SourceContribution::parsed(
                "pedro",
                "[{'PEDRO', k, x} | {k, x} <- <<protein, organism>>]",
                ["protein,organism"],
            )
            .expect("valid IQL"),
        ),
    )
}

/// Iteration 4 (driven by Q4): protein hits, peptide hits, their sequences, scores,
/// database-search links, and the peptide-hit ↔ protein-hit association.
/// 15 manually-defined transformations (14 source contributions + 1 derived query).
pub fn iteration_q4() -> Result<IntersectionSpec, CoreError> {
    Ok(IntersectionSpec::new("I4_hits")
        .with_mapping(
            ObjectMapping::column("UProteinHit", "protein")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<proteinhit, protein>>]",
                    ["proteinhit,protein"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "gpmdb",
                    "[{'gpmDB', k, x} | {k, x} <- <<protein, proseqid>>]",
                    ["protein,proseqid"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "pepseeker",
                    "[{'pepSeeker', k, x} | {k, x} <- <<proteinhit, proteinid>>]",
                    ["proteinhit,proteinid"],
                )?),
        )
        .with_mapping(
            ObjectMapping::table("UPeptideHit")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k} | k <- <<peptidehit>>]",
                    ["peptidehit"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "gpmdb",
                    "[{'gpmDB', k} | k <- <<peptide>>]",
                    ["peptide"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "pepseeker",
                    "[{'pepSeeker', k} | k <- <<peptidehit>>]",
                    ["peptidehit"],
                )?),
        )
        .with_mapping(
            ObjectMapping::column("UPeptideHit", "sequence")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, sequence>>]",
                    ["peptidehit,sequence"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "gpmdb",
                    "[{'gpmDB', k, x} | {k, x} <- <<peptide, seq>>]",
                    ["peptide,seq"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "pepseeker",
                    "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, pepseq>>]",
                    ["peptidehit,pepseq"],
                )?),
        )
        .with_mapping(
            ObjectMapping::column("UPeptideHit", "score")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, score>>]",
                    ["peptidehit,score"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "pepseeker",
                    "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, score>>]",
                    ["peptidehit,score"],
                )?),
        )
        .with_mapping(
            ObjectMapping::column("UProteinHit", "dbsearch")
                .with_contribution(SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<proteinhit, db_search>>]",
                    ["proteinhit,db_search"],
                )?)
                .with_contribution(SourceContribution::parsed(
                    "pepseeker",
                    "[{'pepSeeker', k, x} | {k, x} <- <<proteinhit, fileparameters>>]",
                    ["proteinhit,fileparameters"],
                )?),
        )
        .with_mapping(
            ObjectMapping::column("UPeptideHit", "dbsearch").with_contribution(
                SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, db_search>>]",
                    ["peptidehit,db_search"],
                )?,
            ),
        )
        .with_mapping(
            ObjectMapping::table("uPeptideHitToProteinHit_mm").with_derived_query_str(
                "[{{s1, k1}, {s2, k2}} | {s1, k1, x} <- <<UPeptideHit, dbsearch>>; {s2, k2, y} <- <<UProteinHit, dbsearch>>; x = y]",
            )?,
        ))
}

/// Iteration 5 (driven by Q6): peptide-hit probabilities / expectation values.
/// 3 manually-defined transformations.
pub fn iteration_q6() -> IntersectionSpec {
    IntersectionSpec::new("I5_probability").with_mapping(
        ObjectMapping::column("UPeptideHit", "probability")
            .with_contribution(
                SourceContribution::parsed(
                    "pedro",
                    "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, probability>>]",
                    ["peptidehit,probability"],
                )
                .expect("valid IQL"),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "gpmdb",
                    "[{'gpmDB', k, x} | {k, x} <- <<peptide, expect>>]",
                    ["peptide,expect"],
                )
                .expect("valid IQL"),
            )
            .with_contribution(
                SourceContribution::parsed(
                    "pepseeker",
                    "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, expect>>]",
                    ["peptidehit,expect"],
                )
                .expect("valid IQL"),
            ),
    )
}

/// All integration iterations in the order they are applied, labelled by the priority
/// query that drives each.
pub fn all_iterations() -> Result<Vec<(&'static str, IntersectionSpec)>, CoreError> {
    Ok(vec![
        ("Q1", iteration_q1()),
        ("Q2", iteration_q2()),
        ("Q3", iteration_q3()),
        ("Q4", iteration_q4()?),
        ("Q6", iteration_q6()),
    ])
}

/// The paper's per-iteration manual-transformation breakdown (6 + 1 + 1 + 15 + 3 = 26).
pub const PAPER_ITERATION_COUNTS: &[usize] = &[6, 1, 1, 15, 3];

/// The paper's total number of manually-defined transformations.
pub const PAPER_TOTAL_MANUAL: usize = 26;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_specs_validate() {
        for (label, spec) in all_iterations().unwrap() {
            spec.validate()
                .unwrap_or_else(|e| panic!("spec for {label} invalid: {e}"));
        }
    }

    #[test]
    fn manual_transformation_counts_match_the_paper() {
        let iterations = all_iterations().unwrap();
        let counts: Vec<usize> = iterations
            .iter()
            .map(|(_, spec)| spec.manual_transformation_count())
            .collect();
        assert_eq!(counts, PAPER_ITERATION_COUNTS);
        assert_eq!(counts.iter().sum::<usize>(), PAPER_TOTAL_MANUAL);
    }

    #[test]
    fn every_query_iteration_touches_expected_sources() {
        assert_eq!(
            iteration_q1().participating_sources(),
            vec!["pedro", "gpmdb", "pepseeker"]
        );
        assert_eq!(iteration_q2().participating_sources(), vec!["pedro"]);
        assert_eq!(iteration_q3().participating_sources(), vec!["pedro"]);
        assert_eq!(
            iteration_q4().unwrap().participating_sources(),
            vec!["pedro", "gpmdb", "pepseeker"]
        );
        assert_eq!(
            iteration_q6().participating_sources(),
            vec!["pedro", "gpmdb", "pepseeker"]
        );
    }
}
