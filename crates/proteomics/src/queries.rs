//! The seven priority queries of the case study (§3, Table 1).
//!
//! The iSpider domain experts identified seven high-priority queries the integrated
//! resource had to answer. The paper uses their priority order to drive the
//! intersection-schema integration: each iteration integrates exactly the concepts the
//! next unanswered query needs. The IQL formulations below are expressed over the
//! global schema produced by [`crate::intersection_integration`]; Q7 needs only the
//! initial federated schema (PepSeeker's ion table), mirroring the paper's observation
//! that no further concepts are needed for it.

use dataspace_core::workflow::PriorityQuery;

/// Default protein accession parameter (drawn from the shared cross-source pool, so it
/// is very likely to occur in more than one source at the default scales).
pub const DEFAULT_ACCESSION: &str = "ACC00001";

/// Default organism parameter.
pub const DEFAULT_ORGANISM: &str = "Homo sapiens";

/// Q1 — retrieve all protein identifications for a given protein accession number.
pub fn q1(accession: &str) -> String {
    format!("[{{s, k}} | {{s, k, x}} <- <<UProtein, accession_num>>; x = '{accession}']")
}

/// Q2 — retrieve all protein identifications for a given group of proteins (the group
/// being specified by a set of accession numbers).
pub fn q2(accessions: &[&str]) -> String {
    let list = accessions
        .iter()
        .map(|a| format!("'{a}'"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "[{{s, k, d}} | {{s, k, x}} <- <<UProtein, accession_num>>; member([{list}], x); {{s2, k2, d}} <- <<UProtein, description>>; s2 = s; k2 = k]"
    )
}

/// Q3 — retrieve all protein identifications for a given organism.
pub fn q3(organism: &str) -> String {
    format!("[{{s, k}} | {{s, k, o}} <- <<UProtein, organism>>; o = '{organism}']")
}

/// Q4 — retrieve all protein identifications given a certain peptide, and their
/// related amino-acid (sequence) information.
pub fn q4(peptide_sequence: &str) -> String {
    format!(
        "[{{s2, k2, seq}} | {{s1, k1, seq}} <- <<UPeptideHit, sequence>>; seq = '{peptide_sequence}'; {{{{s1b, k1b}}, {{s2, k2}}}} <- <<uPeptideHitToProteinHit_mm>>; s1b = s1; k1b = k1]"
    )
}

/// Q5 — retrieve all identifications of a given protein given a certain peptide.
pub fn q5(peptide_sequence: &str, protein_key: i64) -> String {
    format!(
        "[{{s2, k2}} | {{s1, k1, seq}} <- <<UPeptideHit, sequence>>; seq = '{peptide_sequence}'; {{{{s1b, k1b}}, {{s2, k2}}}} <- <<uPeptideHitToProteinHit_mm>>; s1b = s1; k1b = k1; {{s3, k3, p}} <- <<UProteinHit, protein>>; s3 = s2; k3 = k2; p = {protein_key}]"
    )
}

/// Q6 — retrieve all peptide-related information for a given protein identification.
pub fn q6(source_tag: &str, protein_hit_key: i64) -> String {
    format!(
        "[{{s1, k1, seq, prob}} | {{{{s1, k1}}, {{s2, k2}}}} <- <<uPeptideHitToProteinHit_mm>>; s2 = '{source_tag}'; k2 = {protein_hit_key}; {{s3, k3, seq}} <- <<UPeptideHit, sequence>>; s3 = s1; k3 = k1; {{s4, k4, prob}} <- <<UPeptideHit, probability>>; s4 = s1; k4 = k1]"
    )
}

/// Q7 — retrieve all ion-related information. Ion-series data lives only in PepSeeker,
/// so the federated schema already answers this query (no integration needed).
pub fn q7() -> String {
    "[{k, ph, imm, b} | {k, ph} <- <<PEPSEEKER_iontable, PEPSEEKER_peptidehit>>; \
      {k2, imm} <- <<PEPSEEKER_iontable, PEPSEEKER_immonium>>; k2 = k; \
      {k3, b} <- <<PEPSEEKER_iontable, PEPSEEKER_b_ion>>; k3 = k]"
        .to_string()
}

/// The shared-pool peptide sequence for a given pool index — the same deterministic
/// function the data generator uses, so query parameters are guaranteed to refer to
/// sequences that can occur in every source.
pub fn shared_peptide_sequence(index: usize) -> String {
    const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    let mut seq = String::new();
    let mut state = index as u64 * 2654435761 + 12345;
    for _ in 0..12 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        seq.push(AMINO[(state >> 33) as usize % AMINO.len()] as char);
    }
    seq
}

/// The full prioritised query list used to drive the case study (Table 1), with
/// default parameters.
pub fn priority_queries() -> Vec<PriorityQuery> {
    vec![
        PriorityQuery {
            name: "Q1".into(),
            description: "Retrieve all protein identifications for a given protein accession number".into(),
            iql: q1(DEFAULT_ACCESSION),
            priority: 1,
        },
        PriorityQuery {
            name: "Q2".into(),
            description: "Retrieve all protein identifications for a given group of proteins".into(),
            iql: q2(&["ACC00000", "ACC00001", "ACC00002"]),
            priority: 2,
        },
        PriorityQuery {
            name: "Q3".into(),
            description: "Retrieve all protein identifications for a given organism".into(),
            iql: q3(DEFAULT_ORGANISM),
            priority: 3,
        },
        PriorityQuery {
            name: "Q4".into(),
            description: "Retrieve all protein identifications given a certain peptide and their related amino acid information".into(),
            iql: q4(&shared_peptide_sequence(0)),
            priority: 4,
        },
        PriorityQuery {
            name: "Q5".into(),
            description: "Retrieve all identifications of a given protein given a certain peptide".into(),
            iql: q5(&shared_peptide_sequence(0), 1),
            priority: 5,
        },
        PriorityQuery {
            name: "Q6".into(),
            description: "Retrieve all peptide-related information for a given protein identification".into(),
            iql: q6("PEDRO", 1),
            priority: 6,
        },
        PriorityQuery {
            name: "Q7".into(),
            description: "Retrieve all ion related information".into(),
            iql: q7(),
            priority: 7,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for q in priority_queries() {
            iql::parse(&q.iql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{}", q.name, q.iql));
        }
    }

    #[test]
    fn parameterised_builders_embed_parameters() {
        assert!(q1("ACC12345").contains("ACC12345"));
        assert!(q3("Mus musculus").contains("Mus musculus"));
        assert!(q2(&["A", "B"]).contains("member(['A', 'B']"));
        assert!(q5("PEPTIDE", 42).contains("p = 42"));
        assert!(q6("gpmDB", 3).contains("'gpmDB'"));
    }

    #[test]
    fn shared_peptide_sequence_is_deterministic_and_plausible() {
        let a = shared_peptide_sequence(0);
        let b = shared_peptide_sequence(0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert_ne!(a, shared_peptide_sequence(1));
        assert!(a.chars().all(|c| "ACDEFGHIKLMNPQRSTVWY".contains(c)));
    }

    #[test]
    fn priorities_are_ordered_one_to_seven() {
        let qs = priority_queries();
        assert_eq!(qs.len(), 7);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.priority, i + 1);
            assert_eq!(q.name, format!("Q{}", i + 1));
        }
    }
}
