//! The seven priority queries of the case study (§3, Table 1), as prepared,
//! parameterised specifications.
//!
//! The iSpider domain experts identified seven high-priority queries the integrated
//! resource had to answer. The paper uses their priority order to drive the
//! intersection-schema integration: each iteration integrates exactly the concepts the
//! next unanswered query needs. The IQL formulations below are expressed over the
//! global schema produced by [`crate::intersection_integration`]; Q7 needs only the
//! initial federated schema (PepSeeker's ion table), mirroring the paper's observation
//! that no further concepts are needed for it.
//!
//! Each query is a **fixed text** (`Q1_IQL` … `Q7_IQL`) whose parameters are
//! `?name` placeholders, plus a binding builder (`q1(...)` … `q7()`) producing
//! the [`Params`] for one execution. The texts never change per parameter
//! value, so `Dataspace::prepare` caches one plan per query that every
//! re-binding reuses — and parameter values travel as runtime values, never as
//! spliced text, so an accession containing `'` or `\` is handled exactly
//! (the old `format!`-splicing builders mis-parsed it).

use dataspace_core::workflow::PriorityQuery;
use iql::{Bag, Params, Value};

/// Default protein accession parameter (drawn from the shared cross-source pool, so it
/// is very likely to occur in more than one source at the default scales).
pub const DEFAULT_ACCESSION: &str = "ACC00001";

/// Default organism parameter.
pub const DEFAULT_ORGANISM: &str = "Homo sapiens";

/// Q1 — retrieve all protein identifications for a given protein accession number.
/// Parameter: `?accession`.
pub const Q1_IQL: &str = "[{s, k} | {s, k, x} <- <<UProtein, accession_num>>; x = ?accession]";

/// Q2 — retrieve all protein identifications for a given group of proteins (the group
/// being specified by a set of accession numbers). Parameter: `?group` (a bag).
pub const Q2_IQL: &str = "[{s, k, d} | {s, k, x} <- <<UProtein, accession_num>>; \
     member(?group, x); {s2, k2, d} <- <<UProtein, description>>; s2 = s; k2 = k]";

/// Q3 — retrieve all protein identifications for a given organism.
/// Parameter: `?organism`.
pub const Q3_IQL: &str = "[{s, k} | {s, k, o} <- <<UProtein, organism>>; o = ?organism]";

/// Q4 — retrieve all protein identifications given a certain peptide, and their
/// related amino-acid (sequence) information. Parameter: `?sequence`.
pub const Q4_IQL: &str = "[{s2, k2, seq} | {s1, k1, seq} <- <<UPeptideHit, sequence>>; \
     seq = ?sequence; {{s1b, k1b}, {s2, k2}} <- <<uPeptideHitToProteinHit_mm>>; \
     s1b = s1; k1b = k1]";

/// Q5 — retrieve all identifications of a given protein given a certain peptide.
/// Parameters: `?sequence`, `?protein`.
pub const Q5_IQL: &str = "[{s2, k2} | {s1, k1, seq} <- <<UPeptideHit, sequence>>; \
     seq = ?sequence; {{s1b, k1b}, {s2, k2}} <- <<uPeptideHitToProteinHit_mm>>; \
     s1b = s1; k1b = k1; {s3, k3, p} <- <<UProteinHit, protein>>; s3 = s2; k3 = k2; \
     p = ?protein]";

/// Q6 — retrieve all peptide-related information for a given protein identification.
/// Parameters: `?source`, `?hit`.
pub const Q6_IQL: &str = "[{s1, k1, seq, prob} | {{s1, k1}, {s2, k2}} <- \
     <<uPeptideHitToProteinHit_mm>>; s2 = ?source; k2 = ?hit; \
     {s3, k3, seq} <- <<UPeptideHit, sequence>>; s3 = s1; k3 = k1; \
     {s4, k4, prob} <- <<UPeptideHit, probability>>; s4 = s1; k4 = k1]";

/// Q7 — retrieve all ion-related information. Ion-series data lives only in PepSeeker,
/// so the federated schema already answers this query (no integration needed — and no
/// parameters).
pub const Q7_IQL: &str =
    "[{k, ph, imm, b} | {k, ph} <- <<PEPSEEKER_iontable, PEPSEEKER_peptidehit>>; \
      {k2, imm} <- <<PEPSEEKER_iontable, PEPSEEKER_immonium>>; k2 = k; \
      {k3, b} <- <<PEPSEEKER_iontable, PEPSEEKER_b_ion>>; k3 = k]";

/// Bindings for [`Q1_IQL`].
pub fn q1(accession: &str) -> Params {
    Params::new().with("accession", accession)
}

/// Bindings for [`Q2_IQL`]: the accession group binds as one bag value.
pub fn q2(accessions: &[&str]) -> Params {
    let group = Bag::from_values(accessions.iter().map(|a| Value::str(*a)).collect());
    Params::new().with("group", Value::Bag(group))
}

/// Bindings for [`Q3_IQL`].
pub fn q3(organism: &str) -> Params {
    Params::new().with("organism", organism)
}

/// Bindings for [`Q4_IQL`].
pub fn q4(peptide_sequence: &str) -> Params {
    Params::new().with("sequence", peptide_sequence)
}

/// Bindings for [`Q5_IQL`].
pub fn q5(peptide_sequence: &str, protein_key: i64) -> Params {
    Params::new()
        .with("sequence", peptide_sequence)
        .with("protein", protein_key)
}

/// Bindings for [`Q6_IQL`].
pub fn q6(source_tag: &str, protein_hit_key: i64) -> Params {
    Params::new()
        .with("source", source_tag)
        .with("hit", protein_hit_key)
}

/// Bindings for [`Q7_IQL`] (no parameters).
pub fn q7() -> Params {
    Params::new()
}

/// The shared-pool peptide sequence for a given pool index — the same deterministic
/// function the data generator uses, so query parameters are guaranteed to refer to
/// sequences that can occur in every source.
pub fn shared_peptide_sequence(index: usize) -> String {
    const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    let mut seq = String::new();
    let mut state = index as u64 * 2654435761 + 12345;
    for _ in 0..12 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        seq.push(AMINO[(state >> 33) as usize % AMINO.len()] as char);
    }
    seq
}

/// The full prioritised query list used to drive the case study (Table 1): each
/// entry carries the parameterised query text plus the paper's default
/// bindings.
pub fn priority_queries() -> Vec<PriorityQuery> {
    vec![
        PriorityQuery {
            name: "Q1".into(),
            description: "Retrieve all protein identifications for a given protein accession number".into(),
            iql: Q1_IQL.into(),
            params: q1(DEFAULT_ACCESSION),
            priority: 1,
        },
        PriorityQuery {
            name: "Q2".into(),
            description: "Retrieve all protein identifications for a given group of proteins".into(),
            iql: Q2_IQL.into(),
            params: q2(&["ACC00000", "ACC00001", "ACC00002"]),
            priority: 2,
        },
        PriorityQuery {
            name: "Q3".into(),
            description: "Retrieve all protein identifications for a given organism".into(),
            iql: Q3_IQL.into(),
            params: q3(DEFAULT_ORGANISM),
            priority: 3,
        },
        PriorityQuery {
            name: "Q4".into(),
            description: "Retrieve all protein identifications given a certain peptide and their related amino acid information".into(),
            iql: Q4_IQL.into(),
            params: q4(&shared_peptide_sequence(0)),
            priority: 4,
        },
        PriorityQuery {
            name: "Q5".into(),
            description: "Retrieve all identifications of a given protein given a certain peptide".into(),
            iql: Q5_IQL.into(),
            params: q5(&shared_peptide_sequence(0), 1),
            priority: 5,
        },
        PriorityQuery {
            name: "Q6".into(),
            description: "Retrieve all peptide-related information for a given protein identification".into(),
            iql: Q6_IQL.into(),
            params: q6("PEDRO", 1),
            priority: 6,
        },
        PriorityQuery {
            name: "Q7".into(),
            description: "Retrieve all ion related information".into(),
            iql: Q7_IQL.into(),
            params: q7(),
            priority: 7,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for q in priority_queries() {
            iql::parse(&q.iql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{}", q.name, q.iql));
        }
    }

    #[test]
    fn default_bindings_cover_exactly_the_placeholders() {
        for q in priority_queries() {
            let expr = iql::parse(&q.iql).unwrap();
            let placeholders = expr.params();
            let bound: std::collections::BTreeSet<String> =
                q.params.names().map(str::to_string).collect();
            assert_eq!(
                placeholders, bound,
                "{}: placeholder set and default bindings drifted apart",
                q.name
            );
        }
    }

    #[test]
    fn binding_builders_carry_the_parameters() {
        assert_eq!(
            q1("ACC12345").get("accession"),
            Some(&Value::str("ACC12345"))
        );
        assert_eq!(
            q3("Mus musculus").get("organism"),
            Some(&Value::str("Mus musculus"))
        );
        let group = q2(&["A", "B"]);
        let Some(Value::Bag(bag)) = group.get("group") else {
            panic!("group must bind a bag");
        };
        assert_eq!(bag.len(), 2);
        assert!(bag.contains(&Value::str("B")));
        assert_eq!(q5("PEPTIDE", 42).get("protein"), Some(&Value::Int(42)));
        assert_eq!(q6("gpmDB", 3).get("source"), Some(&Value::str("gpmDB")));
        assert!(q7().is_empty());
    }

    #[test]
    fn shared_peptide_sequence_is_deterministic_and_plausible() {
        let a = shared_peptide_sequence(0);
        let b = shared_peptide_sequence(0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert_ne!(a, shared_peptide_sequence(1));
        assert!(a.chars().all(|c| "ACDEFGHIKLMNPQRSTVWY".contains(c)));
    }

    #[test]
    fn priorities_are_ordered_one_to_seven() {
        let qs = priority_queries();
        assert_eq!(qs.len(), 7);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.priority, i + 1);
            assert_eq!(q.name, format!("Q{}", i + 1));
        }
    }
}
