//! The three iSpider source databases: schemas and synthetic data.
//!
//! The table and column structure reproduces the objects referenced by the paper's
//! transformation listings (§2.4 and §3): Pedro's `protein`, `proteinhit`,
//! `peptidehit` and `db_search`; gpmDB's `proseq`, `protein` and `peptide`;
//! PepSeeker's `proteinhit`, `peptidehit` and `iontable` (the last with the ion-series
//! columns that make PepSeeker the ion-information source for query 7). The real
//! databases are not publicly available, so the data is synthetic: a seeded generator
//! plants controlled overlap across the sources — shared protein accession numbers and
//! shared peptide sequences — which is what the priority queries join on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::datagen::{DataGenerator, OverlapConfig};
use relational::schema::{DataType, RelColumn, RelSchema, RelTable};
use relational::Database;

/// Scale of the generated case-study data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyScale {
    /// Number of proteins per source.
    pub proteins: usize,
    /// Number of protein hits (identifications) per source.
    pub protein_hits: usize,
    /// Number of peptide hits per source.
    pub peptide_hits: usize,
    /// Number of search runs per source.
    pub searches: usize,
    /// Fraction of values drawn from the shared cross-source pools.
    pub overlap: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for CaseStudyScale {
    fn default() -> Self {
        CaseStudyScale {
            proteins: 60,
            protein_hits: 120,
            peptide_hits: 200,
            searches: 12,
            overlap: 0.6,
            seed: 42,
        }
    }
}

impl CaseStudyScale {
    /// A scale suitable for fast unit tests.
    pub fn tiny() -> Self {
        CaseStudyScale {
            proteins: 12,
            protein_hits: 24,
            peptide_hits: 40,
            searches: 4,
            overlap: 0.7,
            seed: 7,
        }
    }

    /// A scale factor multiplier, used by benchmarks to sweep data sizes.
    pub fn scaled(factor: usize) -> Self {
        let base = CaseStudyScale::default();
        CaseStudyScale {
            proteins: base.proteins * factor,
            protein_hits: base.protein_hits * factor,
            peptide_hits: base.peptide_hits * factor,
            searches: base.searches * factor.max(1),
            ..base
        }
    }

    fn overlap_config(&self) -> OverlapConfig {
        OverlapConfig {
            shared_pool: (self.proteins / 2).max(4),
            overlap_fraction: self.overlap,
        }
    }
}

/// The Pedro relational schema.
pub fn pedro_schema() -> RelSchema {
    let mut s = RelSchema::new("pedro");
    s.add_table(
        RelTable::new("protein")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("accession_num", DataType::Text))
            .with_column(RelColumn::new("description", DataType::Text))
            .with_column(RelColumn::new("organism", DataType::Text))
            .with_column(RelColumn::nullable("predicted_mass", DataType::Float))
            .with_column(RelColumn::nullable("gene_name", DataType::Text))
            .with_primary_key(["id"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("db_search")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("username", DataType::Text))
            .with_column(RelColumn::new("db_search_parameters", DataType::Text))
            .with_column(RelColumn::new("search_date", DataType::Text))
            .with_primary_key(["id"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("proteinhit")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("protein", DataType::Int))
            .with_column(RelColumn::new("db_search", DataType::Int))
            .with_column(RelColumn::new("all_peptides_matched", DataType::Bool))
            .with_primary_key(["id"])
            .with_foreign_key(&["protein"], "protein", &["id"])
            .with_foreign_key(&["db_search"], "db_search", &["id"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("peptidehit")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("sequence", DataType::Text))
            .with_column(RelColumn::new("score", DataType::Float))
            .with_column(RelColumn::new("probability", DataType::Float))
            .with_column(RelColumn::new("db_search", DataType::Int))
            .with_column(RelColumn::nullable("charge", DataType::Int))
            .with_column(RelColumn::nullable("miss_cleavages", DataType::Int))
            .with_column(RelColumn::nullable("information", DataType::Text))
            .with_primary_key(["id"])
            .with_foreign_key(&["db_search"], "db_search", &["id"]),
    )
    .expect("valid table");
    s
}

/// The gpmDB relational schema.
pub fn gpmdb_schema() -> RelSchema {
    let mut s = RelSchema::new("gpmdb");
    s.add_table(
        RelTable::new("proseq")
            .with_column(RelColumn::new("proseqid", DataType::Int))
            .with_column(RelColumn::new("label", DataType::Text))
            .with_column(RelColumn::nullable("seq", DataType::Text))
            .with_primary_key(["proseqid"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("protein")
            .with_column(RelColumn::new("proid", DataType::Int))
            .with_column(RelColumn::new("proseqid", DataType::Int))
            .with_column(RelColumn::new("expect", DataType::Float))
            .with_column(RelColumn::new("resultid", DataType::Int))
            .with_primary_key(["proid"])
            .with_foreign_key(&["proseqid"], "proseq", &["proseqid"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("peptide")
            .with_column(RelColumn::new("pepid", DataType::Int))
            .with_column(RelColumn::new("seq", DataType::Text))
            .with_column(RelColumn::new("expect", DataType::Float))
            .with_column(RelColumn::new("proid", DataType::Int))
            .with_column(RelColumn::nullable("start_pos", DataType::Int))
            .with_column(RelColumn::nullable("end_pos", DataType::Int))
            .with_primary_key(["pepid"])
            .with_foreign_key(&["proid"], "protein", &["proid"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("result")
            .with_column(RelColumn::new("resultid", DataType::Int))
            .with_column(RelColumn::new("file", DataType::Text))
            .with_column(RelColumn::new("tandem_version", DataType::Text))
            .with_primary_key(["resultid"]),
    )
    .expect("valid table");
    // gpmDB's ion-series information per peptide (concepts Pedro does not have; they
    // only enter the classical integration's GS2 stage).
    let mut ion = RelTable::new("ion")
        .with_column(RelColumn::new("ionid", DataType::Int))
        .with_column(RelColumn::new("pepid", DataType::Int))
        .with_primary_key(["ionid"])
        .with_foreign_key(&["pepid"], "peptide", &["pepid"]);
    for col in GPMDB_ION_COLUMNS {
        ion = ion.with_column(RelColumn::nullable(*col, DataType::Float));
    }
    s.add_table(ion).expect("valid table");
    s
}

/// The ion-series columns of gpmDB's `ion` table (named after the same ion series as
/// PepSeeker's `iontable`, which is what makes them mappable in the classical GS2
/// stage).
pub const GPMDB_ION_COLUMNS: &[&str] = &[
    "immonium",
    "a_ion",
    "a_star",
    "a_zero",
    "b_ion",
    "b_star",
    "b_zero",
    "b_plusplus",
    "c_ion",
    "x_ion",
    "y_ion",
    "y_star",
    "y_zero",
    "y_plusplus",
    "z_ion",
    "z_plus_one",
    "z_plus_two",
    "d_ion",
    "v_ion",
    "w_ion",
];

/// The PepSeeker relational schema.
pub fn pepseeker_schema() -> RelSchema {
    let mut s = RelSchema::new("pepseeker");
    s.add_table(
        RelTable::new("proteinhit")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("ProteinID", DataType::Text))
            .with_column(RelColumn::new("proteinid", DataType::Int))
            .with_column(RelColumn::new("fileparameters", DataType::Int))
            .with_column(RelColumn::new("hitnumber", DataType::Int))
            .with_column(RelColumn::nullable("mass", DataType::Float))
            .with_primary_key(["id"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("peptidehit")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("pepseq", DataType::Text))
            .with_column(RelColumn::new("score", DataType::Float))
            .with_column(RelColumn::new("expect", DataType::Float))
            .with_column(RelColumn::new("fileparameters", DataType::Int))
            .with_column(RelColumn::nullable("charge", DataType::Int))
            .with_column(RelColumn::nullable("misscleave", DataType::Int))
            .with_primary_key(["id"]),
    )
    .expect("valid table");
    s.add_table(
        RelTable::new("fileparameters")
            .with_column(RelColumn::new("id", DataType::Int))
            .with_column(RelColumn::new("filename", DataType::Text))
            .with_column(RelColumn::new("database", DataType::Text))
            .with_column(RelColumn::new("instrument", DataType::Text))
            .with_primary_key(["id"]),
    )
    .expect("valid table");
    // The ion-series table that makes PepSeeker the source of "ion related
    // information" (priority query 7).
    let mut iontable = RelTable::new("iontable")
        .with_column(RelColumn::new("id", DataType::Int))
        .with_column(RelColumn::new("peptidehit", DataType::Int))
        .with_primary_key(["id"])
        .with_foreign_key(&["peptidehit"], "peptidehit", &["id"]);
    for ion in ION_COLUMNS {
        iontable = iontable.with_column(RelColumn::nullable(*ion, DataType::Float));
    }
    s.add_table(iontable).expect("valid table");
    s
}

/// The ion-series columns of PepSeeker's `iontable`.
pub const ION_COLUMNS: &[&str] = &[
    "immonium",
    "a_ion",
    "a_star",
    "a_zero",
    "b_ion",
    "b_star",
    "b_zero",
    "b_plusplus",
    "c_ion",
    "x_ion",
    "y_ion",
    "y_star",
    "y_zero",
    "y_plusplus",
    "z_ion",
    "z_plus_one",
    "z_plus_two",
    "d_ion",
    "v_ion",
    "w_ion",
];

/// Generate the Pedro database at the given scale.
pub fn generate_pedro(scale: &CaseStudyScale) -> Database {
    let mut db = Database::new(pedro_schema());
    let mut generator = DataGenerator::new("pedro", scale.seed, scale.overlap_config());
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x5050);

    for i in 0..scale.searches {
        db.insert(
            "db_search",
            vec![
                (i as i64).into(),
                format!("analyst{}", i % 5).into(),
                "trypsin/2 missed cleavages".into(),
                format!("2013-0{}-{:02}", 1 + i % 9, 1 + i % 27).into(),
            ],
        )
        .expect("insert db_search");
    }
    for i in 0..scale.proteins {
        db.insert(
            "protein",
            vec![
                (i as i64).into(),
                generator.accession().into(),
                generator.description().into(),
                generator.organism().into(),
                iql::Value::Float((20_000.0 + rng.gen::<f64>() * 80_000.0).round()),
                if generator.flag(0.7) {
                    format!("GENE{}", rng.gen_range(1..500)).into()
                } else {
                    iql::Value::Null
                },
            ],
        )
        .expect("insert protein");
    }
    for i in 0..scale.protein_hits {
        db.insert(
            "proteinhit",
            vec![
                (i as i64).into(),
                (generator.int_in(0, scale.proteins as i64)).into(),
                (generator.int_in(0, scale.searches as i64)).into(),
                generator.flag(0.5).into(),
            ],
        )
        .expect("insert proteinhit");
    }
    for i in 0..scale.peptide_hits {
        db.insert(
            "peptidehit",
            vec![
                (i as i64).into(),
                generator.peptide_sequence().into(),
                iql::Value::Float(generator.score()),
                iql::Value::Float(generator.probability()),
                (generator.int_in(0, scale.searches as i64)).into(),
                (generator.int_in(1, 5)).into(),
                (generator.int_in(0, 3)).into(),
                if generator.flag(0.3) {
                    "manual validation".into()
                } else {
                    iql::Value::Null
                },
            ],
        )
        .expect("insert peptidehit");
    }
    db
}

/// Generate the gpmDB database at the given scale.
pub fn generate_gpmdb(scale: &CaseStudyScale) -> Database {
    let mut db = Database::new(gpmdb_schema());
    let mut generator =
        DataGenerator::new("gpmdb", scale.seed.wrapping_add(1), scale.overlap_config());

    for i in 0..scale.searches {
        db.insert(
            "result",
            vec![
                (i as i64).into(),
                format!("run_{i}.xml").into(),
                "2013.09.01".into(),
            ],
        )
        .expect("insert result");
    }
    for i in 0..scale.proteins {
        db.insert(
            "proseq",
            vec![
                (i as i64).into(),
                generator.accession().into(),
                if generator.flag(0.5) {
                    generator.peptide_sequence().into()
                } else {
                    iql::Value::Null
                },
            ],
        )
        .expect("insert proseq");
    }
    for i in 0..scale.protein_hits {
        db.insert(
            "protein",
            vec![
                (i as i64).into(),
                (generator.int_in(0, scale.proteins as i64)).into(),
                iql::Value::Float(generator.probability()),
                (generator.int_in(0, scale.searches as i64)).into(),
            ],
        )
        .expect("insert protein");
    }
    for i in 0..scale.peptide_hits {
        db.insert(
            "peptide",
            vec![
                (i as i64).into(),
                generator.peptide_sequence().into(),
                iql::Value::Float(generator.probability()),
                (generator.int_in(0, scale.protein_hits as i64)).into(),
                (generator.int_in(1, 300)).into(),
                (generator.int_in(300, 600)).into(),
            ],
        )
        .expect("insert peptide");
    }
    let mut ion_rng = StdRng::seed_from_u64(scale.seed ^ 0x10);
    for i in 0..scale.peptide_hits {
        let mut row: Vec<iql::Value> = vec![(i as i64).into(), (i as i64).into()];
        for _ in GPMDB_ION_COLUMNS {
            row.push(if ion_rng.gen_bool(0.3) {
                iql::Value::Float((ion_rng.gen::<f64>() * 2000.0).round() / 10.0)
            } else {
                iql::Value::Null
            });
        }
        db.insert("ion", row).expect("insert ion");
    }
    db
}

/// Generate the PepSeeker database at the given scale.
pub fn generate_pepseeker(scale: &CaseStudyScale) -> Database {
    let mut db = Database::new(pepseeker_schema());
    let mut generator = DataGenerator::new(
        "pepseeker",
        scale.seed.wrapping_add(2),
        scale.overlap_config(),
    );
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xBEEF);

    for i in 0..scale.searches {
        db.insert(
            "fileparameters",
            vec![
                (i as i64).into(),
                format!("spectrum_{i}.mgf").into(),
                "SwissProt".into(),
                "MALDI-TOF".into(),
            ],
        )
        .expect("insert fileparameters");
    }
    for i in 0..scale.protein_hits {
        db.insert(
            "proteinhit",
            vec![
                (i as i64).into(),
                generator.accession().into(),
                (generator.int_in(0, scale.proteins as i64)).into(),
                (generator.int_in(0, scale.searches as i64)).into(),
                (generator.int_in(1, 20)).into(),
                iql::Value::Float((10_000.0 + rng.gen::<f64>() * 90_000.0).round()),
            ],
        )
        .expect("insert proteinhit");
    }
    for i in 0..scale.peptide_hits {
        db.insert(
            "peptidehit",
            vec![
                (i as i64).into(),
                generator.peptide_sequence().into(),
                iql::Value::Float(generator.score()),
                iql::Value::Float(generator.probability()),
                (generator.int_in(0, scale.searches as i64)).into(),
                (generator.int_in(1, 4)).into(),
                (generator.int_in(0, 3)).into(),
            ],
        )
        .expect("insert peptidehit");
    }
    // One ion row per peptide hit, with a random subset of the ion series populated.
    for i in 0..scale.peptide_hits {
        let mut row: Vec<iql::Value> = vec![(i as i64).into(), (i as i64).into()];
        for _ in ION_COLUMNS {
            row.push(if rng.gen_bool(0.4) {
                iql::Value::Float((rng.gen::<f64>() * 2000.0).round() / 10.0)
            } else {
                iql::Value::Null
            });
        }
        db.insert("iontable", row).expect("insert iontable");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql::ast::SchemeRef;
    use iql::eval::ExtentProvider;

    #[test]
    fn schemas_validate_and_contain_the_paper_objects() {
        for (schema, objects) in [
            (
                pedro_schema(),
                vec!["protein", "proteinhit", "peptidehit", "db_search"],
            ),
            (gpmdb_schema(), vec!["proseq", "protein", "peptide"]),
            (
                pepseeker_schema(),
                vec!["proteinhit", "peptidehit", "iontable"],
            ),
        ] {
            schema.validate().expect("schema validates");
            for t in objects {
                assert!(schema.table(t).is_some(), "{} missing {t}", schema.name);
            }
        }
        // Specific columns referenced by the paper's transformations.
        assert!(pedro_schema()
            .table("protein")
            .unwrap()
            .column("accession_num")
            .is_some());
        assert!(gpmdb_schema()
            .table("proseq")
            .unwrap()
            .column("label")
            .is_some());
        assert!(pepseeker_schema()
            .table("peptidehit")
            .unwrap()
            .column("pepseq")
            .is_some());
        assert!(pepseeker_schema()
            .table("proteinhit")
            .unwrap()
            .column("fileparameters")
            .is_some());
    }

    #[test]
    fn generated_databases_have_requested_cardinalities() {
        let scale = CaseStudyScale::tiny();
        let pedro = generate_pedro(&scale);
        let gpmdb = generate_gpmdb(&scale);
        let pepseeker = generate_pepseeker(&scale);
        assert_eq!(pedro.row_count("protein"), scale.proteins);
        assert_eq!(pedro.row_count("peptidehit"), scale.peptide_hits);
        assert_eq!(gpmdb.row_count("proseq"), scale.proteins);
        assert_eq!(pepseeker.row_count("iontable"), scale.peptide_hits);
    }

    #[test]
    fn generation_is_deterministic() {
        let scale = CaseStudyScale::tiny();
        let a = generate_pedro(&scale);
        let b = generate_pedro(&scale);
        assert_eq!(
            a.column_values("protein", "accession_num").unwrap(),
            b.column_values("protein", "accession_num").unwrap()
        );
    }

    #[test]
    fn cross_source_accession_overlap_exists() {
        let scale = CaseStudyScale::tiny();
        let pedro = generate_pedro(&scale);
        let gpmdb = generate_gpmdb(&scale);
        let pedro_accs: std::collections::BTreeSet<String> = pedro
            .column_values("protein", "accession_num")
            .unwrap()
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        let gpmdb_accs: std::collections::BTreeSet<String> = gpmdb
            .column_values("proseq", "label")
            .unwrap()
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        assert!(
            pedro_accs.intersection(&gpmdb_accs).count() > 0,
            "no shared accession numbers — the case-study joins would all be empty"
        );
    }

    #[test]
    fn cross_source_peptide_overlap_exists() {
        let scale = CaseStudyScale::tiny();
        let pedro = generate_pedro(&scale);
        let pepseeker = generate_pepseeker(&scale);
        let a: std::collections::BTreeSet<String> = pedro
            .column_values("peptidehit", "sequence")
            .unwrap()
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        let b: std::collections::BTreeSet<String> = pepseeker
            .column_values("peptidehit", "pepseq")
            .unwrap()
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        assert!(a.intersection(&b).count() > 0);
    }

    #[test]
    fn wrapper_extents_follow_paper_conventions() {
        let scale = CaseStudyScale::tiny();
        let pedro = generate_pedro(&scale);
        let keys = pedro.extent(&SchemeRef::table("protein")).unwrap();
        assert_eq!(keys.len(), scale.proteins);
        let pairs = pedro
            .extent(&SchemeRef::column("protein", "accession_num"))
            .unwrap();
        assert_eq!(pairs.len(), scale.proteins);
    }
}
