//! End-to-end case-study drivers.
//!
//! [`run_case_study`] performs the full query-driven intersection-schema integration
//! on synthetic data (the paper's §3), evaluating each priority query as soon as it
//! becomes answerable, and [`compare_methodologies`] produces the head-to-head effort
//! comparison against the reconstructed classical integration (the paper's headline
//! 26-vs-95 result).

use crate::classical_integration::{run_classical_integration, ClassicalRun};
use crate::intersection_integration::all_iterations;
use crate::queries::priority_queries;
use crate::sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};
use dataspace_core::dataspace::{Dataspace, DataspaceConfig};
use dataspace_core::error::CoreError;
use dataspace_core::metrics::{MethodologyComparison, PayAsYouGoPoint};
use dataspace_core::workflow::{IntegrationSession, IterationOutcome};
use serde::Serialize;

/// The answer to one priority query in the final global schema.
#[derive(Debug, Clone, Serialize)]
pub struct QueryAnswer {
    /// Query name (`Q1`…`Q7`).
    pub name: String,
    /// Description from the paper's priority list.
    pub description: String,
    /// Whether the query was answerable at the end of the integration.
    pub answerable: bool,
    /// Number of result tuples (0 when not answerable).
    pub result_count: usize,
    /// The iteration after which the query first became answerable (0 = federation).
    pub answerable_after_iteration: Option<usize>,
}

/// The full outcome of the intersection-schema case study.
#[derive(Debug)]
pub struct CaseStudyRun {
    /// The integration session (dataspace, history, curve).
    pub session: IntegrationSession,
    /// Iteration outcomes, in order (federation first).
    pub outcomes: Vec<IterationOutcome>,
    /// The final answers to the seven priority queries.
    pub answers: Vec<QueryAnswer>,
    /// Total manually-defined transformations.
    pub total_manual_transformations: usize,
    /// Per-iteration manual transformation counts (excluding the federation step).
    pub per_iteration_manual: Vec<usize>,
}

/// Run the query-driven intersection-schema integration at the given data scale.
pub fn run_case_study(scale: &CaseStudyScale) -> Result<CaseStudyRun, CoreError> {
    // Keep covered source objects in the global schema so that federated-schema
    // queries (Q7) remain answerable throughout; this mirrors the paper's option of
    // not dropping redundant objects.
    let dataspace = Dataspace::with_config(DataspaceConfig {
        drop_redundant: false,
        ..Default::default()
    });
    let mut session = IntegrationSession::with_dataspace(dataspace);
    session.add_source(generate_pedro(scale))?;
    session.add_source(generate_gpmdb(scale))?;
    session.add_source(generate_pepseeker(scale))?;
    session.set_priority_queries(priority_queries());

    let mut outcomes = Vec::new();
    outcomes.push(session.federate()?);
    for (_query, spec) in all_iterations()? {
        outcomes.push(session.iterate(spec)?);
    }

    // Final answers: the seven priority queries are independent, so they go
    // through the batched entry point in one call (the pay-as-you-go re-run
    // shape the prepared API is built for), each executed under its default
    // parameter bindings. A per-item error simply means the query is not
    // answerable yet.
    let queries = priority_queries();
    let batch: Vec<(&str, &iql::Params)> = queries
        .iter()
        .map(|q| (q.iql.as_str(), &q.params))
        .collect();
    let results = session.dataspace().query_all_bound(&batch);
    let mut answers = Vec::new();
    for (q, result) in queries.into_iter().zip(results) {
        let (answerable, result_count) = match result {
            Ok(bag) => (true, bag.len()),
            Err(_) => (false, 0),
        };
        let answerable_after_iteration = outcomes
            .iter()
            .position(|o| o.progress.answerable_queries.contains(&q.name));
        answers.push(QueryAnswer {
            name: q.name,
            description: q.description,
            answerable,
            result_count,
            answerable_after_iteration,
        });
    }

    let per_iteration_manual: Vec<usize> = outcomes
        .iter()
        .skip(1)
        .map(|o| o.effort.manual_transformations)
        .collect();
    let total_manual_transformations = per_iteration_manual.iter().sum();

    Ok(CaseStudyRun {
        session,
        outcomes,
        answers,
        total_manual_transformations,
        per_iteration_manual,
    })
}

/// Run both methodologies and produce the paper's effort comparison.
pub fn compare_methodologies(
    scale: &CaseStudyScale,
) -> Result<(CaseStudyRun, ClassicalRun, MethodologyComparison), CoreError> {
    let intersection = run_case_study(scale)?;
    let classical = run_classical_integration()?;
    let comparison = MethodologyComparison {
        intersection_manual: intersection.total_manual_transformations,
        intersection_breakdown: intersection.per_iteration_manual.clone(),
        classical_nontrivial: classical.total_nontrivial,
        classical_breakdown: classical
            .stages
            .iter()
            .map(|s| s.nontrivial_total)
            .collect(),
        queries_supported: intersection.answers.iter().filter(|a| a.answerable).count(),
    };
    Ok((intersection, classical, comparison))
}

/// Render the Table-1-style report: one row per priority query with its answer size
/// and the iteration at which it became answerable.
pub fn render_table1(run: &CaseStudyRun) -> String {
    let mut out = String::from("query  answerable-after-iteration  result-tuples  description\n");
    for a in &run.answers {
        out.push_str(&format!(
            "{:<6} {:<28} {:<14} {}\n",
            a.name,
            a.answerable_after_iteration
                .map(|i| i.to_string())
                .unwrap_or_else(|| "never".into()),
            a.result_count,
            a.description
        ));
    }
    out
}

/// Render the pay-as-you-go curve of a case-study run.
pub fn render_curve(points: &[PayAsYouGoPoint], total_queries: usize) -> String {
    let mut out = String::from("iteration  cumulative-manual  answerable\n");
    for p in points {
        out.push_str(&format!(
            "{:<10} {:<18} {}/{}\n",
            format!("{} ({})", p.iteration, p.label),
            p.cumulative_manual,
            p.answerable_count(),
            total_queries
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical_integration::PAPER_TOTAL_NONTRIVIAL;
    use crate::intersection_integration::{PAPER_ITERATION_COUNTS, PAPER_TOTAL_MANUAL};

    #[test]
    fn case_study_reproduces_the_paper_effort_counts() {
        let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
        assert_eq!(run.per_iteration_manual, PAPER_ITERATION_COUNTS);
        assert_eq!(run.total_manual_transformations, PAPER_TOTAL_MANUAL);
    }

    #[test]
    fn all_seven_queries_become_answerable() {
        let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
        for a in &run.answers {
            assert!(a.answerable, "{} not answerable", a.name);
        }
        // Q7 needs only the federation (iteration 0); Q1 needs iteration 1.
        let q7 = run.answers.iter().find(|a| a.name == "Q7").unwrap();
        assert_eq!(q7.answerable_after_iteration, Some(0));
        let q1 = run.answers.iter().find(|a| a.name == "Q1").unwrap();
        assert_eq!(q1.answerable_after_iteration, Some(1));
        let q4 = run.answers.iter().find(|a| a.name == "Q4").unwrap();
        assert!(q4.answerable_after_iteration >= Some(4));
    }

    #[test]
    fn organism_and_ion_queries_return_data() {
        let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
        let q3 = run.answers.iter().find(|a| a.name == "Q3").unwrap();
        assert!(q3.result_count > 0, "Q3 returned no tuples");
        let q7 = run.answers.iter().find(|a| a.name == "Q7").unwrap();
        assert!(q7.result_count > 0, "Q7 returned no tuples");
    }

    #[test]
    fn comparison_matches_the_paper_headline() {
        let (_run, classical, cmp) = compare_methodologies(&CaseStudyScale::tiny()).unwrap();
        assert_eq!(cmp.intersection_manual, PAPER_TOTAL_MANUAL);
        assert_eq!(cmp.classical_nontrivial, PAPER_TOTAL_NONTRIVIAL);
        assert!(cmp.effort_ratio() > 3.0 && cmp.effort_ratio() < 4.0);
        assert_eq!(classical.stages.len(), 3);
        assert_eq!(cmp.queries_supported, 7);
    }

    #[test]
    fn reports_render() {
        let run = run_case_study(&CaseStudyScale::tiny()).unwrap();
        let table1 = render_table1(&run);
        assert!(table1.contains("Q1"));
        assert!(table1.contains("Q7"));
        let curve = render_curve(&run.session.pay_as_you_go_curve(), 7);
        assert!(curve.contains("federation"));
        assert!(run.session.render_curve().contains("I4_hits"));
    }
}
