//! # proteomics — the iSpider case study (§3 of the paper)
//!
//! The paper evaluates the intersection-schema methodology by re-examining the iSpider
//! proteomics integration of three relational sources — **Pedro**, **gpmDB** and
//! **PepSeeker** — under a query-driven, pay-as-you-go integration, and comparing the
//! number of manually-defined transformations against the original classical
//! integration.
//!
//! This crate provides everything needed to re-run that case study on synthetic data:
//!
//! * [`sources`] — the three source schemas (table/column structure as used by the
//!   paper's transformations) and seeded data generators that plant cross-source
//!   overlap (shared accession numbers, shared peptide sequences, aligned search ids);
//! * [`queries`] — the seven priority queries of §3 expressed in IQL over the global
//!   schema (Table 1);
//! * [`intersection_integration`] — the query-driven intersection-schema integration:
//!   one iteration per priority query that needs new concepts, with the paper's
//!   manual-transformation counts (6 + 1 + 1 + 15 + 0 + 3 + 0 = 26);
//! * [`classical_integration`] — the classical (up-front, union-compatible) baseline
//!   reconstructed to the paper's reported stage counts (19 + 35 + 41 = 95 non-trivial
//!   transformations across GS1/GS2/GS3);
//! * [`case_study`] — drivers that run both integrations, evaluate the queries and
//!   produce the comparison reports used by the benchmark harness and the examples.

pub mod case_study;
pub mod classical_integration;
pub mod intersection_integration;
pub mod queries;
pub mod sources;

pub use case_study::{run_case_study, CaseStudyRun};
pub use classical_integration::{run_classical_integration, ClassicalRun};
pub use sources::{generate_gpmdb, generate_pedro, generate_pepseeker, CaseStudyScale};
