//! Frame layer: length-prefixed, checksummed envelopes on a byte stream.
//!
//! Every message on the wire — request, response or server push — travels in
//! one frame, reusing the commit log's record-framing discipline
//! (`relational::wal`): a little-endian length, a FNV-1a checksum over the
//! payload, then the payload itself. The payload opens with a protocol
//! version byte, the request id the frame belongs to, and the opcode that
//! selects the body's shape:
//!
//! ```text
//! frame   := [u32 LE payload length] [u32 LE FNV-1a checksum of payload] [payload]
//! payload := [u8 version = 1] [u64 LE request id] [u8 opcode] [body]
//! ```
//!
//! Request ids are assigned by the client (monotonically increasing, starting
//! at 1) and echoed by the server on every frame answering that request —
//! including every chunk of a streamed result, which is stamped with the id of
//! the request that *opened* the stream. Id **0 is reserved for frames the
//! server originates**: subscription pushes and pre-session errors (e.g. an
//! admission rejection before any request was read).
//!
//! A frame whose declared length exceeds [`MAX_FRAME_BYTES`] is rejected
//! without buffering it (the length is read before the payload, so a hostile
//! 4 GiB declaration costs 8 bytes, not 4 GiB). A checksum mismatch or a
//! malformed payload head means the stream has lost framing — the peer closes
//! the connection, because no later byte boundary can be trusted.

use std::io::{self, Read, Write};

/// Protocol version carried in every payload head.
pub const WIRE_VERSION: u8 = 1;

/// Hard ceiling on one frame's payload. Large results never need frames near
/// this: the server streams bag results in bounded chunks (see
/// `server::ServerConfig::chunk_rows`), so the cap only stops hostile or
/// corrupt length declarations from driving allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Frame header size on the wire: length + checksum.
const FRAME_HEADER: usize = 8;

/// Payload head size: version byte + request id + opcode.
const PAYLOAD_HEAD: usize = 1 + 8 + 1;

/// The request id the server uses for frames it originates (subscription
/// pushes, pre-session admission errors).
pub const SERVER_ORIGIN_ID: u64 = 0;

/// One decoded frame: the request id it belongs to, its opcode, and the
/// opcode-specific body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The request this frame belongs to ([`SERVER_ORIGIN_ID`] for pushes).
    pub request_id: u64,
    /// Raw opcode byte (see `proto::ReqOp` / `proto::RespOp`).
    pub opcode: u8,
    /// Opcode-specific body.
    pub body: Vec<u8>,
}

/// Why a byte stream stopped yielding frames.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    TooLarge { declared: usize },
    /// Checksum mismatch, impossible length, or a truncated payload head:
    /// the stream has lost framing and cannot be resynchronised.
    Malformed(String),
    /// The version byte was not [`WIRE_VERSION`].
    Version { got: u8 },
    /// An I/O error other than the non-blocking/timeout kinds.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { declared } => write!(
                f,
                "declared frame payload of {declared} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            ),
            FrameError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            FrameError::Version { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (expected {WIRE_VERSION})"
                )
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// 32-bit FNV-1a — the same corruption check the commit log uses.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encode one frame ready for a single `write_all`.
pub fn encode_frame(request_id: u64, opcode: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAYLOAD_HEAD + body.len());
    payload.push(WIRE_VERSION);
    payload.extend_from_slice(&request_id.to_le_bytes());
    payload.push(opcode);
    payload.extend_from_slice(body);
    let mut framed = Vec::with_capacity(FRAME_HEADER + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Write one frame to `w`, returning the bytes put on the wire.
pub fn write_frame(
    w: &mut impl Write,
    request_id: u64,
    opcode: u8,
    body: &[u8],
) -> io::Result<u64> {
    let framed = encode_frame(request_id, opcode, body);
    w.write_all(&framed)?;
    Ok(framed.len() as u64)
}

/// An incremental frame decoder over a blocking `Read` with a read timeout.
///
/// The reader owns a buffer that survives timeouts: a read that returns
/// `WouldBlock`/`TimedOut` mid-frame keeps the partial bytes, and the next
/// [`FrameReader::poll`] resumes where it left off — the caller can interleave
/// other work (a server session drains subscription pushes between polls)
/// without ever losing frame alignment.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Cumulative payload+header bytes consumed off the wire.
    bytes_in: u64,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Cumulative bytes consumed as completed frames.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Try to produce the next frame. `Ok(None)` means no complete frame is
    /// buffered yet and the underlying read timed out (or would block) — call
    /// again later. `Err(FrameError::Closed)` is a clean EOF **between**
    /// frames; an EOF mid-frame is [`FrameError::Malformed`] (the peer died
    /// mid-write).
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
        loop {
            if let Some(frame) = self.try_decode()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 8192];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Err(FrameError::Closed)
                    } else {
                        Err(FrameError::Malformed(format!(
                            "connection closed mid-frame with {} buffered bytes",
                            self.buf.len()
                        )))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
    }

    /// Decode one frame from the front of the buffer, if a whole one is there.
    fn try_decode(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge { declared: len });
        }
        if len < PAYLOAD_HEAD {
            return Err(FrameError::Malformed(format!(
                "declared payload of {len} bytes is shorter than the {PAYLOAD_HEAD}-byte head"
            )));
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let checksum = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        let payload = &self.buf[FRAME_HEADER..FRAME_HEADER + len];
        if fnv1a(payload) != checksum {
            return Err(FrameError::Malformed("payload checksum mismatch".into()));
        }
        let version = payload[0];
        if version != WIRE_VERSION {
            return Err(FrameError::Version { got: version });
        }
        let request_id = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let opcode = payload[9];
        let body = payload[PAYLOAD_HEAD..].to_vec();
        self.buf.drain(..FRAME_HEADER + len);
        self.bytes_in += (FRAME_HEADER + len) as u64;
        Ok(Some(Frame {
            request_id,
            opcode,
            body,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `bytes` to a reader in `chunk`-sized slices, collecting frames.
    fn drip(bytes: &[u8], chunk: usize) -> Result<Vec<Frame>, FrameError> {
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            let mut cursor = io::Cursor::new(piece);
            loop {
                match reader.poll(&mut cursor) {
                    Ok(Some(frame)) => frames.push(frame),
                    // Cursor EOF between frames mirrors a clean close; keep
                    // feeding the next piece.
                    Ok(None) | Err(FrameError::Closed) => break,
                    // Mid-frame EOF on a cursor just means "need more bytes".
                    Err(FrameError::Malformed(m)) if m.contains("mid-frame") => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(frames)
    }

    #[test]
    fn frames_round_trip_at_any_chunking() {
        let mut bytes = encode_frame(1, 0x01, b"hello");
        bytes.extend(encode_frame(2, 0x02, &[]));
        bytes.extend(encode_frame(u64::MAX, 0xff, &vec![7u8; 3000]));
        for chunk in [1, 2, 7, 64, 4096, bytes.len()] {
            let frames = drip(&bytes, chunk).expect("clean frames");
            assert_eq!(frames.len(), 3, "chunk size {chunk}");
            assert_eq!(frames[0].request_id, 1);
            assert_eq!(frames[0].body, b"hello");
            assert_eq!(frames[1].opcode, 0x02);
            assert_eq!(frames[2].body.len(), 3000);
        }
    }

    #[test]
    fn corrupt_checksum_is_malformed() {
        let mut bytes = encode_frame(1, 0x01, b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut reader = FrameReader::new();
        let err = reader
            .poll(&mut io::Cursor::new(&bytes))
            .expect_err("corruption detected");
        assert!(matches!(err, FrameError::Malformed(_)));
    }

    #[test]
    fn oversized_declaration_is_rejected_before_buffering() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new();
        let err = reader
            .poll(&mut io::Cursor::new(&bytes))
            .expect_err("rejected");
        assert!(matches!(err, FrameError::TooLarge { .. }));
    }

    #[test]
    fn undersized_declaration_is_malformed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes()); // < payload head
        bytes.extend_from_slice(&fnv1a(b"abc").to_le_bytes());
        bytes.extend_from_slice(b"abc");
        let mut reader = FrameReader::new();
        let err = reader
            .poll(&mut io::Cursor::new(&bytes))
            .expect_err("rejected");
        assert!(matches!(err, FrameError::Malformed(_)));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = encode_frame(9, 0x05, b"x");
        bytes[8] = 42; // version byte sits right after the 8-byte header
                       // Re-stamp the checksum so only the version is wrong.
        let payload_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[8..8 + payload_len]);
        bytes[4..8].copy_from_slice(&checksum.to_le_bytes());
        let mut reader = FrameReader::new();
        let err = reader
            .poll(&mut io::Cursor::new(&bytes))
            .expect_err("rejected");
        assert_eq!(err, FrameError::Version { got: 42 });
    }

    #[test]
    fn eof_between_frames_is_clean_mid_frame_is_not() {
        let bytes = encode_frame(1, 0x01, b"whole");
        let mut reader = FrameReader::new();
        let mut cursor = io::Cursor::new(&bytes[..]);
        assert!(reader.poll(&mut cursor).unwrap().is_some());
        assert_eq!(reader.poll(&mut cursor), Err(FrameError::Closed));

        let mut reader = FrameReader::new();
        let mut cursor = io::Cursor::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(
            reader.poll(&mut cursor),
            Err(FrameError::Malformed(_))
        ));
    }
}
