//! Body codec: primitives and [`iql::Value`] trees in the wire's byte layout.
//!
//! The scalar tags deliberately match the commit log's record encoding
//! (`relational::wal`), extended with the collection variants query results
//! need — a result row can be a tuple of scalars, and whole bags nest inside
//! values returned by aggregate queries:
//!
//! ```text
//! value := 0x00                         -- Null
//!        | 0x01 [u8 0|1]                -- Bool
//!        | 0x02 [i64 LE]                -- Int
//!        | 0x03 [u64 LE float bits]     -- Float
//!        | 0x04 [str]                   -- Str
//!        | 0x05 [u32 LE arity] value*   -- Tuple
//!        | 0x06 [u32 LE len] value*     -- Bag
//!        | 0x07                         -- Void
//!        | 0x08                         -- Any
//! str   := [u32 LE byte length] [UTF-8 bytes]
//! ```
//!
//! Every decoder is bounds-checked and returns [`CodecError`] instead of
//! panicking: a malformed body must surface as a typed protocol error, never
//! take a session down.

use iql::value::{Bag, Value};

/// A body failed to decode (truncated, bad tag, bad UTF-8, trailing bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn fail<T>(detail: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(detail.into()))
}

/// A cursor over a body slice; all decode functions advance it.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start decoding `bytes` from the front.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Error unless every byte was consumed — trailing garbage inside a
    /// checksummed frame still means a protocol bug or corruption.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            fail(format!(
                "{} trailing bytes after a complete body",
                self.bytes.len() - self.pos
            ))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        match self.bytes.get(self.pos..self.pos.saturating_add(n)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => fail(format!(
                "truncated body: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )),
        }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub fn get_u8(c: &mut Cursor<'_>) -> Result<u8, CodecError> {
    Ok(c.take(1)?[0])
}

pub fn get_u32(c: &mut Cursor<'_>) -> Result<u32, CodecError> {
    Ok(u32::from_le_bytes(c.take(4)?.try_into().expect("4 bytes")))
}

pub fn get_u64(c: &mut Cursor<'_>) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(c.take(8)?.try_into().expect("8 bytes")))
}

pub fn get_str(c: &mut Cursor<'_>) -> Result<String, CodecError> {
    let len = get_u32(c)? as usize;
    if len > c.remaining() {
        return fail(format!(
            "string length {len} exceeds the {} remaining body bytes",
            c.remaining()
        ));
    }
    match std::str::from_utf8(c.take(len)?) {
        Ok(s) => Ok(s.to_string()),
        Err(e) => fail(format!("string is not UTF-8: {e}")),
    }
}

/// Encode one value tree.
pub fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => put_u8(out, 0x00),
        Value::Bool(b) => {
            put_u8(out, 0x01);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, 0x02);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            put_u8(out, 0x03);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            put_u8(out, 0x04);
            put_str(out, s);
        }
        Value::Tuple(items) => {
            put_u8(out, 0x05);
            put_u32(out, items.len() as u32);
            for item in items.iter() {
                put_value(out, item);
            }
        }
        Value::Bag(bag) => {
            put_u8(out, 0x06);
            put_u32(out, bag.len() as u32);
            for item in bag.iter() {
                put_value(out, item);
            }
        }
        Value::Void => put_u8(out, 0x07),
        Value::Any => put_u8(out, 0x08),
    }
}

/// Decode one value tree.
pub fn get_value(c: &mut Cursor<'_>) -> Result<Value, CodecError> {
    Ok(match get_u8(c)? {
        0x00 => Value::Null,
        0x01 => Value::Bool(get_u8(c)? != 0),
        0x02 => Value::Int(i64::from_le_bytes(c.take(8)?.try_into().expect("8 bytes"))),
        0x03 => Value::Float(f64::from_bits(get_u64(c)?)),
        0x04 => Value::Str(get_str(c)?.into()),
        0x05 => {
            let arity = get_u32(c)? as usize;
            if arity > c.remaining() {
                return fail(format!("tuple arity {arity} exceeds the remaining body"));
            }
            let mut items = Vec::with_capacity(arity);
            for _ in 0..arity {
                items.push(get_value(c)?);
            }
            Value::Tuple(items.into())
        }
        0x06 => {
            let len = get_u32(c)? as usize;
            if len > c.remaining() {
                return fail(format!("bag length {len} exceeds the remaining body"));
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(get_value(c)?);
            }
            Value::Bag(Bag::from_values(items))
        }
        0x07 => Value::Void,
        0x08 => Value::Any,
        tag => return fail(format!("unknown value tag 0x{tag:02x}")),
    })
}

/// Encode a list of values (`[u32 count] value*`).
pub fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_value(out, v);
    }
}

/// Decode a list of values.
pub fn get_values(c: &mut Cursor<'_>) -> Result<Vec<Value>, CodecError> {
    let count = get_u32(c)? as usize;
    if count > c.remaining() {
        return fail(format!("value count {count} exceeds the remaining body"));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(get_value(c)?);
    }
    Ok(values)
}

/// Encode a parameter binding set as sorted `(name, value)` pairs.
pub fn put_params(out: &mut Vec<u8>, params: &iql::Params) {
    let mut names: Vec<&str> = params.names().collect();
    names.sort_unstable();
    put_u32(out, names.len() as u32);
    for name in names {
        put_str(out, name);
        put_value(out, params.get(name).expect("name came from the set"));
    }
}

/// Decode a parameter binding set.
pub fn get_params(c: &mut Cursor<'_>) -> Result<iql::Params, CodecError> {
    let count = get_u32(c)? as usize;
    if count > c.remaining() {
        return fail(format!("param count {count} exceeds the remaining body"));
    }
    let mut params = iql::Params::new();
    for _ in 0..count {
        let name = get_str(c)?;
        let value = get_value(c)?;
        params.set(name, value);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Depth-bounded recursive value strategy (the vendored proptest shim has
    /// no `prop_recursive`, so the recursion is written out directly).
    struct ArbValue {
        depth: usize,
    }

    impl Strategy for ArbValue {
        type Value = Value;
        fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Value {
            let max_pick = if self.depth == 0 { 7 } else { 9 };
            match rng.usize_in(0..max_pick) {
                0 => Value::Null,
                1 => Value::Void,
                2 => Value::Any,
                3 => Value::Bool(rng.next_u64() & 1 == 1),
                4 => Value::Int(rng.next_u64() as i64),
                5 => Value::Float(rng.f64_in(-1e9..1e9)),
                6 => {
                    let alphabet: Vec<char> = "abcXYZ09 '\\✓".chars().collect();
                    let len = rng.usize_in(0..12);
                    Value::str(
                        (0..len)
                            .map(|_| alphabet[rng.usize_in(0..alphabet.len())])
                            .collect::<String>(),
                    )
                }
                pick => {
                    let inner = ArbValue {
                        depth: self.depth - 1,
                    };
                    let items: Vec<Value> = (0..rng.usize_in(0..4))
                        .map(|_| inner.generate(rng))
                        .collect();
                    if pick == 7 {
                        Value::Tuple(items.into())
                    } else {
                        Value::Bag(Bag::from_values(items))
                    }
                }
            }
        }
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        ArbValue { depth: 3 }
    }

    proptest! {
        #[test]
        fn values_round_trip(value in arb_value()) {
            let mut out = Vec::new();
            put_value(&mut out, &value);
            let mut c = Cursor::new(&out);
            let back = get_value(&mut c).expect("decodes");
            c.finish().expect("no trailing bytes");
            prop_assert_eq!(back, value);
        }

        #[test]
        fn truncated_values_error_instead_of_panicking(value in arb_value(), cut in 0usize..64) {
            let mut out = Vec::new();
            put_value(&mut out, &value);
            if cut < out.len() {
                let truncated = &out[..out.len() - 1 - cut.min(out.len() - 1)];
                let mut c = Cursor::new(truncated);
                // Either the decode fails, or it succeeded on a prefix and the
                // finish check flags what's left — never a panic.
                let _ = get_value(&mut c).and_then(|_| c.finish());
            }
        }
    }

    #[test]
    fn params_round_trip() {
        let params = iql::Params::new()
            .with("acc", "AC'C1")
            .with("n", 7i64)
            .with(
                "bag",
                Value::Bag(Bag::from_values(vec![1.into(), 2.into()])),
            );
        let mut out = Vec::new();
        put_params(&mut out, &params);
        let mut c = Cursor::new(&out);
        let back = get_params(&mut c).expect("decodes");
        c.finish().unwrap();
        assert_eq!(back.get("acc"), params.get("acc"));
        assert_eq!(back.get("n"), params.get("n"));
        assert_eq!(back.get("bag"), params.get("bag"));
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn hostile_counts_do_not_preallocate() {
        // A 4-billion-element bag declaration in a 10-byte body must fail
        // fast, not attempt a 4-billion-slot Vec.
        let mut out = Vec::new();
        put_u8(&mut out, 0x06);
        put_u32(&mut out, u32::MAX);
        let mut c = Cursor::new(&out);
        assert!(get_value(&mut c).is_err());
    }
}
