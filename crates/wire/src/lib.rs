//! Binary wire protocol for the dataspace service.
//!
//! Three layers, bottom-up:
//!
//! - [`frame`] — length-prefixed, FNV-1a-checksummed envelopes on a byte
//!   stream, reusing the commit log's record-framing discipline. Carries the
//!   protocol version, the client-assigned request id, and an opcode.
//! - [`codec`] — bounds-checked body encoding for primitives, [`iql::Value`]
//!   trees and parameter bindings. Malformed input yields typed errors,
//!   never panics.
//! - [`proto`] — the typed [`proto::Request`]/[`proto::Response`] surface:
//!   prepared-statement lifecycle, chunked result streaming with client-acked
//!   backpressure, standing subscriptions with server-push deltas, writes,
//!   and admin ops, plus the [`proto::ErrorCode`] taxonomy.
//!
//! [`client::Client`] is a small blocking client over all three, used by the
//! integration tests, the benches, and `examples/serve_proteomics.rs`. The
//! server side lives in the `server` crate.

pub mod client;
pub mod codec;
pub mod frame;
pub mod proto;

pub use client::{Client, ClientError};
pub use frame::{
    encode_frame, write_frame, Frame, FrameError, FrameReader, MAX_FRAME_BYTES, SERVER_ORIGIN_ID,
    WIRE_VERSION,
};
pub use proto::{ErrorCode, PushUpdate, ReqOp, Request, RespOp, Response};
