//! Protocol layer: typed requests, responses and error codes over the frame
//! bytes.
//!
//! Requests and responses occupy disjoint opcode ranges (`0x01..` vs `0x81..`)
//! so a frame's direction is self-describing. The protocol covers the whole
//! engine surface: prepared-statement lifecycle (`Prepare`/`Execute`/
//! `ExecuteValue`), one-shot `Query`, chunked result streaming with
//! client-acked backpressure (`NextChunk`/`CancelStream`), standing
//! subscriptions with server-push delta frames (`Subscribe`/`Unsubscribe` +
//! [`Response::Push`]), writes (`Insert`), and admin (`Checkpoint`/`Stats`).

use crate::codec::{
    get_params, get_str, get_u32, get_u64, get_u8, get_value, get_values, put_params, put_str,
    put_u32, put_u64, put_u8, put_value, put_values, CodecError, Cursor,
};
use iql::value::Value;
use iql::Params;

/// Request opcodes (client → server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReqOp {
    /// Parse a query text, record its placeholder set, return a session handle.
    Prepare = 0x01,
    /// Execute a prepared handle under bindings; bag results stream in chunks.
    Execute = 0x02,
    /// Execute a prepared handle expecting a single (possibly aggregate) value.
    ExecuteValue = 0x03,
    /// One-shot: prepare + execute a placeholder-free text, streaming chunks.
    Query = 0x04,
    /// Acknowledge a chunk and ask for the next one (backpressure credit).
    NextChunk = 0x05,
    /// Discard an open stream without draining it.
    CancelStream = 0x06,
    /// Open a standing subscription on a prepared handle; deltas are pushed.
    Subscribe = 0x07,
    /// Close a standing subscription.
    Unsubscribe = 0x08,
    /// Insert a batch of rows into a wrapped source table.
    Insert = 0x09,
    /// Compact the server's commit log (durability admin).
    Checkpoint = 0x0a,
    /// Snapshot the server's and dataspace's counters.
    Stats = 0x0b,
    /// Graceful session close (the server acks then tears the session down).
    Close = 0x0c,
}

impl ReqOp {
    /// All request opcodes, for per-opcode counter tables.
    pub const ALL: [ReqOp; 12] = [
        ReqOp::Prepare,
        ReqOp::Execute,
        ReqOp::ExecuteValue,
        ReqOp::Query,
        ReqOp::NextChunk,
        ReqOp::CancelStream,
        ReqOp::Subscribe,
        ReqOp::Unsubscribe,
        ReqOp::Insert,
        ReqOp::Checkpoint,
        ReqOp::Stats,
        ReqOp::Close,
    ];

    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<ReqOp> {
        ReqOp::ALL.into_iter().find(|op| *op as u8 == b)
    }

    /// Stable snake-case name (stats keys, logs).
    pub fn name(self) -> &'static str {
        match self {
            ReqOp::Prepare => "prepare",
            ReqOp::Execute => "execute",
            ReqOp::ExecuteValue => "execute_value",
            ReqOp::Query => "query",
            ReqOp::NextChunk => "next_chunk",
            ReqOp::CancelStream => "cancel_stream",
            ReqOp::Subscribe => "subscribe",
            ReqOp::Unsubscribe => "unsubscribe",
            ReqOp::Insert => "insert",
            ReqOp::Checkpoint => "checkpoint",
            ReqOp::Stats => "stats",
            ReqOp::Close => "close",
        }
    }
}

/// Response opcodes (server → client). `Push` frames are server-originated
/// (request id 0); everything else echoes the request id it answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RespOp {
    Prepared = 0x81,
    Chunk = 0x82,
    ValueResult = 0x83,
    Subscribed = 0x84,
    Unsubscribed = 0x85,
    Inserted = 0x86,
    CheckpointDone = 0x87,
    StatsResult = 0x88,
    Error = 0x89,
    Push = 0x8a,
    Closed = 0x8b,
}

impl RespOp {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<RespOp> {
        [
            RespOp::Prepared,
            RespOp::Chunk,
            RespOp::ValueResult,
            RespOp::Subscribed,
            RespOp::Unsubscribed,
            RespOp::Inserted,
            RespOp::CheckpointDone,
            RespOp::StatsResult,
            RespOp::Error,
            RespOp::Push,
            RespOp::Closed,
        ]
        .into_iter()
        .find(|op| *op as u8 == b)
    }
}

/// Typed error codes carried in [`Response::Error`] frames. The code is the
/// machine-readable half (admission control and retry policies dispatch on
/// it); the message is for humans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The query text failed to parse.
    Parse = 1,
    /// The query failed to plan or evaluate.
    Query = 2,
    /// A `?name` placeholder had no binding.
    UnboundParam = 3,
    /// A binding named no placeholder.
    UnknownParam = 4,
    /// The prepared-handle id is not live in this session.
    BadHandle = 5,
    /// The stream id names no open stream in this session.
    BadStream = 6,
    /// The subscription id names no live subscription in this session.
    BadSubscription = 7,
    /// The frame decoded but its body did not match the opcode's shape.
    MalformedBody = 8,
    /// The opcode byte is not a known request.
    UnknownOpcode = 9,
    /// The declared frame length exceeded the cap.
    FrameTooLarge = 10,
    /// Admission control: connection or per-session request limits hit.
    ServerBusy = 11,
    /// Admission control: the request waited longer than the configured
    /// timeout for an execution slot.
    Timeout = 12,
    /// The durable storage layer failed (or no commit log is attached).
    Storage = 13,
    /// The server is shutting down.
    ShuttingDown = 14,
    /// The insert was rejected by the source (schema/type/key validation).
    Rejected = 15,
    /// The frame carried an unsupported protocol version.
    VersionMismatch = 16,
}

impl ErrorCode {
    /// Decode an error-code byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        [
            ErrorCode::Parse,
            ErrorCode::Query,
            ErrorCode::UnboundParam,
            ErrorCode::UnknownParam,
            ErrorCode::BadHandle,
            ErrorCode::BadStream,
            ErrorCode::BadSubscription,
            ErrorCode::MalformedBody,
            ErrorCode::UnknownOpcode,
            ErrorCode::FrameTooLarge,
            ErrorCode::ServerBusy,
            ErrorCode::Timeout,
            ErrorCode::Storage,
            ErrorCode::ShuttingDown,
            ErrorCode::Rejected,
            ErrorCode::VersionMismatch,
        ]
        .into_iter()
        .find(|code| *code as u8 == b)
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Prepare {
        text: String,
    },
    Execute {
        handle: u64,
        params: Params,
        /// Maximum rows per result chunk the client is willing to receive
        /// (the server clamps it to its own configured ceiling; 0 means "use
        /// the server default").
        chunk_rows: u32,
    },
    ExecuteValue {
        handle: u64,
        params: Params,
    },
    Query {
        text: String,
        chunk_rows: u32,
    },
    NextChunk {
        stream_id: u64,
    },
    CancelStream {
        stream_id: u64,
    },
    Subscribe {
        handle: u64,
        params: Params,
    },
    Unsubscribe {
        sub_id: u64,
    },
    Insert {
        source: String,
        table: String,
        rows: Vec<Vec<Value>>,
    },
    Checkpoint,
    Stats,
    Close,
}

impl Request {
    /// This request's opcode.
    pub fn opcode(&self) -> ReqOp {
        match self {
            Request::Prepare { .. } => ReqOp::Prepare,
            Request::Execute { .. } => ReqOp::Execute,
            Request::ExecuteValue { .. } => ReqOp::ExecuteValue,
            Request::Query { .. } => ReqOp::Query,
            Request::NextChunk { .. } => ReqOp::NextChunk,
            Request::CancelStream { .. } => ReqOp::CancelStream,
            Request::Subscribe { .. } => ReqOp::Subscribe,
            Request::Unsubscribe { .. } => ReqOp::Unsubscribe,
            Request::Insert { .. } => ReqOp::Insert,
            Request::Checkpoint => ReqOp::Checkpoint,
            Request::Stats => ReqOp::Stats,
            Request::Close => ReqOp::Close,
        }
    }

    /// Encode this request's body bytes.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Prepare { text } => put_str(&mut out, text),
            Request::Execute {
                handle,
                params,
                chunk_rows,
            } => {
                put_u64(&mut out, *handle);
                put_u32(&mut out, *chunk_rows);
                put_params(&mut out, params);
            }
            Request::ExecuteValue { handle, params } => {
                put_u64(&mut out, *handle);
                put_params(&mut out, params);
            }
            Request::Query { text, chunk_rows } => {
                put_u32(&mut out, *chunk_rows);
                put_str(&mut out, text);
            }
            Request::NextChunk { stream_id } | Request::CancelStream { stream_id } => {
                put_u64(&mut out, *stream_id)
            }
            Request::Subscribe { handle, params } => {
                put_u64(&mut out, *handle);
                put_params(&mut out, params);
            }
            Request::Unsubscribe { sub_id } => put_u64(&mut out, *sub_id),
            Request::Insert {
                source,
                table,
                rows,
            } => {
                put_str(&mut out, source);
                put_str(&mut out, table);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_values(&mut out, row);
                }
            }
            Request::Checkpoint | Request::Stats | Request::Close => {}
        }
        out
    }

    /// Decode a request from its opcode byte and body bytes. `Ok(None)` means
    /// the opcode byte is not a known request (the caller answers
    /// [`ErrorCode::UnknownOpcode`] and keeps the session — framing is intact).
    pub fn decode(opcode: u8, body: &[u8]) -> Result<Option<Request>, CodecError> {
        let Some(op) = ReqOp::from_u8(opcode) else {
            return Ok(None);
        };
        let mut c = Cursor::new(body);
        let request = match op {
            ReqOp::Prepare => Request::Prepare {
                text: get_str(&mut c)?,
            },
            ReqOp::Execute => {
                let handle = get_u64(&mut c)?;
                let chunk_rows = get_u32(&mut c)?;
                let params = get_params(&mut c)?;
                Request::Execute {
                    handle,
                    params,
                    chunk_rows,
                }
            }
            ReqOp::ExecuteValue => Request::ExecuteValue {
                handle: get_u64(&mut c)?,
                params: get_params(&mut c)?,
            },
            ReqOp::Query => {
                let chunk_rows = get_u32(&mut c)?;
                let text = get_str(&mut c)?;
                Request::Query { text, chunk_rows }
            }
            ReqOp::NextChunk => Request::NextChunk {
                stream_id: get_u64(&mut c)?,
            },
            ReqOp::CancelStream => Request::CancelStream {
                stream_id: get_u64(&mut c)?,
            },
            ReqOp::Subscribe => Request::Subscribe {
                handle: get_u64(&mut c)?,
                params: get_params(&mut c)?,
            },
            ReqOp::Unsubscribe => Request::Unsubscribe {
                sub_id: get_u64(&mut c)?,
            },
            ReqOp::Insert => {
                let source = get_str(&mut c)?;
                let table = get_str(&mut c)?;
                let count = get_u32(&mut c)? as usize;
                if count > c.remaining() {
                    return Err(CodecError(format!(
                        "row count {count} exceeds the remaining body"
                    )));
                }
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    rows.push(get_values(&mut c)?);
                }
                Request::Insert {
                    source,
                    table,
                    rows,
                }
            }
            ReqOp::Checkpoint => Request::Checkpoint,
            ReqOp::Stats => Request::Stats,
            ReqOp::Close => Request::Close,
        };
        c.finish()?;
        Ok(Some(request))
    }
}

/// One pushed subscription update (body of a [`Response::Push`] frame).
#[derive(Debug, Clone, PartialEq)]
pub enum PushUpdate {
    /// Rows appended to the standing result by O(delta) maintenance.
    Delta(Vec<Value>),
    /// The whole result, re-executed (fallback path / schema change).
    Refreshed(Value),
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Prepared {
        handle: u64,
        param_names: Vec<String>,
    },
    /// One slice of a streamed bag result. Stamped with the id of the request
    /// that opened the stream; `done` marks the final slice (the stream is
    /// closed server-side once it is sent).
    Chunk {
        rows: Vec<Value>,
        done: bool,
    },
    ValueResult {
        value: Value,
    },
    Subscribed {
        sub_id: u64,
        /// The standing result at subscribe time (the baseline deltas append to).
        initial: Value,
    },
    Unsubscribed,
    Inserted {
        rows: u64,
    },
    CheckpointDone {
        records_before: u64,
        records_after: u64,
    },
    /// Flat counter snapshot: stable name → value, covering both the server's
    /// own counters (`server_*`) and the dataspace's (`ds_*`).
    StatsResult {
        counters: Vec<(String, u64)>,
    },
    Error {
        code: ErrorCode,
        message: String,
    },
    /// Server-originated subscription update (request id 0 on the wire).
    Push {
        sub_id: u64,
        update: PushUpdate,
    },
    Closed,
}

impl Response {
    /// This response's opcode.
    pub fn opcode(&self) -> RespOp {
        match self {
            Response::Prepared { .. } => RespOp::Prepared,
            Response::Chunk { .. } => RespOp::Chunk,
            Response::ValueResult { .. } => RespOp::ValueResult,
            Response::Subscribed { .. } => RespOp::Subscribed,
            Response::Unsubscribed => RespOp::Unsubscribed,
            Response::Inserted { .. } => RespOp::Inserted,
            Response::CheckpointDone { .. } => RespOp::CheckpointDone,
            Response::StatsResult { .. } => RespOp::StatsResult,
            Response::Error { .. } => RespOp::Error,
            Response::Push { .. } => RespOp::Push,
            Response::Closed => RespOp::Closed,
        }
    }

    /// Encode this response's body bytes.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Prepared {
                handle,
                param_names,
            } => {
                put_u64(&mut out, *handle);
                put_u32(&mut out, param_names.len() as u32);
                for name in param_names {
                    put_str(&mut out, name);
                }
            }
            Response::Chunk { rows, done } => {
                put_u8(&mut out, u8::from(*done));
                put_values(&mut out, rows);
            }
            Response::ValueResult { value } => put_value(&mut out, value),
            Response::Subscribed { sub_id, initial } => {
                put_u64(&mut out, *sub_id);
                put_value(&mut out, initial);
            }
            Response::Unsubscribed | Response::Closed => {}
            Response::Inserted { rows } => put_u64(&mut out, *rows),
            Response::CheckpointDone {
                records_before,
                records_after,
            } => {
                put_u64(&mut out, *records_before);
                put_u64(&mut out, *records_after);
            }
            Response::StatsResult { counters } => {
                put_u32(&mut out, counters.len() as u32);
                for (name, value) in counters {
                    put_str(&mut out, name);
                    put_u64(&mut out, *value);
                }
            }
            Response::Error { code, message } => {
                put_u8(&mut out, *code as u8);
                put_str(&mut out, message);
            }
            Response::Push { sub_id, update } => {
                put_u64(&mut out, *sub_id);
                match update {
                    PushUpdate::Delta(rows) => {
                        put_u8(&mut out, 0);
                        put_values(&mut out, rows);
                    }
                    PushUpdate::Refreshed(value) => {
                        put_u8(&mut out, 1);
                        put_value(&mut out, value);
                    }
                }
            }
        }
        out
    }

    /// Decode a response from its opcode byte and body bytes.
    pub fn decode(opcode: u8, body: &[u8]) -> Result<Response, CodecError> {
        let Some(op) = RespOp::from_u8(opcode) else {
            return Err(CodecError(format!(
                "unknown response opcode 0x{opcode:02x}"
            )));
        };
        let mut c = Cursor::new(body);
        let response = match op {
            RespOp::Prepared => {
                let handle = get_u64(&mut c)?;
                let count = get_u32(&mut c)? as usize;
                if count > c.remaining() {
                    return Err(CodecError(format!(
                        "param-name count {count} exceeds the remaining body"
                    )));
                }
                let mut param_names = Vec::with_capacity(count);
                for _ in 0..count {
                    param_names.push(get_str(&mut c)?);
                }
                Response::Prepared {
                    handle,
                    param_names,
                }
            }
            RespOp::Chunk => {
                let done = get_u8(&mut c)? != 0;
                let rows = get_values(&mut c)?;
                Response::Chunk { rows, done }
            }
            RespOp::ValueResult => Response::ValueResult {
                value: get_value(&mut c)?,
            },
            RespOp::Subscribed => Response::Subscribed {
                sub_id: get_u64(&mut c)?,
                initial: get_value(&mut c)?,
            },
            RespOp::Unsubscribed => Response::Unsubscribed,
            RespOp::Inserted => Response::Inserted {
                rows: get_u64(&mut c)?,
            },
            RespOp::CheckpointDone => Response::CheckpointDone {
                records_before: get_u64(&mut c)?,
                records_after: get_u64(&mut c)?,
            },
            RespOp::StatsResult => {
                let count = get_u32(&mut c)? as usize;
                if count > c.remaining() {
                    return Err(CodecError(format!(
                        "counter count {count} exceeds the remaining body"
                    )));
                }
                let mut counters = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = get_str(&mut c)?;
                    let value = get_u64(&mut c)?;
                    counters.push((name, value));
                }
                Response::StatsResult { counters }
            }
            RespOp::Error => {
                let code_byte = get_u8(&mut c)?;
                let code = ErrorCode::from_u8(code_byte)
                    .ok_or_else(|| CodecError(format!("unknown error code {code_byte}")))?;
                Response::Error {
                    code,
                    message: get_str(&mut c)?,
                }
            }
            RespOp::Push => {
                let sub_id = get_u64(&mut c)?;
                let update = match get_u8(&mut c)? {
                    0 => PushUpdate::Delta(get_values(&mut c)?),
                    1 => PushUpdate::Refreshed(get_value(&mut c)?),
                    tag => {
                        return Err(CodecError(format!("unknown push tag {tag}")));
                    }
                };
                Response::Push { sub_id, update }
            }
            RespOp::Closed => Response::Closed,
        };
        c.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let body = request.encode_body();
        let back = Request::decode(request.opcode() as u8, &body)
            .expect("decodes")
            .expect("known opcode");
        assert_eq!(back, request);
    }

    fn round_trip_response(response: Response) {
        let body = response.encode_body();
        let back = Response::decode(response.opcode() as u8, &body).expect("decodes");
        assert_eq!(back, response);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Prepare {
            text: "[k | k <- <<P>>; k = ?x]".into(),
        });
        round_trip_request(Request::Execute {
            handle: 7,
            params: Params::new().with("x", 3i64).with("s", "it's"),
            chunk_rows: 128,
        });
        round_trip_request(Request::ExecuteValue {
            handle: 7,
            params: Params::new(),
        });
        round_trip_request(Request::Query {
            text: "count <<P>>".into(),
            chunk_rows: 0,
        });
        round_trip_request(Request::NextChunk { stream_id: 3 });
        round_trip_request(Request::CancelStream { stream_id: 3 });
        round_trip_request(Request::Subscribe {
            handle: 1,
            params: Params::new().with("acc", "A'C✓"),
        });
        round_trip_request(Request::Unsubscribe { sub_id: 9 });
        round_trip_request(Request::Insert {
            source: "pedro".into(),
            table: "protein".into(),
            rows: vec![vec![1.into(), "ACC1".into()], vec![2.into(), Value::Null]],
        });
        round_trip_request(Request::Checkpoint);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Close);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Prepared {
            handle: 4,
            param_names: vec!["acc".into(), "n".into()],
        });
        round_trip_response(Response::Chunk {
            rows: vec![Value::Tuple(vec![1.into(), "a".into()].into())],
            done: false,
        });
        round_trip_response(Response::ValueResult {
            value: Value::Int(42),
        });
        round_trip_response(Response::Subscribed {
            sub_id: 2,
            initial: Value::Bag(iql::value::Bag::from_values(vec![1.into()])),
        });
        round_trip_response(Response::Unsubscribed);
        round_trip_response(Response::Inserted { rows: 3 });
        round_trip_response(Response::CheckpointDone {
            records_before: 10,
            records_after: 2,
        });
        round_trip_response(Response::StatsResult {
            counters: vec![
                ("server_connections".into(), 5),
                ("ds_plan_cache_hits".into(), 9),
            ],
        });
        round_trip_response(Response::Error {
            code: ErrorCode::ServerBusy,
            message: "too many connections".into(),
        });
        round_trip_response(Response::Push {
            sub_id: 1,
            update: PushUpdate::Delta(vec!["ACC3".into()]),
        });
        round_trip_response(Response::Push {
            sub_id: 1,
            update: PushUpdate::Refreshed(Value::Int(4)),
        });
        round_trip_response(Response::Closed);
    }

    #[test]
    fn unknown_request_opcode_is_none_not_error() {
        assert_eq!(Request::decode(0x7f, &[]).unwrap(), None);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::NextChunk { stream_id: 1 }.encode_body();
        body.push(0xaa);
        assert!(Request::decode(ReqOp::NextChunk as u8, &body).is_err());
    }
}
