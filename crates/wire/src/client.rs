//! A small blocking TCP client for the dataspace service.
//!
//! The client is strictly request/response: it assigns monotonically
//! increasing request ids, writes one frame per request, and reads frames
//! until the response echoing that id arrives. Server-originated frames
//! (request id 0 — subscription pushes and pre-session errors) encountered
//! while waiting are diverted: pushes land in an inbox drained by
//! [`Client::recv_push`], errors abort the call.
//!
//! Streamed results are pulled with client-acked backpressure: each
//! [`Response::Chunk`] is acknowledged with a `NextChunk` request before the
//! server sends the next one, so a slow client never has more than one chunk
//! in flight.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use iql::value::Value;
use iql::Params;

use crate::codec::CodecError;
use crate::frame::{write_frame, Frame, FrameError, FrameReader, SERVER_ORIGIN_ID};
use crate::proto::{ErrorCode, PushUpdate, Request, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a typed error frame.
    Server { code: ErrorCode, message: String },
    /// The transport failed or lost framing.
    Frame(FrameError),
    /// A response frame's body did not decode.
    Codec(CodecError),
    /// The server answered with a well-formed frame of the wrong shape.
    Protocol(String),
    /// No response arrived within the client's response timeout.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Codec(e) => write!(f, "{e}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::TimedOut => write!(f, "timed out waiting for a response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e.to_string()))
    }
}

impl ClientError {
    /// The typed server error code, if this is a server-reported error.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Granularity of socket read timeouts while waiting under a deadline.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// A blocking connection to a dataspace server.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
    /// Server pushes received while waiting for a response.
    inbox: VecDeque<(u64, PushUpdate)>,
    /// How long a call waits for its response before giving up.
    response_timeout: Duration,
    bytes_out: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
            inbox: VecDeque::new(),
            response_timeout: Duration::from_secs(30),
            bytes_out: 0,
        })
    }

    /// Override the per-call response timeout (default 30 s).
    pub fn set_response_timeout(&mut self, timeout: Duration) {
        self.response_timeout = timeout;
    }

    /// Cumulative bytes written to / read from the wire by this client.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_out, self.reader.bytes_in())
    }

    /// Send `request` and wait for its response frame.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        self.wait_response(id)
    }

    /// Send `request` without waiting; returns the assigned request id.
    pub fn send(&mut self, request: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let body = request.encode_body();
        self.bytes_out += write_frame(&mut self.stream, id, request.opcode() as u8, &body)?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Read frames until the response echoing `id` arrives, diverting pushes.
    pub fn wait_response(&mut self, id: u64) -> Result<Response, ClientError> {
        let deadline = Instant::now() + self.response_timeout;
        loop {
            let Some(frame) = self.poll_frame(deadline)? else {
                return Err(ClientError::TimedOut);
            };
            match self.classify(frame)? {
                Classified::Response(got, response) if got == id => {
                    return match response {
                        Response::Error { code, message } => {
                            Err(ClientError::Server { code, message })
                        }
                        other => Ok(other),
                    };
                }
                Classified::Response(got, _) => {
                    return Err(ClientError::Protocol(format!(
                        "response for request {got} while waiting for {id}"
                    )));
                }
                Classified::ServerError(code, message) => {
                    return Err(ClientError::Server { code, message });
                }
                Classified::Push => {}
            }
        }
    }

    /// Wait up to `timeout` for a subscription push. Returns `Ok(None)` on
    /// timeout. Pushes diverted during earlier calls are returned first.
    pub fn recv_push(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(u64, PushUpdate)>, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(push) = self.inbox.pop_front() {
                return Ok(Some(push));
            }
            let Some(frame) = self.poll_frame(deadline)? else {
                return Ok(None);
            };
            match self.classify(frame)? {
                Classified::Push => {}
                Classified::ServerError(code, message) => {
                    return Err(ClientError::Server { code, message });
                }
                Classified::Response(got, _) => {
                    return Err(ClientError::Protocol(format!(
                        "unsolicited response for request {got}"
                    )));
                }
            }
        }
    }

    /// Read one frame, polling in short slices until `deadline`.
    fn poll_frame(&mut self, deadline: Instant) -> Result<Option<Frame>, ClientError> {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let slice = POLL_SLICE.min(deadline - now).max(Duration::from_millis(1));
            self.stream.set_read_timeout(Some(slice))?;
            if let Some(frame) = self.reader.poll(&mut self.stream)? {
                return Ok(Some(frame));
            }
        }
    }

    /// Sort a frame into push (inboxed), pre-session error, or response.
    fn classify(&mut self, frame: Frame) -> Result<Classified, ClientError> {
        let response = Response::decode(frame.opcode, &frame.body)?;
        if frame.request_id == SERVER_ORIGIN_ID {
            return match response {
                Response::Push { sub_id, update } => {
                    self.inbox.push_back((sub_id, update));
                    Ok(Classified::Push)
                }
                Response::Error { code, message } => Ok(Classified::ServerError(code, message)),
                other => Err(ClientError::Protocol(format!(
                    "server-originated frame was not a push or error: {:?}",
                    other.opcode()
                ))),
            };
        }
        Ok(Classified::Response(frame.request_id, response))
    }

    // --- typed convenience wrappers -------------------------------------

    /// Prepare a query; returns `(handle, placeholder names)`.
    pub fn prepare(&mut self, text: &str) -> Result<(u64, Vec<String>), ClientError> {
        match self.call(&Request::Prepare { text: text.into() })? {
            Response::Prepared {
                handle,
                param_names,
            } => Ok((handle, param_names)),
            other => unexpected("Prepared", &other),
        }
    }

    /// Execute a prepared handle, draining the chunk stream into one row set.
    pub fn execute(&mut self, handle: u64, params: &Params) -> Result<Vec<Value>, ClientError> {
        Ok(self.execute_chunked(handle, params, 0)?.0)
    }

    /// Execute with an explicit chunk size, acking each chunk; returns the
    /// rows and how many chunks carried them.
    pub fn execute_chunked(
        &mut self,
        handle: u64,
        params: &Params,
        chunk_rows: u32,
    ) -> Result<(Vec<Value>, usize), ClientError> {
        let id = self.send(&Request::Execute {
            handle,
            params: params.clone(),
            chunk_rows,
        })?;
        self.drain_stream(id)
    }

    /// Execute a prepared handle expecting a single value result.
    pub fn execute_value(&mut self, handle: u64, params: &Params) -> Result<Value, ClientError> {
        match self.call(&Request::ExecuteValue {
            handle,
            params: params.clone(),
        })? {
            Response::ValueResult { value } => Ok(value),
            other => unexpected("ValueResult", &other),
        }
    }

    /// One-shot query (no placeholders), draining the chunk stream.
    pub fn query(&mut self, text: &str) -> Result<Vec<Value>, ClientError> {
        Ok(self.query_chunked(text, 0)?.0)
    }

    /// One-shot query with an explicit chunk size; returns rows + chunk count.
    pub fn query_chunked(
        &mut self,
        text: &str,
        chunk_rows: u32,
    ) -> Result<(Vec<Value>, usize), ClientError> {
        let id = self.send(&Request::Query {
            text: text.into(),
            chunk_rows,
        })?;
        self.drain_stream(id)
    }

    /// Ack-and-pull loop: collect chunks for the stream opened by request `id`.
    fn drain_stream(&mut self, id: u64) -> Result<(Vec<Value>, usize), ClientError> {
        let mut rows = Vec::new();
        let mut chunks = 0usize;
        let mut waiting_on = id;
        loop {
            match self.wait_response(waiting_on)? {
                Response::Chunk { rows: piece, done } => {
                    chunks += 1;
                    rows.extend(piece);
                    if done {
                        return Ok((rows, chunks));
                    }
                    waiting_on = self.send(&Request::NextChunk { stream_id: id })?;
                }
                other => return unexpected("Chunk", &other),
            }
        }
    }

    /// Open a standing subscription; returns `(sub_id, initial result)`.
    pub fn subscribe(&mut self, handle: u64, params: &Params) -> Result<(u64, Value), ClientError> {
        match self.call(&Request::Subscribe {
            handle,
            params: params.clone(),
        })? {
            Response::Subscribed { sub_id, initial } => Ok((sub_id, initial)),
            other => unexpected("Subscribed", &other),
        }
    }

    /// Close a standing subscription.
    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<(), ClientError> {
        match self.call(&Request::Unsubscribe { sub_id })? {
            Response::Unsubscribed => Ok(()),
            other => unexpected("Unsubscribed", &other),
        }
    }

    /// Insert rows into a wrapped source table; returns rows applied.
    pub fn insert(
        &mut self,
        source: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<u64, ClientError> {
        match self.call(&Request::Insert {
            source: source.into(),
            table: table.into(),
            rows,
        })? {
            Response::Inserted { rows } => Ok(rows),
            other => unexpected("Inserted", &other),
        }
    }

    /// Compact the server's commit log; returns `(records before, after)`.
    pub fn checkpoint(&mut self) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::Checkpoint)? {
            Response::CheckpointDone {
                records_before,
                records_after,
            } => Ok((records_before, records_after)),
            other => unexpected("CheckpointDone", &other),
        }
    }

    /// Snapshot the server's counters as `name → value`.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsResult { counters } => Ok(counters),
            other => unexpected("StatsResult", &other),
        }
    }

    /// One counter out of [`Client::stats`], by exact name.
    pub fn stat(&mut self, name: &str) -> Result<Option<u64>, ClientError> {
        Ok(self
            .stats()?
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v))
    }

    /// Graceful close: the server acks with `Closed` then tears the session
    /// down (dropping its subscriptions and streams).
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Close)? {
            Response::Closed => Ok(()),
            other => unexpected("Closed", &other),
        }
    }
}

enum Classified {
    Response(u64, Response),
    ServerError(ErrorCode, String),
    Push,
}

fn unexpected<T>(wanted: &str, got: &Response) -> Result<T, ClientError> {
    Err(ClientError::Protocol(format!(
        "expected {wanted}, got {:?}",
        got.opcode()
    )))
}
