//! Recursive-descent parser for IQL.

use crate::ast::{BinOp, Expr, Literal, Pattern, Qualifier, SchemeRef, UnOp};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// A recursive-descent parser over a pre-lexed token stream.
pub struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    /// Lex the input and construct a parser.
    pub fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
        })
    }

    /// Parse a complete expression; trailing input is an error.
    pub fn parse_expr_complete(&mut self) -> Result<Expr, ParseError> {
        let expr = self.parse_expr()?;
        self.expect(Token::Eof)?;
        Ok(expr)
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: Token) -> Result<(), ParseError> {
        if *self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{expected}`, found `{}`", self.peek()),
                self.peek_offset(),
            ))
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Top-level expression: `Range`, `let`, `if` or a binary-operator expression.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Range => {
                self.advance();
                let lower = self.parse_operand()?;
                let upper = self.parse_operand()?;
                Ok(Expr::Range {
                    lower: Box::new(lower),
                    upper: Box::new(upper),
                })
            }
            Token::Let => {
                self.advance();
                let pattern = self.parse_pattern()?;
                self.expect(Token::Eq)?;
                let value = self.parse_expr()?;
                self.expect(Token::In)?;
                let body = self.parse_expr()?;
                Ok(Expr::Let {
                    pattern,
                    value: Box::new(value),
                    body: Box::new(body),
                })
            }
            Token::If => {
                self.advance();
                let cond = self.parse_expr()?;
                self.expect(Token::Then)?;
                let then = self.parse_expr()?;
                self.expect(Token::Else)?;
                let otherwise = self.parse_expr()?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                })
            }
            _ => self.parse_binary(0),
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Or => BinOp::Or,
                Token::And => BinOp::And,
                Token::Eq => BinOp::Eq,
                Token::Neq => BinOp::Neq,
                Token::Lt => BinOp::Lt,
                Token::Le => BinOp::Le,
                Token::Gt => BinOp::Gt,
                Token::Ge => BinOp::Ge,
                Token::PlusPlus => BinOp::BagUnion,
                Token::MinusMinus => BinOp::BagDiff,
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::BinOp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.advance();
                let expr = self.parse_unary()?;
                Ok(Expr::UnOp {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                })
            }
            Token::Not => {
                self.advance();
                let expr = self.parse_unary()?;
                Ok(Expr::UnOp {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                })
            }
            _ => self.parse_application(),
        }
    }

    /// Function application: an identifier followed directly by one or more operands,
    /// e.g. `count <<protein>>` or `max [x | …]`. Parenthesised argument lists
    /// `f(a, b)` are also accepted.
    fn parse_application(&mut self) -> Result<Expr, ParseError> {
        if let Token::Ident(name) = self.peek().clone() {
            if self.is_function_position() {
                self.advance();
                // Parenthesised argument list.
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&Token::Comma) {
                                continue;
                            }
                            self.expect(Token::RParen)?;
                            break;
                        }
                    }
                    return Ok(Expr::Apply {
                        function: name,
                        args,
                    });
                }
                // Juxtaposition style: one or more operands.
                let mut args = Vec::new();
                while self.starts_operand() {
                    args.push(self.parse_operand()?);
                }
                return Ok(Expr::Apply {
                    function: name,
                    args,
                });
            }
        }
        self.parse_operand()
    }

    /// Whether the current identifier should be treated as a function application head.
    /// An identifier is a function head if it is a known built-in name and is followed
    /// by something that can start an operand or by `(`.
    fn is_function_position(&self) -> bool {
        let name = match self.peek() {
            Token::Ident(n) => n,
            _ => return false,
        };
        if !crate::builtins::is_builtin(name) {
            return false;
        }
        let next = self
            .tokens
            .get(self.pos + 1)
            .map(|s| &s.token)
            .unwrap_or(&Token::Eof);
        matches!(
            next,
            Token::LParen
                | Token::LBracket
                | Token::LBrace
                | Token::SchemeOpen
                | Token::Ident(_)
                | Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::Param(_)
                | Token::Void
                | Token::Any
        )
    }

    fn starts_operand(&self) -> bool {
        matches!(
            self.peek(),
            Token::LParen
                | Token::LBracket
                | Token::LBrace
                | Token::SchemeOpen
                | Token::Ident(_)
                | Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::Param(_)
                | Token::True
                | Token::False
                | Token::Null
                | Token::Void
                | Token::Any
        )
    }

    /// Operands: literals, variables, tuples, bags/comprehensions, scheme refs,
    /// parenthesised expressions, `Void`, `Any`.
    fn parse_operand(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.advance();
                Ok(Expr::Lit(Literal::Int(i)))
            }
            Token::Float(x) => {
                self.advance();
                Ok(Expr::Lit(Literal::Float(x)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::Lit(Literal::Str(s)))
            }
            Token::True => {
                self.advance();
                Ok(Expr::Lit(Literal::Bool(true)))
            }
            Token::False => {
                self.advance();
                Ok(Expr::Lit(Literal::Bool(false)))
            }
            Token::Null => {
                self.advance();
                Ok(Expr::Lit(Literal::Null))
            }
            Token::Void => {
                self.advance();
                Ok(Expr::Void)
            }
            Token::Any => {
                self.advance();
                Ok(Expr::Any)
            }
            Token::Ident(name) => {
                self.advance();
                Ok(Expr::Var(name))
            }
            Token::Param(name) => {
                self.advance();
                Ok(Expr::Param(name))
            }
            Token::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::LBrace => self.parse_tuple(),
            Token::LBracket => self.parse_bag_or_comprehension(),
            Token::SchemeOpen => self.parse_scheme(),
            other => Err(ParseError::new(
                format!("unexpected token `{other}`"),
                self.peek_offset(),
            )),
        }
    }

    fn parse_tuple(&mut self) -> Result<Expr, ParseError> {
        self.expect(Token::LBrace)?;
        let mut items = Vec::new();
        if !self.eat(&Token::RBrace) {
            loop {
                items.push(self.parse_expr()?);
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(Token::RBrace)?;
                break;
            }
        }
        Ok(Expr::Tuple(items))
    }

    fn parse_scheme(&mut self) -> Result<Expr, ParseError> {
        self.expect(Token::SchemeOpen)?;
        let mut parts = Vec::new();
        loop {
            match self.advance() {
                Token::Ident(p) => parts.push(p),
                Token::Str(p) => parts.push(p),
                Token::Int(i) => parts.push(i.to_string()),
                other => {
                    return Err(ParseError::new(
                        format!("expected scheme part, found `{other}`"),
                        self.peek_offset(),
                    ))
                }
            }
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(Token::SchemeClose)?;
            break;
        }
        Ok(Expr::Scheme(SchemeRef { parts }))
    }

    fn parse_bag_or_comprehension(&mut self) -> Result<Expr, ParseError> {
        self.expect(Token::LBracket)?;
        if self.eat(&Token::RBracket) {
            return Ok(Expr::Bag(Vec::new()));
        }
        let first = self.parse_expr()?;
        if self.eat(&Token::Pipe) {
            let mut qualifiers = Vec::new();
            loop {
                qualifiers.push(self.parse_qualifier()?);
                if self.eat(&Token::Semi) {
                    continue;
                }
                self.expect(Token::RBracket)?;
                break;
            }
            Ok(Expr::Comp {
                head: Box::new(first),
                qualifiers,
            })
        } else {
            let mut items = vec![first];
            while self.eat(&Token::Comma) {
                items.push(self.parse_expr()?);
            }
            self.expect(Token::RBracket)?;
            Ok(Expr::Bag(items))
        }
    }

    /// A qualifier is a generator `pattern <- expr`, a binding `let pattern = expr`, or
    /// a filter expression.
    fn parse_qualifier(&mut self) -> Result<Qualifier, ParseError> {
        if self.eat(&Token::Let) {
            let pattern = self.parse_pattern()?;
            self.expect(Token::Eq)?;
            let value = self.parse_expr()?;
            return Ok(Qualifier::Binding { pattern, value });
        }
        // Try to parse a generator: a pattern followed by `<-`. Backtrack on failure.
        let checkpoint = self.pos;
        if let Ok(pattern) = self.parse_pattern() {
            if self.eat(&Token::Arrow) {
                let source = self.parse_expr()?;
                return Ok(Qualifier::Generator { pattern, source });
            }
        }
        self.pos = checkpoint;
        let filter = self.parse_expr()?;
        Ok(Qualifier::Filter(filter))
    }

    fn parse_pattern(&mut self) -> Result<Pattern, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(Pattern::Var(name))
            }
            Token::Underscore => {
                self.advance();
                Ok(Pattern::Wildcard)
            }
            Token::Int(i) => {
                self.advance();
                Ok(Pattern::Lit(Literal::Int(i)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Pattern::Lit(Literal::Str(s)))
            }
            Token::True => {
                self.advance();
                Ok(Pattern::Lit(Literal::Bool(true)))
            }
            Token::False => {
                self.advance();
                Ok(Pattern::Lit(Literal::Bool(false)))
            }
            Token::LBrace => {
                self.advance();
                let mut parts = Vec::new();
                if !self.eat(&Token::RBrace) {
                    loop {
                        parts.push(self.parse_pattern()?);
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        self.expect(Token::RBrace)?;
                        break;
                    }
                }
                Ok(Pattern::Tuple(parts))
            }
            other => Err(ParseError::new(
                format!("expected pattern, found `{other}`"),
                self.peek_offset(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parse_paper_add_query() {
        // The first transformation from the case study (§3).
        let q = parse("[{'PEDRO', k} | k <- <<protein>>]").unwrap();
        match q {
            Expr::Comp { head, qualifiers } => {
                assert!(matches!(*head, Expr::Tuple(ref items) if items.len() == 2));
                assert_eq!(qualifiers.len(), 1);
                assert!(matches!(
                    qualifiers[0],
                    Qualifier::Generator { ref pattern, .. } if matches!(pattern, Pattern::Var(v) if v == "k")
                ));
            }
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    #[test]
    fn parse_join_comprehension() {
        // The UPeptideHitToProteinHit_mm join from the case study.
        let q = parse(
            "[{k1, k2} | {k1, x} <- <<upeptidehit, dbsearch>>; {k2, y} <- <<uproteinhit, dbsearch>>; x = y]",
        )
        .unwrap();
        if let Expr::Comp { qualifiers, .. } = q {
            assert_eq!(qualifiers.len(), 3);
            assert!(matches!(qualifiers[2], Qualifier::Filter(_)));
        } else {
            panic!("expected comprehension");
        }
    }

    #[test]
    fn parse_range_void_any() {
        let q = parse("Range Void Any").unwrap();
        assert!(q.is_range_void_any());
        let q2 = parse("Range [k | k <- <<protein>>] Any").unwrap();
        assert!(!q2.is_range_void_any());
    }

    #[test]
    fn parse_function_applications() {
        let q = parse("count <<protein>>").unwrap();
        assert!(
            matches!(q, Expr::Apply { ref function, ref args } if function == "count" && args.len() == 1)
        );
        let q2 = parse("count(<<protein>>)").unwrap();
        assert!(matches!(q2, Expr::Apply { ref args, .. } if args.len() == 1));
        let q3 = parse("member(<<protein>>, 3)").unwrap();
        assert!(matches!(q3, Expr::Apply { ref args, .. } if args.len() == 2));
    }

    #[test]
    fn ident_not_builtin_is_variable() {
        let q = parse("protein").unwrap();
        assert!(matches!(q, Expr::Var(ref v) if v == "protein"));
    }

    #[test]
    fn parse_operators_with_precedence() {
        let q = parse("1 + 2 * 3 = 7 and true").unwrap();
        // Expect: ((1 + (2*3)) = 7) and true
        if let Expr::BinOp {
            op: BinOp::And,
            lhs,
            ..
        } = q
        {
            assert!(matches!(*lhs, Expr::BinOp { op: BinOp::Eq, .. }));
        } else {
            panic!("expected and at the top");
        }
    }

    #[test]
    fn parse_bag_literals() {
        assert_eq!(parse("[]").unwrap(), Expr::Bag(vec![]));
        let q = parse("[1, 2, 3]").unwrap();
        assert!(matches!(q, Expr::Bag(ref items) if items.len() == 3));
    }

    #[test]
    fn parse_let_and_if() {
        let q = parse("let x = 3 in if x > 2 then 'big' else 'small'").unwrap();
        assert!(matches!(q, Expr::Let { .. }));
    }

    #[test]
    fn parse_nested_comprehension() {
        let q = parse(
            "[ {k, count [x | {k2, x} <- <<peptidehit, score>>; k2 = k]} | k <- <<peptidehit>> ]",
        )
        .unwrap();
        assert!(matches!(q, Expr::Comp { .. }));
    }

    #[test]
    fn parse_wildcard_and_literal_patterns() {
        let q = parse("[k | {k, _} <- <<protein, accession_num>>]").unwrap();
        if let Expr::Comp { qualifiers, .. } = q {
            if let Qualifier::Generator { pattern, .. } = &qualifiers[0] {
                assert_eq!(pattern.bound_vars(), vec!["k"]);
            } else {
                panic!("expected generator");
            }
        }
        let q2 = parse("[k | {'PEDRO', k} <- <<uprotein>>]").unwrap();
        assert!(matches!(q2, Expr::Comp { .. }));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("[k | k <- <<t>>] extra").is_err());
    }

    #[test]
    fn unbalanced_brackets_rejected() {
        assert!(parse("[k | k <- <<t>>").is_err());
        assert!(parse("{a, b").is_err());
        assert!(parse("<<a, >>").is_err());
    }

    #[test]
    fn scheme_with_three_parts() {
        let q = parse("<<sql, table, protein>>").unwrap();
        assert!(matches!(q, Expr::Scheme(ref s) if s.parts.len() == 3));
    }

    #[test]
    fn bag_union_and_difference_parse() {
        let q = parse("<<a>> ++ <<b>> -- <<c>>").unwrap();
        assert!(matches!(q, Expr::BinOp { .. }));
    }
}
