//! The columnar batch representation: typed column vectors, selection
//! bitmaps, and the batches that flow between physical operators.
//!
//! A [`Column`] stores one bound variable's values across a run of rows in a
//! typed vector when the values are homogeneous — `i64`s for ints, `f64`s for
//! floats, `Arc<str>`s for strings, one sub-column per slot for uniform-arity
//! tuples — and falls back to a boxed [`Value`] vector for mixed types (and
//! for types with no typed representation: bools, bags, `Null`). Filters and
//! hash-key extraction read the typed vectors directly instead of dispatching
//! on a `Value` enum per row; values are only materialised ("late") when a row
//! survives to the head projection or to a per-row fallback expression.
//!
//! Numeric columns are **never** widened across variants: a column holding
//! `Int`s that meets a `Float` degrades to [`Column::Boxed`], because the
//! engine must reproduce the row engine's output values bit for bit
//! (`Int(1)`, not `Float(1.0)`), not merely compare equal.

use crate::value::Value;
use std::sync::Arc;

/// Number of source rows per streamed batch: the first generator of a plan is
/// fed to the remaining operators in morsels of this many rows.
pub const BATCH_SIZE: usize = 1024;

/// A typed vector of one variable's values across a run of rows.
#[derive(Debug, Clone)]
pub(crate) enum Column {
    /// All values were `Value::Int`.
    Int(Vec<i64>),
    /// All values were `Value::Float`.
    Float(Vec<f64>),
    /// All values were `Value::Str`.
    Str(Vec<Arc<str>>),
    /// All values were tuples of the same arity: one sub-column per slot.
    /// Row count lives with the owning table/batch, not the column.
    Tuple { fields: Vec<Column> },
    /// Mixed types (or types with no typed column): boxed values.
    Boxed(Vec<Value>),
}

impl Column {
    /// Materialise the value at row `i` (late materialisation: only called for
    /// rows that survive to an output or a per-row fallback).
    pub(crate) fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str(v) => Value::Str(Arc::clone(&v[i])),
            Column::Tuple { fields } => Value::tuple(fields.iter().map(|f| f.value(i)).collect()),
            Column::Boxed(v) => v[i].clone(),
        }
    }

    /// A new column holding `base + idx[j]` for each `j` (the join-expansion
    /// gather; `base` offsets indices into a sliced view).
    pub(crate) fn gather(&self, base: usize, idx: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[base + i as usize]).collect()),
            Column::Float(v) => Column::Float(idx.iter().map(|&i| v[base + i as usize]).collect()),
            Column::Str(v) => Column::Str(
                idx.iter()
                    .map(|&i| Arc::clone(&v[base + i as usize]))
                    .collect(),
            ),
            Column::Tuple { fields } => Column::Tuple {
                fields: fields.iter().map(|f| f.gather(base, idx)).collect(),
            },
            Column::Boxed(v) => {
                Column::Boxed(idx.iter().map(|&i| v[base + i as usize].clone()).collect())
            }
        }
    }
}

/// Builds a [`Column`] incrementally, starting typed and degrading to
/// [`Column::Boxed`] the moment a value of a different shape arrives.
#[derive(Debug)]
pub(crate) enum ColumnBuilder {
    Empty,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
    Tuple {
        len: usize,
        fields: Vec<ColumnBuilder>,
    },
    Boxed(Vec<Value>),
}

impl ColumnBuilder {
    pub(crate) fn new() -> Self {
        ColumnBuilder::Empty
    }

    pub(crate) fn push(&mut self, v: &Value) {
        match (&mut *self, v) {
            (ColumnBuilder::Empty, Value::Int(i)) => *self = ColumnBuilder::Int(vec![*i]),
            (ColumnBuilder::Empty, Value::Float(f)) => *self = ColumnBuilder::Float(vec![*f]),
            (ColumnBuilder::Empty, Value::Str(s)) => {
                *self = ColumnBuilder::Str(vec![Arc::clone(s)])
            }
            (ColumnBuilder::Empty, Value::Tuple(items)) => {
                let mut fields: Vec<ColumnBuilder> =
                    (0..items.len()).map(|_| ColumnBuilder::new()).collect();
                for (f, item) in fields.iter_mut().zip(items.iter()) {
                    f.push(item);
                }
                *self = ColumnBuilder::Tuple { len: 1, fields };
            }
            (ColumnBuilder::Empty, other) => *self = ColumnBuilder::Boxed(vec![other.clone()]),
            (ColumnBuilder::Int(acc), Value::Int(i)) => acc.push(*i),
            (ColumnBuilder::Float(acc), Value::Float(f)) => acc.push(*f),
            (ColumnBuilder::Str(acc), Value::Str(s)) => acc.push(Arc::clone(s)),
            (ColumnBuilder::Tuple { len, fields }, Value::Tuple(items))
                if items.len() == fields.len() =>
            {
                for (f, item) in fields.iter_mut().zip(items.iter()) {
                    f.push(item);
                }
                *len += 1;
            }
            _ => {
                self.degrade().push(v.clone());
            }
        }
    }

    /// Convert to [`ColumnBuilder::Boxed`] in place, materialising everything
    /// pushed so far, and return the boxed vector for the pending push.
    fn degrade(&mut self) -> &mut Vec<Value> {
        if !matches!(self, ColumnBuilder::Boxed(_)) {
            let values = std::mem::replace(self, ColumnBuilder::Empty).into_values();
            *self = ColumnBuilder::Boxed(values);
        }
        match self {
            ColumnBuilder::Boxed(values) => values,
            _ => unreachable!("just degraded to Boxed"),
        }
    }

    fn into_values(self) -> Vec<Value> {
        match self {
            ColumnBuilder::Empty => Vec::new(),
            ColumnBuilder::Int(v) => v.into_iter().map(Value::Int).collect(),
            ColumnBuilder::Float(v) => v.into_iter().map(Value::Float).collect(),
            ColumnBuilder::Str(v) => v.into_iter().map(Value::Str).collect(),
            ColumnBuilder::Tuple { len, fields } => {
                let cols: Vec<Vec<Value>> = fields.into_iter().map(Self::into_values).collect();
                (0..len)
                    .map(|i| Value::tuple(cols.iter().map(|c| c[i].clone()).collect()))
                    .collect()
            }
            ColumnBuilder::Boxed(v) => v,
        }
    }

    pub(crate) fn finish(self) -> Column {
        match self {
            ColumnBuilder::Empty => Column::Boxed(Vec::new()),
            ColumnBuilder::Int(v) => Column::Int(v),
            ColumnBuilder::Float(v) => Column::Float(v),
            ColumnBuilder::Str(v) => Column::Str(v),
            ColumnBuilder::Tuple { fields, .. } => Column::Tuple {
                fields: fields.into_iter().map(Self::finish).collect(),
            },
            ColumnBuilder::Boxed(v) => Column::Boxed(v),
        }
    }
}

/// A selection bitmap over a batch's rows: filters clear bits instead of
/// rewriting columns, and chained filters AND into the same bitmap. Rows are
/// compacted (gathered dense) only when a downstream operator needs aligned
/// columns again (a join expansion or a `let` binding).
#[derive(Debug, Clone)]
pub(crate) struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub(crate) fn all_set(len: usize) -> Bitmap {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    #[cfg(test)]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of selected rows.
    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub(crate) fn is_all_set(&self) -> bool {
        self.count() == self.len
    }

    /// Clear every selected bit whose index fails `keep` (the filter-kernel
    /// primitive: rejections AND into the existing selection).
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for wi in 0..self.words.len() {
            let mut word = self.words[wi];
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !keep(wi * 64 + bit) {
                    word &= !(1u64 << bit);
                }
            }
            self.words[wi] = word;
        }
    }

    /// Indices of the selected rows, in row order.
    pub(crate) fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

/// A view of one column over a contiguous row range (`start..start + len` of
/// the underlying column). Slicing a decomposed source into morsels is a
/// refcount bump; only join expansions gather fresh columns.
#[derive(Debug, Clone)]
pub(crate) struct ColRef {
    pub(crate) col: Arc<Column>,
    pub(crate) start: usize,
}

impl ColRef {
    pub(crate) fn whole(col: Arc<Column>) -> ColRef {
        ColRef { col, start: 0 }
    }

    pub(crate) fn value(&self, i: usize) -> Value {
        self.col.value(self.start + i)
    }

    pub(crate) fn gather(&self, idx: &[u32]) -> ColRef {
        ColRef::whole(Arc::new(self.col.gather(self.start, idx)))
    }
}

/// A batch of rows flowing through the physical operators: named columns in
/// **binding order** (a later column shadows an earlier one of the same name,
/// and all of them shadow the incoming environment) plus the selection bitmap.
#[derive(Debug, Clone)]
pub(crate) struct Batch {
    pub(crate) len: usize,
    pub(crate) cols: Vec<(Arc<str>, ColRef)>,
    pub(crate) sel: Bitmap,
}

impl Batch {
    /// The single-row, zero-column batch every plan starts from: it stands for
    /// the incoming environment (whose bindings resolve through the `Env`).
    pub(crate) fn unit() -> Batch {
        Batch {
            len: 1,
            cols: Vec::new(),
            sel: Bitmap::all_set(1),
        }
    }

    /// The visible column for `name`: the **last** binding wins, mirroring
    /// environment shadowing.
    pub(crate) fn col(&self, name: &str) -> Option<&ColRef> {
        self.cols
            .iter()
            .rev()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, c)| c)
    }

    /// Indices of the selected rows.
    pub(crate) fn selected(&self) -> Vec<u32> {
        self.sel.ones().map(|i| i as u32).collect()
    }

    /// Gather the selected rows into a dense batch (all bits set), so every
    /// column is aligned again for expansion or appending.
    pub(crate) fn compact(self) -> Batch {
        if self.sel.is_all_set() {
            return self;
        }
        let idx = self.selected();
        let cols = self
            .cols
            .into_iter()
            .map(|(name, col)| (name, col.gather(&idx)))
            .collect();
        Batch {
            len: idx.len(),
            cols,
            sel: Bitmap::all_set(idx.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_int_columns_typed() {
        let mut b = ColumnBuilder::new();
        for i in 0..5 {
            b.push(&Value::Int(i));
        }
        let col = b.finish();
        assert!(matches!(col, Column::Int(_)));
        assert_eq!(col.value(3), Value::Int(3));
    }

    #[test]
    fn builder_degrades_mixed_types_to_boxed() {
        let mut b = ColumnBuilder::new();
        b.push(&Value::Int(1));
        b.push(&Value::str("x"));
        let col = b.finish();
        assert!(matches!(col, Column::Boxed(_)));
        assert_eq!(col.value(0), Value::Int(1));
        assert_eq!(col.value(1), Value::str("x"));
    }

    #[test]
    fn builder_degrades_int_meeting_float_to_boxed() {
        // Int + Float must not widen: output values keep their variants.
        let mut b = ColumnBuilder::new();
        b.push(&Value::Int(1));
        b.push(&Value::Float(2.5));
        let col = b.finish();
        assert!(matches!(col, Column::Boxed(_)));
        assert_eq!(col.value(0), Value::Int(1));
        assert_eq!(col.value(1), Value::Float(2.5));
    }

    #[test]
    fn builder_splits_uniform_tuples_into_field_columns() {
        let mut b = ColumnBuilder::new();
        b.push(&Value::pair(Value::Int(1), Value::str("a")));
        b.push(&Value::pair(Value::Int(2), Value::str("b")));
        let col = b.finish();
        let Column::Tuple { fields } = &col else {
            panic!("expected a tuple column");
        };
        assert!(matches!(fields[0], Column::Int(_)));
        assert!(matches!(fields[1], Column::Str(_)));
        assert_eq!(col.value(1), Value::pair(Value::Int(2), Value::str("b")));
    }

    #[test]
    fn builder_degrades_mixed_arity_tuples() {
        let mut b = ColumnBuilder::new();
        b.push(&Value::pair(Value::Int(1), Value::Int(2)));
        b.push(&Value::tuple(vec![Value::Int(3)]));
        let col = b.finish();
        assert!(matches!(col, Column::Boxed(_)));
        assert_eq!(col.value(0), Value::pair(Value::Int(1), Value::Int(2)));
        assert_eq!(col.value(1), Value::tuple(vec![Value::Int(3)]));
    }

    #[test]
    fn bitmap_tracks_partial_last_word() {
        let mut bm = Bitmap::all_set(70);
        assert_eq!(bm.count(), 70);
        bm.clear(0);
        bm.clear(69);
        assert_eq!(bm.count(), 68);
        assert!(!bm.get(69));
        assert_eq!(bm.ones().next(), Some(1));
        assert_eq!(bm.ones().last(), Some(68));
    }

    #[test]
    fn gather_respects_slice_offsets() {
        let col = Arc::new(Column::Int((0..10).collect()));
        let slice = ColRef { col, start: 4 };
        let gathered = slice.gather(&[0, 2, 3]);
        assert_eq!(gathered.value(0), Value::Int(4));
        assert_eq!(gathered.value(1), Value::Int(6));
        assert_eq!(gathered.value(2), Value::Int(7));
    }
}
