//! The vectorised columnar executor.
//!
//! [`ColumnarPlan::compile`] lowers a logical step list (see
//! [`crate::plan::Step`]) into columnar operators: plan-time-materialised
//! sources (scans, reordered/greedy/bushy join results) are decomposed into
//! [`SourceTable`]s **once per plan**, hash-join build sides become
//! pre-decomposed [`ProbeTable`]s, filters compile to typed kernels, and the
//! head to a column projection. [`exec`] then streams the leading source in
//! [`BATCH_SIZE`]-row morsels through the operator pipeline, producing the
//! same bag — order and multiplicities included — the recursive row engine
//! produces for the same steps.
//!
//! # Fallback contract
//!
//! `compile` returns `None` (plan ineligible, the row engine runs) when a
//! generator source is open (free variables) or parameter-dependent: those
//! sources must be re-evaluated per incoming row, which is exactly the row
//! engine's shape. At execution time, **any** [`EvalError`] aborts the
//! columnar run; the caller discards the partial result and re-runs the whole
//! plan through the row engine, so surfaced errors (and the depth-first order
//! they are raised in) are always the row engine's own.

use crate::ast::{Expr, Pattern};
use crate::env::Env;
use crate::error::EvalError;
use crate::eval::{Evaluator, ExtentProvider};
use crate::index::PointIndex;
use crate::physical::column::{Batch, Bitmap, ColRef, BATCH_SIZE};
use crate::physical::ops::{
    self, compile_pred, compile_proj, CPred, CProj, ProbeTable, SourceTable, TableBuilder,
};
use crate::plan::Step;
use crate::rewrite;
use crate::value::{Bag, Value};
use std::sync::Arc;

/// One columnar operator, lowered from one logical [`Step`].
pub(crate) enum COp {
    /// A source fully materialised at compile time (scan, ordered/greedy/bushy
    /// join result): expand each incoming row by the table's rows.
    Source(Arc<SourceTable>),
    /// A closed generator source, evaluated and decomposed **once per
    /// execution** — lazily, on the first batch that reaches it with a
    /// selected row, so a pipeline that filters everything out never
    /// evaluates it (matching the row engine, where no row reaches the step).
    IterateClosed { pattern: Pattern, source: Expr },
    /// A hash-join probe against a pre-decomposed build side.
    HashProbe {
        probe_vars: Vec<String>,
        table: Arc<ProbeTable>,
    },
    /// A point-lookup probe: the key expressions (parameters/literals only)
    /// are evaluated once per execution and one bucket is decomposed.
    IndexProbe {
        pattern: Pattern,
        key_exprs: Vec<Expr>,
        index: Arc<PointIndex>,
    },
    /// A compiled filter predicate.
    Filter(CPred),
    /// A `let` qualifier.
    Bind { pattern: Pattern, value: Expr },
}

/// A logical plan lowered to columnar operators plus a compiled head
/// projection. Compiled lazily per plan (see `Plan::columnar`) and shared by
/// every execution of that plan.
pub(crate) struct ColumnarPlan {
    pub(crate) ops: Vec<COp>,
    pub(crate) head: CProj,
}

impl ColumnarPlan {
    /// Lower `steps` + `head`, or `None` when some generator source is open or
    /// parameter-dependent (the "param-opaque/open sources stay on the row
    /// engine" rule).
    pub(crate) fn compile(steps: &[Step], head: &Expr) -> Option<ColumnarPlan> {
        let mut ops = Vec::with_capacity(steps.len());
        for step in steps {
            let op = match step {
                Step::Iterate { pattern, source } => {
                    if !rewrite::free_vars(source).is_empty()
                        || !rewrite::collect_params(source).is_empty()
                    {
                        return None;
                    }
                    COp::IterateClosed {
                        pattern: pattern.clone(),
                        source: source.clone(),
                    }
                }
                Step::Scan { pattern, bag } => {
                    COp::Source(Arc::new(ops::decompose_single(pattern, bag.iter())))
                }
                Step::OrderedJoin { outer, inner, rows } => {
                    let pats = [outer, inner];
                    let mut tb = TableBuilder::new(&pats);
                    for row in rows.iter() {
                        tb.push_row(&pats, |k| if k == 0 { &row.0 } else { &row.1 });
                    }
                    COp::Source(Arc::new(tb.finish()))
                }
                Step::MultiJoin { patterns, rows } | Step::BushyJoin { patterns, rows } => {
                    let pats: Vec<&Pattern> = patterns.iter().collect();
                    let mut tb = TableBuilder::new(&pats);
                    for row in rows.iter() {
                        tb.push_row(&pats, |k| &row[k]);
                    }
                    COp::Source(Arc::new(tb.finish()))
                }
                Step::HashJoin {
                    pattern,
                    probe_vars,
                    index,
                } => COp::HashProbe {
                    probe_vars: probe_vars.clone(),
                    table: Arc::new(ProbeTable::build(pattern, index)),
                },
                Step::IndexLookup {
                    pattern,
                    key_exprs,
                    index,
                } => {
                    // The once-per-execution key evaluation is only sound for
                    // row-invariant keys; the planner only emits params and
                    // literals here, but pin it structurally.
                    if !key_exprs
                        .iter()
                        .all(|e| matches!(e, Expr::Param(_) | Expr::Lit(_)))
                    {
                        return None;
                    }
                    COp::IndexProbe {
                        pattern: pattern.clone(),
                        key_exprs: key_exprs.clone(),
                        index: Arc::clone(index),
                    }
                }
                Step::Filter(expr) => COp::Filter(compile_pred(expr)),
                Step::Bind { pattern, value } => COp::Bind {
                    pattern: pattern.clone(),
                    value: value.clone(),
                },
            };
            ops.push(op);
        }
        Some(ColumnarPlan {
            ops,
            head: compile_proj(head),
        })
    }
}

/// Per-execution operator state: the lazily evaluated source tables of
/// `IterateClosed`/`IndexProbe` ops, memoised by op position so later morsels
/// (and later incoming rows) reuse the first evaluation.
struct ExecState {
    tables: Vec<Option<Arc<SourceTable>>>,
}

/// Execute a compiled columnar plan, returning the result bag. Any error
/// aborts the run; the caller falls back to the row engine (see the module
/// docs for the contract).
pub(crate) fn exec<P: ExtentProvider>(
    ev: &Evaluator<P>,
    plan: &ColumnarPlan,
    env: &Env,
) -> Result<Bag, EvalError> {
    let mut out = Bag::empty();
    let mut state = ExecState {
        tables: (0..plan.ops.len()).map(|_| None).collect(),
    };
    run_ops(ev, plan, 0, Batch::unit(), env, &mut state, &mut out)?;
    Ok(out)
}

fn run_ops<P: ExtentProvider>(
    ev: &Evaluator<P>,
    plan: &ColumnarPlan,
    depth: usize,
    batch: Batch,
    env: &Env,
    state: &mut ExecState,
    out: &mut Bag,
) -> Result<(), EvalError> {
    if batch.sel.count() == 0 {
        return Ok(());
    }
    let Some(op) = plan.ops.get(depth) else {
        return ops::project(ev, &plan.head, &batch, env, out);
    };
    match op {
        COp::Filter(pred) => {
            let mut batch = batch;
            ops::apply_filter(ev, pred, &mut batch, env)?;
            run_ops(ev, plan, depth + 1, batch, env, state, out)
        }
        COp::Bind { pattern, value } => {
            let batch = ops::apply_bind(ev, pattern, value, batch.compact(), env)?;
            run_ops(ev, plan, depth + 1, batch, env, state, out)
        }
        COp::HashProbe { probe_vars, table } => {
            let batch = ops::apply_probe(probe_vars, table, batch.compact(), env)?;
            run_ops(ev, plan, depth + 1, batch, env, state, out)
        }
        COp::Source(table) => {
            let table = Arc::clone(table);
            expand_source(ev, plan, depth, batch.compact(), &table, env, state, out)
        }
        COp::IterateClosed { pattern, source } => {
            let table = match &state.tables[depth] {
                Some(table) => Arc::clone(table),
                None => {
                    let bag = ev.eval(source, env)?.expect_bag()?;
                    let table = Arc::new(ops::decompose_single(pattern, bag.iter()));
                    state.tables[depth] = Some(Arc::clone(&table));
                    table
                }
            };
            expand_source(ev, plan, depth, batch.compact(), &table, env, state, out)
        }
        COp::IndexProbe {
            pattern,
            key_exprs,
            index,
        } => {
            let table = match &state.tables[depth] {
                Some(table) => Arc::clone(table),
                None => {
                    // An empty index means no source element matched the
                    // pattern: the row engine returns before evaluating the
                    // key expressions, so an unbound `?param` raises no error.
                    let table = if index.buckets.is_empty() {
                        Arc::new(ops::decompose_single(pattern, std::iter::empty()))
                    } else {
                        let mut parts = Vec::with_capacity(key_exprs.len());
                        for expr in key_exprs {
                            parts.push(ev.eval(expr, env)?);
                        }
                        let bucket = index.buckets.get(&composite_key(parts));
                        Arc::new(ops::decompose_single(pattern, bucket.into_iter().flatten()))
                    };
                    state.tables[depth] = Some(Arc::clone(&table));
                    table
                }
            };
            expand_source(ev, plan, depth, batch.compact(), &table, env, state, out)
        }
    }
}

/// The keys `HashProbe`/`IndexProbe` buckets are stored under: a single
/// component stays bare, several become a tuple (mirrors the row engine's
/// `composite_key`).
fn composite_key(mut parts: Vec<Value>) -> Value {
    if parts.len() == 1 {
        parts.pop().expect("one component")
    } else {
        Value::tuple(parts)
    }
}

/// Expand every row of a **dense** batch by all of `table`'s rows
/// (outer-major, preserving nested-loop order), streaming the table in
/// [`BATCH_SIZE`]-row morsels. Table column slices are zero-copy `Arc`
/// references; only the input row's columns are broadcast.
#[allow(clippy::too_many_arguments)]
fn expand_source<P: ExtentProvider>(
    ev: &Evaluator<P>,
    plan: &ColumnarPlan,
    depth: usize,
    batch: Batch,
    table: &SourceTable,
    env: &Env,
    state: &mut ExecState,
    out: &mut Bag,
) -> Result<(), EvalError> {
    if table.len == 0 {
        return Ok(());
    }
    for i in 0..batch.len {
        let mut start = 0;
        while start < table.len {
            let len = BATCH_SIZE.min(table.len - start);
            let mut cols: Vec<(Arc<str>, ColRef)> =
                Vec::with_capacity(batch.cols.len() + table.cols.len());
            if !batch.cols.is_empty() {
                let idx = vec![i as u32; len];
                cols.extend(
                    batch
                        .cols
                        .iter()
                        .map(|(name, col)| (Arc::clone(name), col.gather(&idx))),
                );
            }
            cols.extend(table.cols.iter().map(|(name, col)| {
                (
                    Arc::clone(name),
                    ColRef {
                        col: Arc::clone(col),
                        start,
                    },
                )
            }));
            run_ops(
                ev,
                plan,
                depth + 1,
                Batch {
                    len,
                    cols,
                    sel: Bitmap::all_set(len),
                },
                env,
                state,
                out,
            )?;
            start += len;
        }
    }
    Ok(())
}
