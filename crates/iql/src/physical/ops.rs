//! Physical operator building blocks for the columnar engine: pattern
//! decomposition into [`SourceTable`]s, pre-decomposed hash-probe tables,
//! compiled filter predicates with typed comparison kernels, and compiled
//! head projections.
//!
//! Everything here is compiled **from** the logical plan's steps — the
//! decomposition of a pattern against a row is the same all-or-nothing match
//! [`crate::env::match_pattern`] performs, done once per source instead of
//! once per probe.

use crate::ast::{BinOp, Expr, Pattern};
use crate::env::{literal_value, Env};
use crate::error::EvalError;
use crate::eval::{Evaluator, ExtentProvider};
use crate::physical::column::{Batch, Bitmap, ColRef, Column, ColumnBuilder};
use crate::value::{Bag, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A source decomposed into columns: one column per variable the source's
/// pattern(s) bind, in pattern-traversal order (so duplicate names shadow
/// correctly when resolved back to front). Rows that failed the pattern match
/// are excluded at decomposition time.
#[derive(Debug)]
pub(crate) struct SourceTable {
    pub(crate) len: usize,
    pub(crate) cols: Vec<(Arc<str>, Arc<Column>)>,
}

/// Does `value` match `pattern`? The same decision
/// [`crate::env::match_pattern`] makes, without binding.
pub(crate) fn matches(pattern: &Pattern, value: &Value) -> bool {
    match pattern {
        Pattern::Wildcard | Pattern::Var(_) => true,
        Pattern::Lit(lit) => literal_value(lit) == *value,
        Pattern::Tuple(parts) => match value {
            Value::Tuple(items) => {
                items.len() == parts.len()
                    && parts.iter().zip(items.iter()).all(|(p, v)| matches(p, v))
            }
            _ => false,
        },
    }
}

fn collect_binders(pattern: &Pattern, out: &mut Vec<Arc<str>>) {
    match pattern {
        Pattern::Var(name) => out.push(Arc::from(name.as_str())),
        Pattern::Tuple(parts) => parts.iter().for_each(|p| collect_binders(p, out)),
        Pattern::Wildcard | Pattern::Lit(_) => {}
    }
}

fn push_bindings(
    builders: &mut [ColumnBuilder],
    next: &mut usize,
    pattern: &Pattern,
    value: &Value,
) {
    match pattern {
        Pattern::Var(_) => {
            builders[*next].push(value);
            *next += 1;
        }
        Pattern::Tuple(parts) => {
            if let Value::Tuple(items) = value {
                for (p, v) in parts.iter().zip(items.iter()) {
                    push_bindings(builders, next, p, v);
                }
            }
        }
        Pattern::Wildcard | Pattern::Lit(_) => {}
    }
}

/// Builds a [`SourceTable`] by matching rows against a fixed pattern list.
pub(crate) struct TableBuilder {
    names: Vec<Arc<str>>,
    builders: Vec<ColumnBuilder>,
    len: usize,
}

impl TableBuilder {
    pub(crate) fn new(patterns: &[&Pattern]) -> TableBuilder {
        let mut names = Vec::new();
        for p in patterns {
            collect_binders(p, &mut names);
        }
        let builders = (0..names.len()).map(|_| ColumnBuilder::new()).collect();
        TableBuilder {
            names,
            builders,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Match one row (`val(i)` is the value for `patterns[i]`) and, on success,
    /// append its bindings. Returns whether the row matched.
    pub(crate) fn push_row<'v>(
        &mut self,
        patterns: &[&Pattern],
        val: impl Fn(usize) -> &'v Value,
    ) -> bool {
        if !patterns.iter().enumerate().all(|(i, p)| matches(p, val(i))) {
            return false;
        }
        let mut next = 0;
        for (i, p) in patterns.iter().enumerate() {
            push_bindings(&mut self.builders, &mut next, p, val(i));
        }
        self.len += 1;
        true
    }

    pub(crate) fn finish(self) -> SourceTable {
        SourceTable {
            len: self.len,
            cols: self
                .names
                .into_iter()
                .zip(self.builders)
                .map(|(name, b)| (name, Arc::new(b.finish())))
                .collect(),
        }
    }
}

/// Decompose a single-pattern source (a scan, an evaluated generator source,
/// or one index bucket) into columns.
pub(crate) fn decompose_single<'v>(
    pattern: &Pattern,
    items: impl IntoIterator<Item = &'v Value>,
) -> SourceTable {
    let mut tb = TableBuilder::new(&[pattern]);
    for item in items {
        tb.push_row(&[pattern], |_| item);
    }
    tb.finish()
}

/// A hash-join build side decomposed once at compile time: the buckets'
/// elements are concatenated into one [`SourceTable`] (bucket-internal order
/// preserved) and each key maps to its `(offset, len)` run.
#[derive(Debug)]
pub(crate) struct ProbeTable {
    pub(crate) buckets: HashMap<Value, (u32, u32)>,
    pub(crate) table: SourceTable,
}

impl ProbeTable {
    pub(crate) fn build(pattern: &Pattern, index: &HashMap<Value, Vec<Value>>) -> ProbeTable {
        let mut tb = TableBuilder::new(&[pattern]);
        let mut buckets = HashMap::with_capacity(index.len());
        for (key, bucket) in index {
            let start = tb.len() as u32;
            for element in bucket {
                // Build-side elements were pattern-matched when the index was
                // built, so every row matches again here; a defensive miss
                // merely shortens the run.
                tb.push_row(&[pattern], |_| element);
            }
            let len = tb.len() as u32 - start;
            if len > 0 {
                buckets.insert(key.clone(), (start, len));
            }
        }
        ProbeTable {
            buckets,
            table: tb.finish(),
        }
    }
}

/// The environment the row engine would see at row `i` of `batch`: the base
/// environment plus every batch column bound in binding order (used by
/// per-row fallback expressions).
pub(crate) fn row_env(base: &Env, batch: &Batch, i: usize) -> Env {
    let mut env = base.clone();
    for (name, col) in &batch.cols {
        env.bind(name.as_ref(), col.value(i));
    }
    env
}

/// A comparison operator of a compiled filter kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn from_binop(op: BinOp) -> Option<CmpOp> {
        Some(match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Neq => CmpOp::Neq,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            _ => return None,
        })
    }

    fn accepts(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Neq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// One operand of a compiled comparison.
#[derive(Debug, Clone)]
pub(crate) enum COperand {
    /// A variable, resolved against the batch's columns (then the base
    /// environment) at execution time.
    Var(String),
    /// A literal constant.
    Lit(Value),
    /// A `?param`, resolved against the execution's parameter set.
    Param(String),
}

/// A compiled filter predicate.
///
/// `Cmp` runs as a typed kernel over column slices. `And` only exists when
/// **both** sides compiled to kernels: [`Value`]'s ordering is total, so
/// evaluating the right side for rows the left side rejected cannot introduce
/// an error the row engine's short-circuit would have skipped. Everything
/// else — boolean connectives over non-kernel operands, function calls,
/// arithmetic — compiles to `Fallback` and evaluates row-at-a-time under a
/// reconstructed environment.
#[derive(Debug, Clone)]
pub(crate) enum CPred {
    Cmp {
        op: CmpOp,
        lhs: COperand,
        rhs: COperand,
    },
    And(Box<CPred>, Box<CPred>),
    Fallback(Expr),
}

fn compile_operand(expr: &Expr) -> Option<COperand> {
    match expr {
        Expr::Var(name) => Some(COperand::Var(name.clone())),
        Expr::Lit(lit) => Some(COperand::Lit(literal_value(lit))),
        Expr::Param(name) => Some(COperand::Param(name.clone())),
        _ => None,
    }
}

fn compile_pred_strict(expr: &Expr) -> Option<CPred> {
    match expr {
        Expr::BinOp { op, lhs, rhs } => {
            if *op == BinOp::And {
                let l = compile_pred_strict(lhs)?;
                let r = compile_pred_strict(rhs)?;
                return Some(CPred::And(Box::new(l), Box::new(r)));
            }
            let op = CmpOp::from_binop(*op)?;
            Some(CPred::Cmp {
                op,
                lhs: compile_operand(lhs)?,
                rhs: compile_operand(rhs)?,
            })
        }
        _ => None,
    }
}

/// Compile a filter expression, falling back to per-row evaluation when it is
/// not a conjunction of comparisons over variables, literals and parameters.
pub(crate) fn compile_pred(expr: &Expr) -> CPred {
    compile_pred_strict(expr).unwrap_or_else(|| CPred::Fallback(expr.clone()))
}

/// An operand resolved against a concrete batch.
enum Resolved<'a> {
    Col(&'a ColRef),
    Const(Value),
}

impl Resolved<'_> {
    fn value(&self, i: usize) -> Value {
        match self {
            Resolved::Col(c) => c.value(i),
            Resolved::Const(v) => v.clone(),
        }
    }
}

fn resolve<'a>(operand: &COperand, batch: &'a Batch, env: &Env) -> Result<Resolved<'a>, EvalError> {
    match operand {
        COperand::Var(name) => {
            if let Some(col) = batch.col(name) {
                Ok(Resolved::Col(col))
            } else if let Some(v) = env.get(name) {
                Ok(Resolved::Const(v.clone()))
            } else {
                Err(EvalError::UnboundVariable(name.clone()))
            }
        }
        COperand::Lit(v) => Ok(Resolved::Const(v.clone())),
        COperand::Param(name) => env
            .param(name)
            .cloned()
            .map(Resolved::Const)
            .ok_or_else(|| EvalError::UnboundParam(name.clone())),
    }
}

/// [`Value`]'s total float ordering (`NaN` equal to every float).
fn float_ord(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// Run one comparison kernel, clearing rejected rows from `sel`. Typed column
/// pairs compare over the raw vectors; anything else materialises values and
/// uses [`Value`]'s total ordering — either way the decision matches the row
/// engine's `=`/`<`/… exactly, and neither can error.
fn filter_cmp(op: CmpOp, lhs: &Resolved<'_>, rhs: &Resolved<'_>, sel: &mut Bitmap) {
    use Column::{Float, Int, Str};
    match (lhs, rhs) {
        (Resolved::Col(l), Resolved::Const(c)) => match (&*l.col, c) {
            (Int(v), Value::Int(k)) => {
                let (s, k) = (l.start, *k);
                return sel.retain(|i| op.accepts(v[s + i].cmp(&k)));
            }
            (Int(v), Value::Float(k)) => {
                let (s, k) = (l.start, *k);
                return sel.retain(|i| op.accepts(float_ord(v[s + i] as f64, k)));
            }
            (Float(v), Value::Int(k)) => {
                let (s, k) = (l.start, *k as f64);
                return sel.retain(|i| op.accepts(float_ord(v[s + i], k)));
            }
            (Float(v), Value::Float(k)) => {
                let (s, k) = (l.start, *k);
                return sel.retain(|i| op.accepts(float_ord(v[s + i], k)));
            }
            (Str(v), Value::Str(k)) => {
                let s = l.start;
                return sel.retain(|i| op.accepts(v[s + i].as_ref().cmp(k.as_ref())));
            }
            _ => {}
        },
        (Resolved::Const(_), Resolved::Col(_)) => {
            // Flip the comparison so the column side drives the typed loop.
            let flipped = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                CmpOp::Eq | CmpOp::Neq => op,
            };
            return filter_cmp(flipped, rhs, lhs, sel);
        }
        (Resolved::Col(l), Resolved::Col(r)) => match (&*l.col, &*r.col) {
            (Int(a), Int(b)) => {
                let (ls, rs) = (l.start, r.start);
                return sel.retain(|i| op.accepts(a[ls + i].cmp(&b[rs + i])));
            }
            (Float(a), Float(b)) => {
                let (ls, rs) = (l.start, r.start);
                return sel.retain(|i| op.accepts(float_ord(a[ls + i], b[rs + i])));
            }
            (Int(a), Float(b)) => {
                let (ls, rs) = (l.start, r.start);
                return sel.retain(|i| op.accepts(float_ord(a[ls + i] as f64, b[rs + i])));
            }
            (Float(a), Int(b)) => {
                let (ls, rs) = (l.start, r.start);
                return sel.retain(|i| op.accepts(float_ord(a[ls + i], b[rs + i] as f64)));
            }
            (Str(a), Str(b)) => {
                let (ls, rs) = (l.start, r.start);
                return sel.retain(|i| op.accepts(a[ls + i].as_ref().cmp(b[rs + i].as_ref())));
            }
            _ => {}
        },
        (Resolved::Const(a), Resolved::Const(b)) => {
            // Row-invariant comparison: decide once.
            if !op.accepts(a.cmp(b)) {
                sel.retain(|_| false);
            }
            return;
        }
    }
    // Generic loop: late-materialise each side and use the total ordering.
    sel.retain(|i| op.accepts(lhs.value(i).cmp(&rhs.value(i))));
}

/// Apply a compiled filter to `batch`, ANDing rejections into its selection
/// bitmap (no compaction — chained filters carry the same bitmap).
pub(crate) fn apply_filter<P: ExtentProvider>(
    ev: &Evaluator<P>,
    pred: &CPred,
    batch: &mut Batch,
    env: &Env,
) -> Result<(), EvalError> {
    match pred {
        CPred::Cmp { op, lhs, rhs } => {
            // The kernel reads columns and writes the bitmap: split the
            // borrows by taking the bitmap out for the duration.
            let mut sel = std::mem::replace(&mut batch.sel, Bitmap::all_set(0));
            let resolved =
                resolve(lhs, batch, env).and_then(|l| Ok((l, resolve(rhs, batch, env)?)));
            match resolved {
                Ok((lhs, rhs)) => filter_cmp(*op, &lhs, &rhs, &mut sel),
                Err(e) => {
                    batch.sel = sel;
                    return Err(e);
                }
            }
            batch.sel = sel;
            Ok(())
        }
        CPred::And(l, r) => {
            apply_filter(ev, l, batch, env)?;
            apply_filter(ev, r, batch, env)
        }
        CPred::Fallback(expr) => {
            let idx: Vec<usize> = batch.sel.ones().collect();
            for i in idx {
                if !ev.eval(expr, &row_env(env, batch, i))?.as_bool()? {
                    batch.sel.clear(i);
                }
            }
            Ok(())
        }
    }
}

/// A compiled head projection: how each output value is assembled from the
/// final batch. Anything beyond nested tuples of variables and literals makes
/// the whole head a `Fallback` evaluated per surviving row.
#[derive(Debug, Clone)]
pub(crate) enum CProj {
    Var(String),
    Lit(Value),
    Tuple(Vec<CProj>),
    Fallback(Expr),
}

fn compile_proj_strict(expr: &Expr) -> Option<CProj> {
    match expr {
        Expr::Var(name) => Some(CProj::Var(name.clone())),
        Expr::Lit(lit) => Some(CProj::Lit(literal_value(lit))),
        Expr::Tuple(items) => Some(CProj::Tuple(
            items
                .iter()
                .map(compile_proj_strict)
                .collect::<Option<Vec<_>>>()?,
        )),
        _ => None,
    }
}

pub(crate) fn compile_proj(expr: &Expr) -> CProj {
    compile_proj_strict(expr).unwrap_or_else(|| CProj::Fallback(expr.clone()))
}

/// A projection resolved against a concrete batch.
enum RProj<'a> {
    Col(&'a ColRef),
    Const(Value),
    Tuple(Vec<RProj<'a>>),
}

impl RProj<'_> {
    fn value(&self, i: usize) -> Value {
        match self {
            RProj::Col(c) => c.value(i),
            RProj::Const(v) => v.clone(),
            RProj::Tuple(items) => Value::tuple(items.iter().map(|p| p.value(i)).collect()),
        }
    }
}

fn resolve_proj<'a>(proj: &CProj, batch: &'a Batch, env: &Env) -> Result<RProj<'a>, EvalError> {
    match proj {
        CProj::Var(name) => {
            if let Some(col) = batch.col(name) {
                Ok(RProj::Col(col))
            } else if let Some(v) = env.get(name) {
                Ok(RProj::Const(v.clone()))
            } else {
                Err(EvalError::UnboundVariable(name.clone()))
            }
        }
        CProj::Lit(v) => Ok(RProj::Const(v.clone())),
        CProj::Tuple(items) => Ok(RProj::Tuple(
            items
                .iter()
                .map(|p| resolve_proj(p, batch, env))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        CProj::Fallback(_) => unreachable!("fallback heads never resolve"),
    }
}

/// Project every selected row of `batch` into `out`, in row order.
pub(crate) fn project<P: ExtentProvider>(
    ev: &Evaluator<P>,
    proj: &CProj,
    batch: &Batch,
    env: &Env,
    out: &mut Bag,
) -> Result<(), EvalError> {
    if let CProj::Fallback(expr) = proj {
        for i in batch.sel.ones() {
            out.push(ev.eval(expr, &row_env(env, batch, i))?);
        }
        return Ok(());
    }
    let resolved = resolve_proj(proj, batch, env)?;
    for i in batch.sel.ones() {
        out.push(resolved.value(i));
    }
    Ok(())
}

/// Evaluate a `let` binding per row of a **dense** batch: rows whose value
/// fails the pattern are dropped, matching rows gain the pattern's columns.
pub(crate) fn apply_bind<P: ExtentProvider>(
    ev: &Evaluator<P>,
    pattern: &Pattern,
    value: &Expr,
    batch: Batch,
    env: &Env,
) -> Result<Batch, EvalError> {
    debug_assert!(batch.sel.is_all_set(), "bind expects a compacted batch");
    // A projection-shaped value (nested tuples of vars/lits) evaluates
    // straight off the columns; anything else reconstructs a row environment.
    let fast = match compile_proj_strict(value) {
        Some(proj) => Some(resolve_proj(&proj, &batch, env)?),
        None => None,
    };
    let mut tb = TableBuilder::new(&[pattern]);
    let mut keep: Vec<u32> = Vec::with_capacity(batch.len);
    for i in 0..batch.len {
        let v = match &fast {
            Some(proj) => proj.value(i),
            None => ev.eval(value, &row_env(env, &batch, i))?,
        };
        if tb.push_row(&[pattern], |_| &v) {
            keep.push(i as u32);
        }
    }
    let table = tb.finish();
    let mut cols: Vec<(Arc<str>, ColRef)> = if keep.len() == batch.len {
        batch.cols
    } else {
        batch
            .cols
            .into_iter()
            .map(|(name, col)| (name, col.gather(&keep)))
            .collect()
    };
    cols.extend(
        table
            .cols
            .into_iter()
            .map(|(name, col)| (name, ColRef::whole(col))),
    );
    Ok(Batch {
        len: keep.len(),
        cols,
        sel: Bitmap::all_set(keep.len()),
    })
}

/// Probe a pre-decomposed hash-join table with each row of a **dense** batch:
/// each input row expands to its bucket run's rows (bucket order preserved),
/// gaining the build pattern's columns.
pub(crate) fn apply_probe(
    probe_vars: &[String],
    table: &ProbeTable,
    batch: Batch,
    env: &Env,
) -> Result<Batch, EvalError> {
    debug_assert!(batch.sel.is_all_set(), "probe expects a compacted batch");
    let operands: Vec<Resolved<'_>> = probe_vars
        .iter()
        .map(|var| {
            if let Some(col) = batch.col(var) {
                Ok(Resolved::Col(col))
            } else if let Some(v) = env.get(var) {
                Ok(Resolved::Const(v.clone()))
            } else {
                Err(EvalError::UnboundVariable(var.clone()))
            }
        })
        .collect::<Result<_, EvalError>>()?;
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    for i in 0..batch.len {
        let key = if operands.len() == 1 {
            operands[0].value(i)
        } else {
            Value::tuple(operands.iter().map(|o| o.value(i)).collect())
        };
        if let Some(&(off, cnt)) = table.buckets.get(&key) {
            for j in 0..cnt {
                left.push(i as u32);
                right.push(off + j);
            }
        }
    }
    drop(operands);
    let mut cols: Vec<(Arc<str>, ColRef)> = batch
        .cols
        .into_iter()
        .map(|(name, col)| (name, col.gather(&left)))
        .collect();
    cols.extend(table.table.cols.iter().map(|(name, col)| {
        (
            Arc::clone(name),
            ColRef::whole(Arc::new(col.gather(0, &right))),
        )
    }));
    Ok(Batch {
        len: left.len(),
        cols,
        sel: Bitmap::all_set(left.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;

    fn int(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn decompose_excludes_non_matching_rows() {
        let pat = Pattern::Tuple(vec![
            Pattern::Lit(Literal::Int(1)),
            Pattern::Var("x".into()),
        ]);
        let rows = [
            Value::pair(int(1), int(10)),
            Value::pair(int(2), int(20)),
            Value::pair(int(1), int(30)),
            int(7), // not a tuple at all
        ];
        let table = decompose_single(&pat, rows.iter());
        assert_eq!(table.len, 2);
        assert_eq!(table.cols.len(), 1);
        assert_eq!(table.cols[0].0.as_ref(), "x");
        assert_eq!(table.cols[0].1.value(0), int(10));
        assert_eq!(table.cols[0].1.value(1), int(30));
    }

    #[test]
    fn compile_pred_kernelises_comparison_conjunctions() {
        let expr = crate::parse("x < 3 and y = 'a'").unwrap();
        assert!(matches!(compile_pred(&expr), CPred::And(_, _)));
        let expr = crate::parse("x < 3 and member([1], x)").unwrap();
        assert!(matches!(compile_pred(&expr), CPred::Fallback(_)));
    }

    #[test]
    fn compile_proj_handles_nested_tuples() {
        let expr = crate::parse("{x, {'tag', y}}").unwrap();
        assert!(!matches!(compile_proj(&expr), CProj::Fallback(_)));
        let expr = crate::parse("{x, y + 1}").unwrap();
        assert!(matches!(compile_proj(&expr), CProj::Fallback(_)));
    }
}
