//! Physical execution of planned comprehensions.
//!
//! The logical layer ([`crate::plan`]) describes *what* to run — a step list
//! the planner, bushy enumerator, `PlanCache` and `IndexStore` cooperate to
//! produce. This module owns *how* it runs, with two interchangeable engines
//! over the **same** plans:
//!
//! * `row`: the recursive row-at-a-time executor (one environment frame per
//!   binding). It is the reference semantics, the differential oracle, and
//!   the engine standing plans always use.
//! * `columnar`: the vectorised executor — closed sources decompose into
//!   typed column vectors (the `column` module), filters run as comparison kernels
//!   over slices under selection bitmaps, and values materialise late. It
//!   must produce bit-identical bags (order and multiplicity included) and
//!   aborts to the row engine on any runtime error.
//!
//! Engine selection is per execution: `Evaluator::with_columnar` gates the
//! columnar engine (default on), plans with open or parameter-dependent
//! generator sources are ineligible and run on the row engine, and
//! [`ExecEngine`] reports which engine produced each result (observable via
//! `StepProbe::engine_count` and, at the dataspace level, [`EngineStats`]).

pub(crate) mod column;
pub(crate) mod columnar;
pub(crate) mod ops;
mod row;

pub use column::BATCH_SIZE;

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Which executor produced a planned comprehension's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecEngine {
    /// The vectorised columnar executor.
    Columnar = 0,
    /// The recursive row-at-a-time executor.
    Row = 1,
}

/// Process-lifetime counters for engine selection, shared across evaluators
/// (attach with `Evaluator::with_engine_stats`; a `Dataspace` keeps one and
/// surfaces it through its stats).
#[derive(Debug, Default)]
pub struct EngineStats {
    columnar_execs: AtomicU64,
    row_fallbacks: AtomicU64,
}

impl EngineStats {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Planned comprehension executions the columnar engine completed.
    pub fn columnar_execs(&self) -> u64 {
        self.columnar_execs.load(AtomicOrdering::Relaxed)
    }

    /// Planned comprehension executions that fell back to the row engine
    /// while the columnar engine was enabled — because the plan was
    /// ineligible (open or parameter-dependent generator source) or a
    /// columnar run aborted on a runtime error. Executions with the columnar
    /// engine disabled outright are not fallbacks and count nowhere.
    pub fn row_fallbacks(&self) -> u64 {
        self.row_fallbacks.load(AtomicOrdering::Relaxed)
    }

    pub(crate) fn record_columnar(&self) {
        self.columnar_execs.fetch_add(1, AtomicOrdering::Relaxed);
    }

    pub(crate) fn record_fallback(&self) {
        self.row_fallbacks.fetch_add(1, AtomicOrdering::Relaxed);
    }
}
