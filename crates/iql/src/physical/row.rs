//! The recursive row-at-a-time executor: one persistent-environment frame per
//! binding, one recursive call per step. This engine is the **differential
//! oracle** — the columnar executor must reproduce its bags bit for bit
//! (order and multiplicity included) and defers to it wholesale on any
//! runtime error — and it is the only engine standing plans run on
//! (`Evaluator::execute_standing` / `delta_standing` call [`Evaluator::exec_plan`]
//! directly, keeping delta maintenance on the row path).

use crate::ast::{Expr, Qualifier};
use crate::env::{match_pattern, Env};
use crate::error::EvalError;
use crate::eval::{composite_key, Evaluator, ExtentProvider};
use crate::plan::Step;
use crate::value::Bag;

impl<P: ExtentProvider> Evaluator<P> {
    /// Run a planned comprehension. Mirrors [`Self::eval_comprehension`] step for
    /// step; every join arm visits the same elements the nested loop's filter
    /// would accept, in the same order.
    pub(crate) fn exec_plan(
        &self,
        head: &Expr,
        steps: &[Step],
        env: &Env,
        out: &mut Bag,
    ) -> Result<(), EvalError> {
        match steps.split_first() {
            None => {
                out.push(self.eval(head, env)?);
                Ok(())
            }
            Some((Step::Filter(cond), rest)) => {
                if self.eval(cond, env)?.as_bool()? {
                    self.exec_plan(head, rest, env, out)?;
                }
                Ok(())
            }
            Some((Step::Bind { pattern, value }, rest)) => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if match_pattern(pattern, &v, &mut inner)? {
                    self.exec_plan(head, rest, &inner, out)?;
                }
                Ok(())
            }
            Some((Step::Iterate { pattern, source }, rest)) => {
                let bag = self.eval(source, env)?.expect_bag()?;
                for element in bag.iter() {
                    let mut inner = env.clone();
                    if match_pattern(pattern, element, &mut inner)? {
                        self.exec_plan(head, rest, &inner, out)?;
                    }
                }
                Ok(())
            }
            Some((Step::Scan { pattern, bag }, rest)) => {
                for element in bag.iter() {
                    let mut inner = env.clone();
                    if match_pattern(pattern, element, &mut inner)? {
                        self.exec_plan(head, rest, &inner, out)?;
                    }
                }
                Ok(())
            }
            Some((
                Step::HashJoin {
                    pattern,
                    probe_vars,
                    index,
                },
                rest,
            )) => {
                let mut parts = Vec::with_capacity(probe_vars.len());
                for var in probe_vars {
                    let v = env
                        .get(var)
                        .ok_or_else(|| EvalError::UnboundVariable(var.to_string()))?;
                    parts.push(v.clone());
                }
                if let Some(matches) = index.get(&composite_key(parts)) {
                    for element in matches {
                        let mut inner = env.clone();
                        if match_pattern(pattern, element, &mut inner)? {
                            self.exec_plan(head, rest, &inner, out)?;
                        }
                    }
                }
                Ok(())
            }
            Some((
                Step::IndexLookup {
                    pattern,
                    key_exprs,
                    index,
                },
                rest,
            )) => {
                // An empty index means no source element matched the pattern:
                // the nested loop would never reach the filters, so the key
                // expressions must not be evaluated (an unbound `?param` there
                // raises no error under naive evaluation either).
                if index.buckets.is_empty() {
                    return Ok(());
                }
                let mut parts = Vec::with_capacity(key_exprs.len());
                for expr in key_exprs {
                    parts.push(self.eval(expr, env)?);
                }
                if let Some(matches) = index.buckets.get(&composite_key(parts)) {
                    for element in matches {
                        let mut inner = env.clone();
                        if match_pattern(pattern, element, &mut inner)? {
                            self.exec_plan(head, rest, &inner, out)?;
                        }
                    }
                }
                Ok(())
            }
            Some((Step::OrderedJoin { outer, inner, rows }, rest)) => {
                for (a, b) in rows.iter() {
                    let mut bound = env.clone();
                    if match_pattern(outer, a, &mut bound)? && match_pattern(inner, b, &mut bound)?
                    {
                        self.exec_plan(head, rest, &bound, out)?;
                    }
                }
                Ok(())
            }
            Some((
                Step::MultiJoin { patterns, rows } | Step::BushyJoin { patterns, rows },
                rest,
            )) => {
                for row in rows.iter() {
                    let mut bound = env.clone();
                    let mut all = true;
                    // Bind in textual order so shadowing matches the nested loop.
                    for (pattern, element) in patterns.iter().zip(row) {
                        if !match_pattern(pattern, element, &mut bound)? {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        self.exec_plan(head, rest, &bound, out)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// The naive nested-loop comprehension semantics (reference implementation).
    pub(crate) fn eval_comprehension(
        &self,
        head: &Expr,
        qualifiers: &[Qualifier],
        env: &Env,
        out: &mut Bag,
    ) -> Result<(), EvalError> {
        match qualifiers.split_first() {
            None => {
                out.push(self.eval(head, env)?);
                Ok(())
            }
            Some((Qualifier::Filter(cond), rest)) => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval_comprehension(head, rest, env, out)?;
                }
                Ok(())
            }
            Some((Qualifier::Binding { pattern, value }, rest)) => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                if match_pattern(pattern, &v, &mut inner)? {
                    self.eval_comprehension(head, rest, &inner, out)?;
                }
                Ok(())
            }
            Some((Qualifier::Generator { pattern, source }, rest)) => {
                let bag = self.eval(source, env)?.expect_bag()?;
                for element in bag.iter() {
                    let mut inner = env.clone();
                    if match_pattern(pattern, element, &mut inner)? {
                        self.eval_comprehension(head, rest, &inner, out)?;
                    }
                }
                Ok(())
            }
        }
    }
}
