//! Pretty-printing of IQL expressions.
//!
//! The printer produces surface syntax that parses back to an equivalent AST (see the
//! round-trip property tests), which is what the repositories use to store
//! transformation queries in a human-readable form.

use crate::ast::{Expr, Qualifier, UnOp};
use std::fmt;

/// Render an expression in IQL surface syntax.
pub fn print(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Wrapper whose `Display` implementation prints the expression in IQL surface syntax.
pub struct Pretty<'a>(pub &'a Expr);

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print(self.0))
    }
}

fn write_expr(out: &mut String, expr: &Expr, parent_prec: u8) {
    match expr {
        Expr::Lit(l) => out.push_str(&l.to_string()),
        Expr::Var(v) => out.push_str(v),
        Expr::Param(p) => {
            out.push('?');
            out.push_str(p);
        }
        Expr::Scheme(s) => out.push_str(&s.to_string()),
        Expr::Void => out.push_str("Void"),
        Expr::Any => out.push_str("Any"),
        Expr::Tuple(items) => {
            out.push('{');
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, 0);
            }
            out.push('}');
        }
        Expr::Bag(items) => {
            out.push('[');
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, 0);
            }
            out.push(']');
        }
        Expr::Comp { head, qualifiers } => {
            out.push('[');
            write_expr(out, head, 0);
            out.push_str(" | ");
            for (i, q) in qualifiers.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                match q {
                    Qualifier::Generator { pattern, source } => {
                        out.push_str(&pattern.to_string());
                        out.push_str(" <- ");
                        write_expr(out, source, 0);
                    }
                    // A filter that is itself a `let … in …` expression must be
                    // parenthesised: bare, the qualifier parser would read it
                    // as a `let` *binding* qualifier and reject the `in`.
                    Qualifier::Filter(e @ Expr::Let { .. }) => {
                        out.push('(');
                        write_expr(out, e, 0);
                        out.push(')');
                    }
                    Qualifier::Filter(e) => write_expr(out, e, 0),
                    Qualifier::Binding { pattern, value } => {
                        out.push_str("let ");
                        out.push_str(&pattern.to_string());
                        out.push_str(" = ");
                        write_expr(out, value, 0);
                    }
                }
            }
            out.push(']');
        }
        Expr::Apply { function, args } => {
            out.push_str(function);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::BinOp { op, lhs, rhs } => {
            let prec = op.precedence();
            let needs_parens = prec < parent_prec;
            if needs_parens {
                out.push('(');
            }
            write_expr(out, lhs, prec);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            // Right operand gets prec+1 so that equal-precedence chains re-associate
            // to the left when re-parsed, matching the parser.
            write_expr(out, rhs, prec + 1);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::UnOp { op, expr } => {
            match op {
                UnOp::Neg => out.push('-'),
                UnOp::Not => out.push_str("not "),
            }
            out.push('(');
            write_expr(out, expr, 0);
            out.push(')');
        }
        // `if`/`let`/`Range` are top-level expression forms in the grammar: used
        // as an operand of a binary operator they must be parenthesised, or the
        // re-parse would either swallow the rest of the operator chain into
        // their last sub-expression (`if`/`let`) or stop short of it (`Range`,
        // which never continues into a binary expression).
        Expr::If {
            cond,
            then,
            otherwise,
        } => {
            let needs_parens = parent_prec > 0;
            if needs_parens {
                out.push('(');
            }
            out.push_str("if ");
            write_expr(out, cond, 0);
            out.push_str(" then ");
            write_expr(out, then, 0);
            out.push_str(" else ");
            write_expr(out, otherwise, 0);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Let {
            pattern,
            value,
            body,
        } => {
            let needs_parens = parent_prec > 0;
            if needs_parens {
                out.push('(');
            }
            out.push_str("let ");
            out.push_str(&pattern.to_string());
            out.push_str(" = ");
            write_expr(out, value, 0);
            out.push_str(" in ");
            write_expr(out, body, 0);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Range { lower, upper } => {
            let needs_parens = parent_prec > 0;
            if needs_parens {
                out.push('(');
            }
            out.push_str("Range ");
            write_operand(out, lower);
            out.push(' ');
            write_operand(out, upper);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

/// `Range` takes two *operands* in the grammar; wrap anything that is not already an
/// operand in parentheses so the output re-parses.
fn write_operand(out: &mut String, expr: &Expr) {
    let is_operand = matches!(
        expr,
        Expr::Lit(_)
            | Expr::Var(_)
            | Expr::Param(_)
            | Expr::Scheme(_)
            | Expr::Void
            | Expr::Any
            | Expr::Tuple(_)
            | Expr::Bag(_)
            | Expr::Comp { .. }
    );
    if is_operand {
        write_expr(out, expr, 0);
    } else {
        out.push('(');
        write_expr(out, expr, 0);
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let ast = parse(src).unwrap();
        let printed = print(&ast);
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("printed `{printed}` failed to parse: {e}"));
        assert_eq!(
            ast, reparsed,
            "round trip changed AST for `{src}` → `{printed}`"
        );
    }

    #[test]
    fn round_trip_paper_queries() {
        round_trip("[{'PEDRO', k} | k <- <<protein>>]");
        round_trip("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]");
        round_trip(
            "[{k1, k2} | {k1, x} <- <<upeptidehit, dbsearch>>; {k2, y} <- <<uproteinhit, dbsearch>>; x = y]",
        );
        round_trip("Range Void Any");
        round_trip("Range [k | k <- <<protein>>] Any");
    }

    #[test]
    fn round_trip_operators() {
        round_trip("1 + 2 * 3");
        round_trip("(1 + 2) * 3");
        round_trip("a ++ b -- c");
        round_trip("x = 1 and y <> 2 or not (z < 3)");
        round_trip("count(<<protein>>) + 1");
    }

    #[test]
    fn round_trip_parameters() {
        round_trip("[{s, k} | {s, k, x} <- <<UProtein, accession_num>>; x = ?accession]");
        round_trip("?p + 1");
        round_trip("count(?group)");
        round_trip("[x | x <- <<t>>; member(?group, x); x <> ?excluded]");
    }

    #[test]
    fn round_trip_let_if_bindings() {
        round_trip("let x = 3 in if x > 2 then 'big' else 'small'");
        round_trip("[{k, n} | k <- <<protein>>; let n = k * 10; n > 10]");
        round_trip("[k | {k, _} <- <<protein, accession_num>>]");
    }

    #[test]
    fn pretty_display_wrapper() {
        let ast = parse("count <<protein>>").unwrap();
        assert_eq!(format!("{}", Pretty(&ast)), "count(<<protein>>)");
    }
}
