//! Lexer for the IQL surface syntax.

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Lex an input string into a sequence of spanned tokens, terminated by `Eof`.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Spanned {
                    token: Token::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Spanned {
                    token: Token::RBrace,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Spanned {
                    token: Token::Pipe,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semi,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'+') {
                    tokens.push(Spanned {
                        token: Token::PlusPlus,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Plus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Spanned {
                        token: Token::MinusMinus,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Minus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                // `<<`, `<-`, `<=`, `<>` or plain `<`
                match bytes.get(i + 1).copied().map(|b| b as char) {
                    Some('<') => {
                        tokens.push(Spanned {
                            token: Token::SchemeOpen,
                            offset: start,
                        });
                        i += 2;
                    }
                    Some('-') => {
                        tokens.push(Spanned {
                            token: Token::Arrow,
                            offset: start,
                        });
                        i += 2;
                    }
                    Some('=') => {
                        tokens.push(Spanned {
                            token: Token::Le,
                            offset: start,
                        });
                        i += 2;
                    }
                    Some('>') => {
                        tokens.push(Spanned {
                            token: Token::Neq,
                            offset: start,
                        });
                        i += 2;
                    }
                    _ => {
                        tokens.push(Spanned {
                            token: Token::Lt,
                            offset: start,
                        });
                        i += 1;
                    }
                }
            }
            '>' => match bytes.get(i + 1).copied().map(|b| b as char) {
                Some('>') => {
                    tokens.push(Spanned {
                        token: Token::SchemeClose,
                        offset: start,
                    });
                    i += 2;
                }
                Some('=') => {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            '\'' => {
                // Single-quoted string, backslash escapes for `\'` and `\\`.
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj == '\\' {
                        match bytes.get(j + 1).copied().map(|b| b as char) {
                            Some('\'') => {
                                s.push('\'');
                                j += 2;
                            }
                            Some('\\') => {
                                s.push('\\');
                                j += 2;
                            }
                            _ => {
                                s.push('\\');
                                j += 1;
                            }
                        }
                    } else if cj == '\'' {
                        closed = true;
                        j += 1;
                        break;
                    } else {
                        s.push(cj);
                        j += 1;
                    }
                }
                if !closed {
                    return Err(ParseError::new("unterminated string literal", start));
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_digit() {
                        j += 1;
                    } else if cj == '.'
                        && !is_float
                        && bytes
                            .get(j + 1)
                            .map(|b| (*b as char).is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid float literal `{text}`"), start)
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid integer literal `{text}`"), start)
                    })?)
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let token = if text == "_" {
                    Token::Underscore
                } else if let Some(kw) = Token::keyword(text) {
                    kw
                } else {
                    Token::Ident(text.to_string())
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    start,
                ));
            }
        }
    }

    tokens.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_paper_comprehension() {
        let toks = kinds("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]");
        assert_eq!(toks[0], Token::LBracket);
        assert_eq!(toks[1], Token::LBrace);
        assert_eq!(toks[2], Token::Str("PEDRO".into()));
        assert!(toks.contains(&Token::Arrow));
        assert!(toks.contains(&Token::SchemeOpen));
        assert!(toks.contains(&Token::SchemeClose));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lex_operators_disambiguated() {
        assert_eq!(
            kinds("a <= b <- c << d >> e <> f < g > h >= i"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Arrow,
                Token::Ident("c".into()),
                Token::SchemeOpen,
                Token::Ident("d".into()),
                Token::SchemeClose,
                Token::Ident("e".into()),
                Token::Neq,
                Token::Ident("f".into()),
                Token::Lt,
                Token::Ident("g".into()),
                Token::Gt,
                Token::Ident("h".into()),
                Token::Ge,
                Token::Ident("i".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers_and_floats() {
        assert_eq!(
            kinds("42 3.25 7"),
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Int(7),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_bag_operators() {
        assert_eq!(
            kinds("a ++ b -- c - d + e"),
            vec![
                Token::Ident("a".into()),
                Token::PlusPlus,
                Token::Ident("b".into()),
                Token::MinusMinus,
                Token::Ident("c".into()),
                Token::Minus,
                Token::Ident("d".into()),
                Token::Plus,
                Token::Ident("e".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(
            kinds(r"'it\'s'"),
            vec![Token::Str("it's".into()), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(lex("a ? b").is_err());
    }

    #[test]
    fn keywords_and_wildcard() {
        assert_eq!(
            kinds("Range Void Any let in _ not"),
            vec![
                Token::Range,
                Token::Void,
                Token::Any,
                Token::Let,
                Token::In,
                Token::Underscore,
                Token::Not,
                Token::Eof
            ]
        );
    }
}
