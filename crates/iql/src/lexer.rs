//! Lexer for the IQL surface syntax.

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Lex an input string into a sequence of spanned tokens, terminated by `Eof`.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Spanned {
                    token: Token::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Spanned {
                    token: Token::RBrace,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Spanned {
                    token: Token::Pipe,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semi,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'+') {
                    tokens.push(Spanned {
                        token: Token::PlusPlus,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Plus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Spanned {
                        token: Token::MinusMinus,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Minus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                // `<<`, `<-`, `<=`, `<>` or plain `<`
                match bytes.get(i + 1).copied().map(|b| b as char) {
                    Some('<') => {
                        tokens.push(Spanned {
                            token: Token::SchemeOpen,
                            offset: start,
                        });
                        i += 2;
                    }
                    Some('-') => {
                        tokens.push(Spanned {
                            token: Token::Arrow,
                            offset: start,
                        });
                        i += 2;
                    }
                    Some('=') => {
                        tokens.push(Spanned {
                            token: Token::Le,
                            offset: start,
                        });
                        i += 2;
                    }
                    Some('>') => {
                        tokens.push(Spanned {
                            token: Token::Neq,
                            offset: start,
                        });
                        i += 2;
                    }
                    _ => {
                        tokens.push(Spanned {
                            token: Token::Lt,
                            offset: start,
                        });
                        i += 1;
                    }
                }
            }
            '>' => match bytes.get(i + 1).copied().map(|b| b as char) {
                Some('>') => {
                    tokens.push(Spanned {
                        token: Token::SchemeClose,
                        offset: start,
                    });
                    i += 2;
                }
                Some('=') => {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            '?' => {
                // `?name`: a named query-parameter placeholder. The name follows
                // identifier rules; a bare `?` stays a lex error.
                let mut j = i + 1;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                if j == i + 1
                    || !(bytes[i + 1] as char).is_ascii_alphabetic() && bytes[i + 1] != b'_'
                {
                    return Err(ParseError::new(
                        "expected a parameter name after `?`",
                        start,
                    ));
                }
                tokens.push(Spanned {
                    token: Token::Param(input[i + 1..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            '\'' => {
                // Single-quoted string, backslash escapes for `\'` and `\\`.
                // Content bytes are collected raw — the loop only ever splits at
                // the ASCII bytes `\` and `'`, so multi-byte UTF-8 characters
                // pass through unmangled (byte-as-char pushing used to corrupt
                // them, caught by the prepared≡literal differential).
                let mut buf: Vec<u8> = Vec::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => match bytes.get(j + 1) {
                            Some(b'\'') => {
                                buf.push(b'\'');
                                j += 2;
                            }
                            Some(b'\\') => {
                                buf.push(b'\\');
                                j += 2;
                            }
                            _ => {
                                buf.push(b'\\');
                                j += 1;
                            }
                        },
                        b'\'' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        other => {
                            buf.push(other);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(ParseError::new("unterminated string literal", start));
                }
                let s = String::from_utf8(buf)
                    .expect("splits only happen at ASCII bytes, so content stays valid UTF-8");
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_digit() {
                        j += 1;
                    } else if cj == '.'
                        && !is_float
                        && bytes
                            .get(j + 1)
                            .map(|b| (*b as char).is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid float literal `{text}`"), start)
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid integer literal `{text}`"), start)
                    })?)
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            // Identifiers are ASCII-only: a non-ASCII byte outside a string
            // literal is a lex error (never a mangled identifier or a panic on
            // a char-boundary slice).
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let token = if text == "_" {
                    Token::Underscore
                } else if let Some(kw) = Token::keyword(text) {
                    kw
                } else {
                    Token::Ident(text.to_string())
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    start,
                ));
            }
        }
    }

    tokens.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_paper_comprehension() {
        let toks = kinds("[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]");
        assert_eq!(toks[0], Token::LBracket);
        assert_eq!(toks[1], Token::LBrace);
        assert_eq!(toks[2], Token::Str("PEDRO".into()));
        assert!(toks.contains(&Token::Arrow));
        assert!(toks.contains(&Token::SchemeOpen));
        assert!(toks.contains(&Token::SchemeClose));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lex_operators_disambiguated() {
        assert_eq!(
            kinds("a <= b <- c << d >> e <> f < g > h >= i"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Arrow,
                Token::Ident("c".into()),
                Token::SchemeOpen,
                Token::Ident("d".into()),
                Token::SchemeClose,
                Token::Ident("e".into()),
                Token::Neq,
                Token::Ident("f".into()),
                Token::Lt,
                Token::Ident("g".into()),
                Token::Gt,
                Token::Ident("h".into()),
                Token::Ge,
                Token::Ident("i".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers_and_floats() {
        assert_eq!(
            kinds("42 3.25 7"),
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Int(7),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_bag_operators() {
        assert_eq!(
            kinds("a ++ b -- c - d + e"),
            vec![
                Token::Ident("a".into()),
                Token::PlusPlus,
                Token::Ident("b".into()),
                Token::MinusMinus,
                Token::Ident("c".into()),
                Token::Minus,
                Token::Ident("d".into()),
                Token::Plus,
                Token::Ident("e".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(
            kinds(r"'it\'s'"),
            vec![Token::Str("it's".into()), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn parameter_placeholders() {
        assert_eq!(
            kinds("x = ?accession_num"),
            vec![
                Token::Ident("x".into()),
                Token::Eq,
                Token::Param("accession_num".into()),
                Token::Eof
            ]
        );
        // A bare `?`, or one followed by a non-name, stays a lex error.
        assert!(lex("?").is_err());
        assert!(lex("x = ?").is_err());
        assert!(lex("x = ?1").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(lex("a ? b").is_err());
    }

    #[test]
    fn unicode_survives_string_literals_and_errors_elsewhere() {
        // Multi-byte characters inside a string literal lex to the exact same
        // string (byte-as-char pushing used to mangle them into Latin-1).
        assert_eq!(
            kinds("'протеин αβ→γ 寿司'"),
            vec![Token::Str("протеин αβ→γ 寿司".into()), Token::Eof]
        );
        assert_eq!(
            kinds(r"'caf\'é'"),
            vec![Token::Str("caf'é".into()), Token::Eof]
        );
        // Outside a string, non-ASCII is a lex error — never a panic.
        assert!(lex("café").is_err());
        assert!(lex("?café").is_err());
    }

    #[test]
    fn keywords_and_wildcard() {
        assert_eq!(
            kinds("Range Void Any let in _ not"),
            vec![
                Token::Range,
                Token::Void,
                Token::Any,
                Token::Let,
                Token::In,
                Token::Underscore,
                Token::Not,
                Token::Eof
            ]
        );
    }
}
