//! Built-in function library.
//!
//! IQL is a small functional language; its standard library is a fixed set of
//! first-order functions over scalars and bags. The parser uses [`is_builtin`] to
//! decide whether an identifier in application position denotes a function call or a
//! plain variable reference.

use crate::error::EvalError;
use crate::value::{Bag, Value};

/// The names of all built-in functions.
pub const BUILTINS: &[&str] = &[
    "count", "sum", "avg", "max", "min", "distinct", "member", "isEmpty", "first", "flatten",
    "fst", "snd", "nth", "toString", "abs",
];

/// Whether `name` is a built-in function.
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}

fn expect_args(function: &str, args: &[Value], expected: usize) -> Result<(), EvalError> {
    if args.len() != expected {
        Err(EvalError::ArityError {
            function: function.to_string(),
            expected,
            found: args.len(),
        })
    } else {
        Ok(())
    }
}

/// Apply a built-in function to already-evaluated arguments.
pub fn apply(function: &str, args: &[Value]) -> Result<Value, EvalError> {
    match function {
        "count" => {
            expect_args(function, args, 1)?;
            Ok(Value::Int(args[0].expect_bag()?.len() as i64))
        }
        "sum" => {
            expect_args(function, args, 1)?;
            let bag = args[0].expect_bag()?;
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            for v in bag.iter() {
                match v {
                    Value::Int(i) => int_sum += i,
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    other => {
                        return Err(EvalError::TypeError {
                            context: "sum".into(),
                            found: other.type_name().into(),
                        })
                    }
                }
            }
            if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        "avg" => {
            expect_args(function, args, 1)?;
            let bag = args[0].expect_bag()?;
            if bag.is_empty() {
                return Err(EvalError::EmptyAggregate("avg".into()));
            }
            let mut total = 0.0;
            for v in bag.iter() {
                total += v.as_f64().ok_or_else(|| EvalError::TypeError {
                    context: "avg".into(),
                    found: v.type_name().into(),
                })?;
            }
            Ok(Value::Float(total / bag.len() as f64))
        }
        "max" | "min" => {
            expect_args(function, args, 1)?;
            let bag = args[0].expect_bag()?;
            if bag.is_empty() {
                return Err(EvalError::EmptyAggregate(function.into()));
            }
            let mut it = bag.iter();
            let mut best = it.next().expect("non-empty").clone();
            for v in it {
                let better = if function == "max" {
                    v > &best
                } else {
                    v < &best
                };
                if better {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "distinct" => {
            expect_args(function, args, 1)?;
            Ok(Value::Bag(args[0].expect_bag()?.distinct()))
        }
        "member" => {
            expect_args(function, args, 2)?;
            let bag = args[0].expect_bag()?;
            Ok(Value::Bool(bag.contains(&args[1])))
        }
        "isEmpty" => {
            expect_args(function, args, 1)?;
            Ok(Value::Bool(args[0].expect_bag()?.is_empty()))
        }
        "first" => {
            expect_args(function, args, 1)?;
            let bag = args[0].expect_bag()?;
            let first = bag.iter().next().cloned();
            first.ok_or(EvalError::EmptyAggregate("first".into()))
        }
        "flatten" => {
            expect_args(function, args, 1)?;
            let outer = args[0].expect_bag()?;
            let mut out = Bag::empty();
            for v in outer.iter() {
                for inner in v.expect_bag()?.iter() {
                    out.push(inner.clone());
                }
            }
            Ok(Value::Bag(out))
        }
        "fst" => {
            expect_args(function, args, 1)?;
            tuple_component(&args[0], 0, "fst")
        }
        "snd" => {
            expect_args(function, args, 1)?;
            tuple_component(&args[0], 1, "snd")
        }
        "nth" => {
            expect_args(function, args, 2)?;
            let idx = match &args[1] {
                Value::Int(i) if *i >= 0 => *i as usize,
                other => {
                    return Err(EvalError::TypeError {
                        context: "nth index".into(),
                        found: other.type_name().into(),
                    })
                }
            };
            tuple_component(&args[0], idx, "nth")
        }
        "toString" => {
            expect_args(function, args, 1)?;
            Ok(match &args[0] {
                Value::Str(_) => args[0].clone(),
                other => Value::str(other.to_string()),
            })
        }
        "abs" => {
            expect_args(function, args, 1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(EvalError::TypeError {
                    context: "abs".into(),
                    found: other.type_name().into(),
                }),
            }
        }
        other => Err(EvalError::UnknownFunction(other.to_string())),
    }
}

fn tuple_component(value: &Value, index: usize, context: &str) -> Result<Value, EvalError> {
    match value {
        Value::Tuple(items) => items
            .get(index)
            .cloned()
            .ok_or_else(|| EvalError::TypeError {
                context: context.to_string(),
                found: format!("tuple of arity {}", items.len()),
            }),
        other => Err(EvalError::TypeError {
            context: context.to_string(),
            found: other.type_name().into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_bag(vals: &[i64]) -> Value {
        Value::Bag(Bag::from_values(
            vals.iter().map(|v| Value::Int(*v)).collect(),
        ))
    }

    #[test]
    fn count_sum_avg() {
        assert_eq!(
            apply("count", &[int_bag(&[1, 2, 2])]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(apply("sum", &[int_bag(&[1, 2, 3])]).unwrap(), Value::Int(6));
        assert_eq!(
            apply("avg", &[int_bag(&[1, 2, 3])]).unwrap(),
            Value::Float(2.0)
        );
        assert!(matches!(
            apply("avg", &[Value::Bag(Bag::empty())]),
            Err(EvalError::EmptyAggregate(_))
        ));
    }

    #[test]
    fn sum_promotes_to_float() {
        let mixed = Value::Bag(Bag::from_values(vec![Value::Int(1), Value::Float(0.5)]));
        assert_eq!(apply("sum", &[mixed]).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn max_min_first() {
        assert_eq!(apply("max", &[int_bag(&[3, 9, 1])]).unwrap(), Value::Int(9));
        assert_eq!(apply("min", &[int_bag(&[3, 9, 1])]).unwrap(), Value::Int(1));
        assert_eq!(apply("first", &[int_bag(&[5, 6])]).unwrap(), Value::Int(5));
    }

    #[test]
    fn member_and_is_empty() {
        assert_eq!(
            apply("member", &[int_bag(&[1, 2]), Value::Int(2)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            apply("member", &[int_bag(&[1, 2]), Value::Int(5)]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(apply("isEmpty", &[Value::Void]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn distinct_and_flatten() {
        assert_eq!(
            apply("distinct", &[int_bag(&[1, 1, 2])]).unwrap(),
            int_bag(&[1, 2])
        );
        let nested = Value::Bag(Bag::from_values(vec![int_bag(&[1]), int_bag(&[2, 3])]));
        assert_eq!(apply("flatten", &[nested]).unwrap(), int_bag(&[1, 2, 3]));
    }

    #[test]
    fn tuple_accessors() {
        let pair = Value::pair(Value::Int(1), Value::str("a"));
        assert_eq!(
            apply("fst", std::slice::from_ref(&pair)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            apply("snd", std::slice::from_ref(&pair)).unwrap(),
            Value::str("a")
        );
        assert_eq!(
            apply("nth", &[pair.clone(), Value::Int(1)]).unwrap(),
            Value::str("a")
        );
        assert!(apply("nth", &[pair, Value::Int(5)]).is_err());
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(matches!(
            apply("count", &[]),
            Err(EvalError::ArityError { .. })
        ));
        assert!(matches!(
            apply(
                "sum",
                &[Value::Bag(Bag::from_values(vec![Value::str("x")]))]
            ),
            Err(EvalError::TypeError { .. })
        ));
        assert!(matches!(
            apply("noSuchFunction", &[Value::Int(1)]),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn builtin_registry_is_consistent() {
        assert!(is_builtin("count"));
        assert!(!is_builtin("protein"));
        // every listed builtin is callable (arity errors are fine, unknown-function is not)
        for name in BUILTINS {
            let r = apply(name, &[]);
            assert!(
                !matches!(r, Err(EvalError::UnknownFunction(_))),
                "builtin `{name}` not dispatched"
            );
        }
    }
}
